//! The UDF guardrail layer (PR 3).
//!
//! FUDJ executes *untrusted user code*: the paper's proxy built-in functions
//! (§IV, Fig. 7) mediate between engine internals and the library's
//! SUMMARIZE / DIVIDE / PARTITION / COMBINE callbacks, but nothing in the
//! paper stops a buggy library from panicking mid-phase, spinning forever in
//! `assign`, emitting bucket ids outside its own partitioning plan, or
//! replicating every key to every bucket. [`GuardedJoin`] is the containment
//! layer: it wraps any [`JoinAlgorithm`] (covering both [`crate::ProxyJoin`]
//! and raw implementations) and is what the executor and the standalone
//! reference runner actually invoke. Every user callback is
//!
//! * **panic-isolated** — `catch_unwind` with the payload preserved in a
//!   structured [`FudjError::UdfViolation`];
//! * **metered** — per-call budgets from [`UdfLimits`]: a wall-clock timeout
//!   on the *simulated* clock (libraries report their cost via
//!   [`consume_udf_time`], so "hangs" are deterministic and test-friendly),
//!   a cap on the serialized PPlan size, a buckets-per-key replication cap,
//!   and a total assign fan-out cap per partition;
//! * **contract-checked** — bucket ids must fall inside the range the
//!   library declares for its plan ([`JoinAlgorithm::declared_buckets`]),
//!   `assign` must be deterministic (spot re-invoked on a seeded sample of
//!   keys), `verify` must be symmetric under the default dedup mode, and
//!   summaries must merge associatively (probed on a sampled triple).
//!
//! Violations route through a configurable [`UdfPolicy`]: fail fast with a
//! phase-tagged diagnostic, quarantine the offending key/row and continue,
//! or — for default-equality match predicates — degrade to the engine's
//! plain hash-equality path. Structural callbacks (`new_summary`,
//! `merge_summaries`, `divide`) always fail fast: there is no single row to
//! quarantine when the plan itself is broken.
//!
//! Guards are zero-cost on well-behaved libraries: a guarded run returns
//! bit-identical results and metrics to an unguarded one, which the test
//! suite pins.

use crate::model::{BucketId, DedupMode, JoinAlgorithm, Side};
use crate::state::{PPlanState, SummaryState};
use fudj_types::{ExtValue, FudjError, Result};
use std::cell::Cell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Simulated UDF clock and per-partition fan-out accounting
// ---------------------------------------------------------------------------

thread_local! {
    /// Simulated milliseconds consumed by user callbacks on this thread.
    static UDF_CLOCK_MS: Cell<u64> = const { Cell::new(0) };
    /// Bucket ids emitted by `assign` since the last partition boundary on
    /// this thread (each partition is processed by exactly one worker).
    static ASSIGN_FANOUT: Cell<u64> = const { Cell::new(0) };
}

/// Report simulated time spent inside a user callback. Libraries (and the
/// adversarial fixtures) call this instead of sleeping, so timeout behavior
/// is deterministic: the guard compares the simulated-clock delta of each
/// callback against [`UdfLimits::call_budget_ms`].
pub fn consume_udf_time(ms: u64) {
    UDF_CLOCK_MS.with(|c| c.set(c.get().saturating_add(ms)));
}

fn udf_clock() -> u64 {
    UDF_CLOCK_MS.with(Cell::get)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Per-call budgets for guarded user callbacks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdfLimits {
    /// Simulated-clock budget for one callback invocation, in ms. A callback
    /// that [`consume_udf_time`]s more than this in a single call is a
    /// budget violation ("hang").
    pub call_budget_ms: u64,
    /// Maximum serialized size of the PPlan `divide` returns, in bytes.
    pub max_pplan_bytes: usize,
    /// Maximum bucket ids one `assign` call may emit for one key (the
    /// replication factor cap).
    pub max_buckets_per_key: usize,
    /// Maximum total bucket ids `assign` may emit across one partition.
    pub max_assign_fanout: u64,
    /// Contract checks sample 1-in-N keys/pairs (seeded, deterministic);
    /// 0 disables the determinism / symmetry / associativity probes.
    pub check_sample: u64,
}

impl Default for UdfLimits {
    fn default() -> Self {
        UdfLimits {
            call_budget_ms: 10_000,
            max_pplan_bytes: 16 << 20,
            max_buckets_per_key: 4_096,
            max_assign_fanout: 1 << 24,
            check_sample: 16,
        }
    }
}

/// What the engine does when a guarded callback violates its contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UdfPolicy {
    /// Abort the query with a phase-tagged [`FudjError::UdfViolation`].
    #[default]
    FailFast,
    /// Drop the offending key/row/pair, count it, and continue. Structural
    /// callbacks (`merge_summaries`, `divide`) still fail fast.
    Quarantine,
    /// For joins whose match predicate is default equality, degrade the
    /// whole join to the engine's plain hash-equality path on the raw keys.
    FallbackEquality,
}

impl UdfPolicy {
    /// Parse a user-facing policy name (`failfast`, `quarantine`,
    /// `fallback`), tolerant of `-`/`_` separators.
    pub fn parse(s: &str) -> Option<UdfPolicy> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "failfast" => Some(UdfPolicy::FailFast),
            "quarantine" => Some(UdfPolicy::Quarantine),
            "fallback" | "fallbackequality" => Some(UdfPolicy::FallbackEquality),
            _ => None,
        }
    }
}

impl std::fmt::Display for UdfPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdfPolicy::FailFast => write!(f, "failfast"),
            UdfPolicy::Quarantine => write!(f, "quarantine"),
            UdfPolicy::FallbackEquality => write!(f, "fallback"),
        }
    }
}

/// Limits + policy: everything one join definition's guard needs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuardConfig {
    pub limits: UdfLimits,
    pub policy: UdfPolicy,
}

impl GuardConfig {
    /// Default limits under the given policy.
    pub fn with_policy(policy: UdfPolicy) -> Self {
        GuardConfig {
            limits: UdfLimits::default(),
            policy,
        }
    }
}

/// Session-level guard selection, consulted by the planner when lowering a
/// FUDJ node (the `\guard` REPL command sets this).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum GuardMode {
    /// Use each join definition's own [`GuardConfig`] (the default).
    #[default]
    PerJoin,
    /// Override every definition with this config.
    Override(GuardConfig),
    /// Do not wrap at all (reference/unguarded runs).
    Off,
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// Guardrail counters for one query. Counts are per distinct violation
/// *site* (phase + offending key/pair), so fault-recovery re-executions of a
/// partition cannot double-count the same misbehaving row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UdfStats {
    pub summarize_violations: u64,
    pub merge_violations: u64,
    pub divide_violations: u64,
    pub assign_violations: u64,
    pub match_violations: u64,
    pub verify_violations: u64,
    pub dedup_violations: u64,
    /// Violations that were caught panics.
    pub caught_panics: u64,
    /// Violations that were budget overruns (time / size / replication).
    pub budget_overruns: u64,
    /// Violations that were contract-check failures (range, determinism,
    /// symmetry, associativity).
    pub contract_breaches: u64,
    /// Keys/rows/pairs dropped under [`UdfPolicy::Quarantine`].
    pub quarantined_rows: u64,
    /// Times the engine degraded to the hash-equality fallback path.
    pub fallback_activations: u64,
}

impl UdfStats {
    /// Total violations across all phases.
    pub fn total_violations(&self) -> u64 {
        self.summarize_violations
            + self.merge_violations
            + self.divide_violations
            + self.assign_violations
            + self.match_violations
            + self.verify_violations
            + self.dedup_violations
    }

    /// Whether anything at all was recorded.
    pub fn any(&self) -> bool {
        *self != UdfStats::default()
    }

    /// Field-wise accumulate (one query may run several guarded joins).
    pub fn merge(&mut self, other: &UdfStats) {
        self.summarize_violations += other.summarize_violations;
        self.merge_violations += other.merge_violations;
        self.divide_violations += other.divide_violations;
        self.assign_violations += other.assign_violations;
        self.match_violations += other.match_violations;
        self.verify_violations += other.verify_violations;
        self.dedup_violations += other.dedup_violations;
        self.caught_panics += other.caught_panics;
        self.budget_overruns += other.budget_overruns;
        self.contract_breaches += other.contract_breaches;
        self.quarantined_rows += other.quarantined_rows;
        self.fallback_activations += other.fallback_activations;
    }
}

/// Which callback a violation happened in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Summarize,
    Merge,
    Divide,
    Assign,
    Match,
    Verify,
    Dedup,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Summarize => "summarize",
            Phase::Merge => "merge",
            Phase::Divide => "divide",
            Phase::Assign => "assign",
            Phase::Match => "match",
            Phase::Verify => "verify",
            Phase::Dedup => "dedup",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Panic,
    Budget,
    Contract,
}

#[derive(Default)]
struct UdfCells {
    by_phase: [AtomicU64; 7],
    caught_panics: AtomicU64,
    budget_overruns: AtomicU64,
    contract_breaches: AtomicU64,
    quarantined: AtomicU64,
    fallbacks: AtomicU64,
    /// Distinct violation sites already counted — makes counters idempotent
    /// across fault-recovery re-executions of the same partition.
    seen: Mutex<HashSet<u64>>,
    /// Deferred violation from a callback that cannot return `Result`
    /// (`matches`); surfaced by the next fallible call or by `check()`.
    pending: Mutex<Option<FudjError>>,
    /// Sampled summaries for the associativity probe, per side.
    assoc_samples: Mutex<[Vec<SummaryState>; 2]>,
    assoc_checked: [AtomicU64; 2],
}

// ---------------------------------------------------------------------------
// Deterministic hashing (seeded sampling + site identity)
// ---------------------------------------------------------------------------

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fold(h: u64, w: u64) -> u64 {
    splitmix(h ^ w)
}

/// Cheap structural hash of an external value (no allocation; `f64`s hash
/// by bit pattern). Used both for seeded sampling decisions and to identify
/// violation sites, so it must be deterministic across runs and retries.
fn ext_hash(v: &ExtValue) -> u64 {
    match v {
        ExtValue::Null => splitmix(1),
        ExtValue::Bool(b) => fold(2, *b as u64),
        ExtValue::Long(x) => fold(3, *x as u64),
        ExtValue::Double(x) => fold(4, x.to_bits()),
        ExtValue::Text(s) => s.bytes().fold(splitmix(5), |h, b| fold(h, b as u64)),
        ExtValue::LongArray(xs) => xs.iter().fold(splitmix(6), |h, x| fold(h, *x as u64)),
        ExtValue::DoubleArray(xs) => xs.iter().fold(splitmix(7), |h, x| fold(h, x.to_bits())),
        ExtValue::TextArray(ts) => ts.iter().fold(splitmix(8), |h, t| {
            t.bytes().fold(fold(h, 9), |h, b| fold(h, b as u64))
        }),
    }
}

/// Render a key for a violation site, truncated so a pathological key cannot
/// blow up the diagnostic.
fn short(v: &ExtValue) -> String {
    let s = v.to_string();
    if s.chars().count() > 48 {
        s.chars().take(47).collect::<String>() + "…"
    } else {
        s
    }
}

// ---------------------------------------------------------------------------
// GuardHandle — the engine-facing side of a guard
// ---------------------------------------------------------------------------

/// Shared handle to one [`GuardedJoin`]'s configuration and counters.
/// Engines obtain it through [`JoinAlgorithm::guard`] to surface stats,
/// flush deferred violations, and drive fallback.
#[derive(Clone)]
pub struct GuardHandle {
    config: GuardConfig,
    cells: Arc<UdfCells>,
}

impl GuardHandle {
    fn new(config: GuardConfig) -> Self {
        GuardHandle {
            config,
            cells: Arc::new(UdfCells::default()),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> UdfPolicy {
        self.config.policy
    }

    /// The configured limits.
    pub fn limits(&self) -> &UdfLimits {
        &self.config.limits
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> UdfStats {
        let c = &self.cells;
        let p = |i: usize| c.by_phase[i].load(Ordering::Relaxed);
        UdfStats {
            summarize_violations: p(0),
            merge_violations: p(1),
            divide_violations: p(2),
            assign_violations: p(3),
            match_violations: p(4),
            verify_violations: p(5),
            dedup_violations: p(6),
            caught_panics: c.caught_panics.load(Ordering::Relaxed),
            budget_overruns: c.budget_overruns.load(Ordering::Relaxed),
            contract_breaches: c.contract_breaches.load(Ordering::Relaxed),
            quarantined_rows: c.quarantined.load(Ordering::Relaxed),
            fallback_activations: c.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Surface a violation deferred by a callback that cannot return
    /// `Result` (`matches`). Engines call this at the end of each guarded
    /// join so no violation is silently swallowed.
    pub fn check(&self) -> Result<()> {
        match &*self.cells.pending.lock().expect("guard pending lock") {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Reset the per-thread assign fan-out counter. Engines call this at
    /// each partition boundary (each partition runs on one worker thread).
    pub fn begin_partition(&self) {
        ASSIGN_FANOUT.with(|c| c.set(0));
    }

    /// Record that the engine degraded to the hash-equality fallback path.
    pub fn note_fallback(&self) {
        self.cells.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a violation once per distinct site and resolve it per policy:
    /// `Err(UdfViolation)` to abort, or `Ok(quarantined value)` when the
    /// policy quarantines and the callback is row-scoped.
    #[allow(clippy::too_many_arguments)]
    fn violation<R>(
        &self,
        phase: Phase,
        kind: Kind,
        site_hash: u64,
        site: &str,
        detail: String,
        quarantine: Option<R>,
    ) -> Result<R> {
        let full_site = fold(fold(site_hash, phase as u64 + 100), kind as u64 + 200);
        let is_new = self
            .cells
            .seen
            .lock()
            .expect("guard seen lock")
            .insert(full_site);
        if is_new {
            self.cells.by_phase[phase as usize].fetch_add(1, Ordering::Relaxed);
            let counter = match kind {
                Kind::Panic => &self.cells.caught_panics,
                Kind::Budget => &self.cells.budget_overruns,
                Kind::Contract => &self.cells.contract_breaches,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let err = FudjError::UdfViolation {
            phase: phase.as_str().to_owned(),
            site: site.to_owned(),
            detail,
        };
        match (self.config.policy, quarantine) {
            (UdfPolicy::Quarantine, Some(neutral)) => {
                if is_new {
                    self.cells.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                Ok(neutral)
            }
            _ => Err(err),
        }
    }

    /// Store a deferred violation (first one wins) for a callback that has
    /// no `Result` channel.
    fn defer(&self, err: FudjError) {
        let mut slot = self.cells.pending.lock().expect("guard pending lock");
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    fn pending(&self) -> Option<FudjError> {
        self.cells
            .pending
            .lock()
            .expect("guard pending lock")
            .clone()
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// ---------------------------------------------------------------------------
// GuardedJoin
// ---------------------------------------------------------------------------

/// The guardrail wrapper. Implements [`JoinAlgorithm`] by forwarding to the
/// wrapped algorithm with every callback panic-isolated, metered, and
/// contract-checked (see the module docs). Generic over the ownership of the
/// inner algorithm: `GuardedJoin<Arc<dyn JoinAlgorithm>>` on the planned
/// path, `GuardedJoin<&dyn JoinAlgorithm>` in the standalone runner.
pub struct GuardedJoin<J: JoinAlgorithm> {
    inner: J,
    handle: GuardHandle,
}

impl<J: JoinAlgorithm> GuardedJoin<J> {
    /// Wrap `inner` under `config`.
    pub fn new(inner: J, config: GuardConfig) -> Self {
        GuardedJoin {
            inner,
            handle: GuardHandle::new(config),
        }
    }

    /// The engine-facing handle (stats, pending check, fallback note).
    pub fn handle(&self) -> &GuardHandle {
        &self.handle
    }

    /// Counter snapshot.
    pub fn stats(&self) -> UdfStats {
        self.handle.stats()
    }

    /// Run one fallible callback under the guard: surface any deferred
    /// violation first, then catch panics and meter simulated time.
    fn guarded<R>(
        &self,
        phase: Phase,
        site_hash: u64,
        site: impl Fn() -> String,
        quarantine: impl FnOnce() -> Option<R>,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        if let Some(err) = self.handle.pending() {
            return Err(err);
        }
        let t0 = udf_clock();
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let elapsed = udf_clock().saturating_sub(t0);
        match outcome {
            Err(payload) => self.handle.violation(
                phase,
                Kind::Panic,
                site_hash,
                &site(),
                format!("callback panicked: {}", panic_text(payload)),
                quarantine(),
            ),
            Ok(result) => {
                let budget = self.handle.limits().call_budget_ms;
                if elapsed > budget {
                    return self.handle.violation(
                        phase,
                        Kind::Budget,
                        site_hash,
                        &site(),
                        format!(
                            "call consumed {elapsed} ms of simulated time (budget {budget} ms)"
                        ),
                        quarantine(),
                    );
                }
                // Library-level `Result` errors are legitimate and pass
                // through unchanged — only panics and blown budgets are
                // violations.
                result
            }
        }
    }

    /// Whether the seeded 1-in-N sampler selects this site for a contract
    /// probe.
    fn sampled(&self, salt: u64, site_hash: u64) -> bool {
        let n = self.handle.limits().check_sample;
        n > 0 && fold(site_hash, salt).is_multiple_of(n)
    }
}

const SALT_DETERMINISM: u64 = 0xD373;
const SALT_SYMMETRY: u64 = 0x5E77;

impl<J: JoinAlgorithm> JoinAlgorithm for GuardedJoin<J> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn new_summary(&self, side: Side) -> SummaryState {
        // No `Result` channel and no row to quarantine: defer the violation
        // (always fail-fast) and hand back a placeholder the next fallible
        // call will never get to use.
        match catch_unwind(AssertUnwindSafe(|| self.inner.new_summary(side))) {
            Ok(s) => s,
            Err(payload) => {
                let site = format!("new_summary {side}");
                let err = self
                    .handle
                    .violation::<SummaryState>(
                        Phase::Summarize,
                        Kind::Panic,
                        fold(ext_hash(&ExtValue::Null), side as u64),
                        &site,
                        format!("callback panicked: {}", panic_text(payload)),
                        None,
                    )
                    .expect_err("new_summary violations never quarantine");
                self.handle.defer(err);
                SummaryState::new(0i64)
            }
        }
    }

    fn local_aggregate(
        &self,
        side: Side,
        key: &ExtValue,
        summary: &mut SummaryState,
    ) -> Result<()> {
        let site_hash = fold(ext_hash(key), side as u64);
        self.guarded(
            Phase::Summarize,
            site_hash,
            || format!("{side} key {}", short(key)),
            || Some(()), // quarantine: skip this key's contribution
            || self.inner.local_aggregate(side, key, summary),
        )
    }

    fn global_aggregate(
        &self,
        side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        // Sample inputs for the associativity probe before they are moved.
        let probing = self.handle.limits().check_sample > 0;
        if probing {
            let mut samples = self
                .handle
                .cells
                .assoc_samples
                .lock()
                .expect("guard assoc lock");
            let bucket = &mut samples[side as usize];
            if bucket.len() < 3 {
                bucket.push(a.clone());
                if bucket.len() < 3 {
                    bucket.push(b.clone());
                }
            }
        }
        let site_hash = fold(splitmix(0x6E6), side as u64);
        let merged = self.guarded(
            Phase::Merge,
            site_hash,
            || format!("merge_summaries {side}"),
            || None, // structural: never quarantined
            || self.inner.global_aggregate(side, a, b),
        )?;
        if probing {
            self.associativity_probe(side)?;
        }
        Ok(merged)
    }

    fn symmetric(&self) -> bool {
        self.inner.symmetric()
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[ExtValue],
    ) -> Result<PPlanState> {
        let site_hash = splitmix(0xD17);
        let pplan = self.guarded(
            Phase::Divide,
            site_hash,
            || "divide".to_owned(),
            || None, // structural: never quarantined
            || self.inner.divide(left, right, params),
        )?;
        let size = pplan.serialized_len();
        let cap = self.handle.limits().max_pplan_bytes;
        if size > cap {
            return self.handle.violation(
                Phase::Divide,
                Kind::Budget,
                site_hash,
                "divide",
                format!("PPlan serializes to {size} bytes (cap {cap})"),
                None,
            );
        }
        Ok(pplan)
    }

    fn assign(
        &self,
        side: Side,
        key: &ExtValue,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        let site_hash = fold(ext_hash(key), side as u64 + 10);
        let site = || format!("{side} key {}", short(key));
        if let Some(err) = self.handle.pending() {
            return Err(err);
        }
        let start = out.len();
        let t0 = udf_clock();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.inner.assign(side, key, pplan, out)
        }));
        let elapsed = udf_clock().saturating_sub(t0);
        match outcome {
            Err(payload) => {
                // Quarantining a misbehaving row means dropping whatever
                // buckets it managed to emit before the violation.
                return self
                    .handle
                    .violation(
                        Phase::Assign,
                        Kind::Panic,
                        site_hash,
                        &site(),
                        format!("callback panicked: {}", panic_text(payload)),
                        Some(()),
                    )
                    .map(|()| out.truncate(start));
            }
            Ok(result) => result?,
        }
        let budget = self.handle.limits().call_budget_ms;
        if elapsed > budget {
            return self
                .handle
                .violation(
                    Phase::Assign,
                    Kind::Budget,
                    site_hash,
                    &site(),
                    format!("call consumed {elapsed} ms of simulated time (budget {budget} ms)"),
                    Some(()),
                )
                .map(|()| out.truncate(start));
        }
        let added = out.len() - start;

        // Contract: declared bucket range.
        if let Some(n) = self.inner.declared_buckets(pplan) {
            if let Some(&bad) = out[start..].iter().find(|&&b| b >= n) {
                return self
                    .handle
                    .violation(
                        Phase::Assign,
                        Kind::Contract,
                        site_hash,
                        &site(),
                        format!("bucket id {bad} outside the plan's declared range 0..{n}"),
                        Some(()),
                    )
                    .map(|()| out.truncate(start));
            }
        }

        // Budget: replication factor per key.
        let cap = self.handle.limits().max_buckets_per_key;
        if added > cap {
            return self
                .handle
                .violation(
                    Phase::Assign,
                    Kind::Budget,
                    site_hash,
                    &site(),
                    format!("key replicated to {added} buckets (cap {cap})"),
                    Some(()),
                )
                .map(|()| out.truncate(start));
        }

        // Budget: total fan-out per partition.
        let fanout = ASSIGN_FANOUT.with(|c| {
            let v = c.get().saturating_add(added as u64);
            c.set(v);
            v
        });
        let fanout_cap = self.handle.limits().max_assign_fanout;
        if fanout > fanout_cap {
            return self
                .handle
                .violation(
                    Phase::Assign,
                    Kind::Budget,
                    site_hash,
                    &site(),
                    format!("partition assign fan-out reached {fanout} (cap {fanout_cap})"),
                    Some(()),
                )
                .map(|()| {
                    out.truncate(start);
                    ASSIGN_FANOUT.with(|c| c.set(c.get().saturating_sub(added as u64)));
                });
        }

        // Contract: determinism, spot re-invoked on a seeded sample.
        if self.sampled(SALT_DETERMINISM, site_hash) {
            let mut again = Vec::with_capacity(added);
            let replay = catch_unwind(AssertUnwindSafe(|| {
                self.inner.assign(side, key, pplan, &mut again)
            }));
            let deterministic = matches!(replay, Ok(Ok(()))) && again == out[start..];
            if !deterministic {
                return self
                    .handle
                    .violation(
                        Phase::Assign,
                        Kind::Contract,
                        site_hash,
                        &site(),
                        format!(
                            "assign is not deterministic: first call gave {:?}, replay gave {:?}",
                            &out[start..],
                            again
                        ),
                        Some(()),
                    )
                    .map(|()| out.truncate(start));
            }
        }
        Ok(())
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        match catch_unwind(AssertUnwindSafe(|| self.inner.matches(b1, b2))) {
            Ok(v) => v,
            Err(payload) => {
                let site = format!("bucket pair ({b1}, {b2})");
                let site_hash = fold(fold(splitmix(0x3A7), b1), b2);
                match self.handle.violation(
                    Phase::Match,
                    Kind::Panic,
                    site_hash,
                    &site,
                    format!("callback panicked: {}", panic_text(payload)),
                    Some(false), // quarantine: the bucket pair simply no-matches
                ) {
                    Ok(v) => v,
                    Err(err) => {
                        // No `Result` channel here: defer and no-match.
                        self.handle.defer(err);
                        false
                    }
                }
            }
        }
    }

    fn uses_default_match(&self) -> bool {
        self.inner.uses_default_match()
    }

    fn verify(
        &self,
        b1: BucketId,
        k1: &ExtValue,
        b2: BucketId,
        k2: &ExtValue,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let site_hash = fold(fold(fold(ext_hash(k1), ext_hash(k2)), b1), b2);
        let site = || format!("pair ({}, {})", short(k1), short(k2));
        let accepted = self.guarded(
            Phase::Verify,
            site_hash,
            site,
            || Some(false), // quarantine: drop the pair
            || self.inner.verify(b1, k1, b2, k2, pplan),
        )?;

        // Contract: symmetry under the default dedup mode. Only meaningful
        // when the join is symmetric and the two keys have the same external
        // shape (mixed-shape joins like polygon × point are exempt).
        if self.sampled(SALT_SYMMETRY, site_hash)
            && self.inner.symmetric()
            && self.inner.dedup_mode() == DedupMode::Avoidance
            && std::mem::discriminant(k1) == std::mem::discriminant(k2)
        {
            let swapped = catch_unwind(AssertUnwindSafe(|| {
                self.inner.verify(b2, k2, b1, k1, pplan)
            }));
            if !matches!(swapped, Ok(Ok(v)) if v == accepted) {
                return self.handle.violation(
                    Phase::Verify,
                    Kind::Contract,
                    site_hash,
                    &site(),
                    format!(
                        "verify is not symmetric: verify(k1, k2) = {accepted}, \
                         swapped call did not agree"
                    ),
                    Some(false),
                );
            }
        }
        Ok(accepted)
    }

    fn dedup_mode(&self) -> DedupMode {
        self.inner.dedup_mode()
    }

    fn dedup(
        &self,
        b1: BucketId,
        k1: &ExtValue,
        b2: BucketId,
        k2: &ExtValue,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let site_hash = fold(fold(fold(ext_hash(k1), ext_hash(k2)), b1 + 7), b2 + 7);
        self.guarded(
            Phase::Dedup,
            site_hash,
            || format!("pair ({}, {})", short(k1), short(k2)),
            || Some(false), // quarantine: suppress the emission
            || self.inner.dedup(b1, k1, b2, k2, pplan),
        )
    }

    fn declared_buckets(&self, pplan: &PPlanState) -> Option<BucketId> {
        self.inner.declared_buckets(pplan)
    }

    fn guard(&self) -> Option<&GuardHandle> {
        Some(&self.handle)
    }
}

impl<J: JoinAlgorithm> GuardedJoin<J> {
    /// Probe merge associativity once per side, as soon as three summaries
    /// have been sampled: `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` must agree. The
    /// states are opaque, so agreement is compared on the serialized size —
    /// an order-independent proxy that still catches merges that drop or
    /// duplicate contributions.
    fn associativity_probe(&self, side: Side) -> Result<()> {
        let idx = side as usize;
        let cells = &self.handle.cells;
        let ready = {
            let samples = cells.assoc_samples.lock().expect("guard assoc lock");
            samples[idx].len() >= 3
        };
        if !ready || cells.assoc_checked[idx].swap(1, Ordering::Relaxed) == 1 {
            return Ok(());
        }
        let (s0, s1, s2) = {
            let samples = cells.assoc_samples.lock().expect("guard assoc lock");
            (
                samples[idx][0].clone(),
                samples[idx][1].clone(),
                samples[idx][2].clone(),
            )
        };
        let merge = |a: SummaryState, b: SummaryState| -> Option<SummaryState> {
            catch_unwind(AssertUnwindSafe(|| self.inner.global_aggregate(side, a, b)))
                .ok()
                .and_then(|r| r.ok())
        };
        let left_assoc = merge(s0.clone(), s1.clone()).and_then(|ab| merge(ab, s2.clone()));
        let right_assoc = merge(s1, s2).and_then(|bc| merge(s0, bc));
        if let (Some(l), Some(r)) = (left_assoc, right_assoc) {
            if l.serialized_len() != r.serialized_len() {
                return self.handle.violation(
                    Phase::Merge,
                    Kind::Contract,
                    fold(splitmix(0xA550C), side as u64),
                    &format!("merge_summaries {side}"),
                    format!(
                        "summaries do not merge associatively: (a⊕b)⊕c serializes to {} \
                         bytes, a⊕(b⊕c) to {}",
                        l.serialized_len(),
                        r.serialized_len()
                    ),
                    None,
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standalone::{run_guarded, run_standalone};

    /// A raw hash-mod equality join over `Long` keys with switchable
    /// misbehavior. Key 13 is the poison key: every fault fires only for it,
    /// so quarantine tests can predict the surviving result exactly.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Bad {
        None,
        PanicSummarize,
        PanicAssign,
        HangAssign,
        OutOfRange,
        NonDetAssign,
        OverReplicate,
        BigPplan,
        AsymVerify,
        PanicMatches,
    }

    struct Wild {
        bad: Bad,
        buckets: u64,
        calls: AtomicU64,
    }

    impl Wild {
        fn new(bad: Bad) -> Self {
            Wild {
                bad,
                buckets: 4,
                calls: AtomicU64::new(0),
            }
        }
    }

    const POISON: i64 = 13;

    impl JoinAlgorithm for Wild {
        fn name(&self) -> &str {
            "wild"
        }

        fn new_summary(&self, _side: Side) -> SummaryState {
            SummaryState::new(0i64)
        }

        fn local_aggregate(
            &self,
            _side: Side,
            key: &ExtValue,
            summary: &mut SummaryState,
        ) -> Result<()> {
            if self.bad == Bad::PanicSummarize && key.as_long()? == POISON {
                panic!("summarize kaboom");
            }
            *summary.downcast_mut::<i64>().unwrap() += 1;
            Ok(())
        }

        fn global_aggregate(
            &self,
            _side: Side,
            a: SummaryState,
            b: SummaryState,
        ) -> Result<SummaryState> {
            let sum = a.downcast_ref::<i64>().unwrap() + b.downcast_ref::<i64>().unwrap();
            Ok(SummaryState::new(sum))
        }

        fn symmetric(&self) -> bool {
            true
        }

        fn divide(
            &self,
            _left: &SummaryState,
            _right: &SummaryState,
            _params: &[ExtValue],
        ) -> Result<PPlanState> {
            if self.bad == Bad::BigPplan {
                return Ok(PPlanState::new(vec![0u64; 1024]));
            }
            Ok(PPlanState::new(self.buckets))
        }

        fn assign(
            &self,
            _side: Side,
            key: &ExtValue,
            _pplan: &PPlanState,
            out: &mut Vec<BucketId>,
        ) -> Result<()> {
            let k = key.as_long()?;
            if k == POISON {
                match self.bad {
                    Bad::PanicAssign => panic!("assign kaboom"),
                    Bad::HangAssign => consume_udf_time(60_000),
                    Bad::OutOfRange => {
                        out.push(self.buckets + 5);
                        return Ok(());
                    }
                    Bad::NonDetAssign => {
                        out.push(self.calls.fetch_add(1, Ordering::Relaxed) % self.buckets);
                        return Ok(());
                    }
                    Bad::OverReplicate => {
                        // In-range buckets, just far too many of them.
                        out.extend((0..100).map(|i| i % self.buckets));
                        return Ok(());
                    }
                    _ => {}
                }
            }
            out.push((k as u64) % self.buckets);
            Ok(())
        }

        fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
            if self.bad == Bad::PanicMatches && b1 == 1 {
                panic!("matches kaboom");
            }
            b1 == b2
        }

        fn uses_default_match(&self) -> bool {
            self.bad != Bad::PanicMatches
        }

        fn verify(
            &self,
            _b1: BucketId,
            k1: &ExtValue,
            _b2: BucketId,
            k2: &ExtValue,
            _pplan: &PPlanState,
        ) -> Result<bool> {
            let (a, b) = (k1.as_long()?, k2.as_long()?);
            if self.bad == Bad::AsymVerify {
                return Ok(a <= b);
            }
            Ok(a == b)
        }

        fn dedup_mode(&self) -> DedupMode {
            // Single-assign: dedup is unnecessary, except that the symmetry
            // probe only arms under the default avoidance mode.
            if self.bad == Bad::AsymVerify {
                DedupMode::Avoidance
            } else {
                DedupMode::None
            }
        }

        fn declared_buckets(&self, pplan: &PPlanState) -> Option<BucketId> {
            pplan.downcast_ref::<u64>().copied()
        }
    }

    fn longs(xs: &[i64]) -> Vec<ExtValue> {
        xs.iter().map(|&x| ExtValue::Long(x)).collect()
    }

    const LEFT: [i64; 5] = [1, 2, 13, 5, 6];
    const RIGHT: [i64; 5] = [2, 13, 7, 5, 13];

    /// Ground truth for `Wild`'s equality semantics, optionally without the
    /// poison key.
    fn equality_pairs(include_poison: bool) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, a) in LEFT.iter().enumerate() {
            for (j, b) in RIGHT.iter().enumerate() {
                if a == b && (include_poison || *a != POISON) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    fn run(bad: Bad, config: GuardConfig) -> Result<(Vec<(usize, usize)>, UdfStats)> {
        let wild = Wild::new(bad);
        run_guarded(&wild, config, &longs(&LEFT), &longs(&RIGHT), &[])
    }

    fn phase_of(err: FudjError) -> (String, String) {
        match err {
            FudjError::UdfViolation { phase, detail, .. } => (phase, detail),
            other => panic!("expected UdfViolation, got {other:?}"),
        }
    }

    #[test]
    fn well_behaved_guarded_run_is_clean_and_correct() {
        let (pairs, stats) = run(Bad::None, GuardConfig::default()).unwrap();
        assert_eq!(pairs, equality_pairs(true));
        assert_eq!(stats, UdfStats::default(), "guards must be invisible");
    }

    #[test]
    fn default_run_standalone_is_guarded() {
        // A panicking library surfaces a structured error, not a crash, even
        // through the plain entry point.
        let wild = Wild::new(Bad::PanicSummarize);
        let err = run_standalone(&wild, &longs(&LEFT), &longs(&RIGHT), &[]).unwrap_err();
        let (phase, detail) = phase_of(err);
        assert_eq!(phase, "summarize");
        assert!(detail.contains("kaboom"), "payload preserved: {detail}");
    }

    #[test]
    fn panic_in_summarize_quarantines_the_key() {
        let (pairs, stats) = run(
            Bad::PanicSummarize,
            GuardConfig::with_policy(UdfPolicy::Quarantine),
        )
        .unwrap();
        // Summaries only size the plan here, so the result is still exact.
        assert_eq!(pairs, equality_pairs(true));
        // One violation site per (key, side): the poison key appears on both
        // sides, and its two right-side occurrences collapse into one site.
        assert_eq!(stats.summarize_violations, 2);
        assert_eq!(stats.caught_panics, 2);
        assert_eq!(stats.quarantined_rows, 2);
    }

    #[test]
    fn panic_in_assign_fails_fast_and_quarantines() {
        let (phase, detail) = phase_of(run(Bad::PanicAssign, GuardConfig::default()).unwrap_err());
        assert_eq!(phase, "assign");
        assert!(detail.contains("assign kaboom"));

        let (pairs, stats) = run(
            Bad::PanicAssign,
            GuardConfig::with_policy(UdfPolicy::Quarantine),
        )
        .unwrap();
        assert_eq!(pairs, equality_pairs(false), "poison rows dropped");
        assert!(stats.quarantined_rows >= 1);
        assert_eq!(stats.contract_breaches, 0);
    }

    #[test]
    fn simulated_hang_is_a_budget_violation() {
        let (phase, detail) = phase_of(run(Bad::HangAssign, GuardConfig::default()).unwrap_err());
        assert_eq!(phase, "assign");
        assert!(detail.contains("simulated time"), "{detail}");

        let (pairs, stats) = run(
            Bad::HangAssign,
            GuardConfig::with_policy(UdfPolicy::Quarantine),
        )
        .unwrap();
        assert_eq!(pairs, equality_pairs(false));
        assert!(stats.budget_overruns >= 1);
    }

    #[test]
    fn out_of_range_bucket_is_a_contract_breach() {
        let (phase, detail) = phase_of(run(Bad::OutOfRange, GuardConfig::default()).unwrap_err());
        assert_eq!(phase, "assign");
        assert!(detail.contains("declared range"), "{detail}");

        let (pairs, stats) = run(
            Bad::OutOfRange,
            GuardConfig::with_policy(UdfPolicy::Quarantine),
        )
        .unwrap();
        assert_eq!(pairs, equality_pairs(false));
        assert!(stats.contract_breaches >= 1);
    }

    #[test]
    fn nondeterministic_assign_is_caught_by_the_replay_probe() {
        let mut config = GuardConfig::default();
        config.limits.check_sample = 1; // probe every key
        let (phase, detail) = phase_of(run(Bad::NonDetAssign, config).unwrap_err());
        assert_eq!(phase, "assign");
        assert!(detail.contains("not deterministic"), "{detail}");
    }

    #[test]
    fn over_replication_is_a_budget_violation() {
        let mut config = GuardConfig::default();
        config.limits.max_buckets_per_key = 8;
        let (phase, detail) = phase_of(run(Bad::OverReplicate, config.clone()).unwrap_err());
        assert_eq!(phase, "assign");
        assert!(detail.contains("replicated"), "{detail}");

        config.policy = UdfPolicy::Quarantine;
        let (pairs, stats) = run(Bad::OverReplicate, config).unwrap();
        assert_eq!(pairs, equality_pairs(false));
        assert!(stats.budget_overruns >= 1);
    }

    #[test]
    fn assign_fanout_cap_applies_per_partition() {
        let mut config = GuardConfig::default();
        config.limits.max_assign_fanout = 4;
        // Each side assigns 5 keys (one bucket each); a 4-id cap per
        // partition trips on the fifth.
        let (phase, detail) = phase_of(run(Bad::None, config).unwrap_err());
        assert_eq!(phase, "assign");
        assert!(detail.contains("fan-out"), "{detail}");

        let mut ok = GuardConfig::default();
        ok.limits.max_assign_fanout = 5;
        let (pairs, _) = run(Bad::None, ok).unwrap();
        assert_eq!(pairs, equality_pairs(true), "boundary exactly at the cap");
    }

    #[test]
    fn oversized_pplan_always_fails_fast() {
        let mut config = GuardConfig::default();
        config.limits.max_pplan_bytes = 64;
        let (phase, detail) = phase_of(run(Bad::BigPplan, config.clone()).unwrap_err());
        assert_eq!(phase, "divide");
        assert!(detail.contains("bytes"), "{detail}");

        // Structural violations ignore quarantine: there is no row to drop.
        config.policy = UdfPolicy::Quarantine;
        let (phase, _) = phase_of(run(Bad::BigPplan, config).unwrap_err());
        assert_eq!(phase, "divide");
    }

    #[test]
    fn panicking_matches_is_deferred_and_surfaced() {
        // `matches` has no Result channel: the guard records the violation
        // and the engine's end-of-join check surfaces it.
        let (phase, detail) = phase_of(run(Bad::PanicMatches, GuardConfig::default()).unwrap_err());
        assert_eq!(phase, "match");
        assert!(detail.contains("matches kaboom"), "{detail}");

        // Quarantine treats the bucket pair as a no-match: keys hashing to
        // the poisoned bucket 1 (1, 5, 13) drop out, others survive.
        let (pairs, stats) = run(
            Bad::PanicMatches,
            GuardConfig::with_policy(UdfPolicy::Quarantine),
        )
        .unwrap();
        assert_eq!(pairs, vec![(1, 0)], "only 2 = 2 survives outside bucket 1");
        assert!(stats.match_violations >= 1);
    }

    #[test]
    fn asymmetric_verify_is_caught_by_the_swap_probe() {
        let mut config = GuardConfig::default();
        config.limits.check_sample = 1;
        let (phase, detail) = phase_of(run(Bad::AsymVerify, config).unwrap_err());
        assert_eq!(phase, "verify");
        assert!(detail.contains("not symmetric"), "{detail}");
    }

    #[test]
    fn fallback_equality_degrades_to_the_plain_join() {
        for bad in [Bad::PanicAssign, Bad::OutOfRange, Bad::HangAssign] {
            let (pairs, stats) =
                run(bad, GuardConfig::with_policy(UdfPolicy::FallbackEquality)).unwrap();
            assert_eq!(pairs, equality_pairs(true), "full, correct result");
            assert_eq!(stats.fallback_activations, 1);
            assert!(stats.total_violations() >= 1);
        }
    }

    #[test]
    fn violation_sites_count_once_across_retries() {
        let wild = Wild::new(Bad::PanicSummarize);
        let guarded = GuardedJoin::new(&wild, GuardConfig::with_policy(UdfPolicy::Quarantine));
        let mut s = guarded.new_summary(Side::Left);
        // The same misbehaving row re-executed (fault recovery) must not
        // inflate the counters.
        for _ in 0..3 {
            guarded
                .local_aggregate(Side::Left, &ExtValue::Long(POISON), &mut s)
                .unwrap();
        }
        let stats = guarded.stats();
        assert_eq!(stats.summarize_violations, 1);
        assert_eq!(stats.quarantined_rows, 1);
    }

    /// A merge that drops contributions depending on grouping: concatenates
    /// but truncates to `max(len) + 1`, so association changes the size.
    struct LossyMerge;

    impl JoinAlgorithm for LossyMerge {
        fn name(&self) -> &str {
            "lossy_merge"
        }
        fn new_summary(&self, _side: Side) -> SummaryState {
            SummaryState::new(Vec::<i64>::new())
        }
        fn local_aggregate(
            &self,
            _side: Side,
            key: &ExtValue,
            summary: &mut SummaryState,
        ) -> Result<()> {
            summary
                .downcast_mut::<Vec<i64>>()
                .unwrap()
                .push(key.as_long()?);
            Ok(())
        }
        fn global_aggregate(
            &self,
            _side: Side,
            a: SummaryState,
            b: SummaryState,
        ) -> Result<SummaryState> {
            let x = a.downcast_ref::<Vec<i64>>().unwrap();
            let y = b.downcast_ref::<Vec<i64>>().unwrap();
            let cap = x.len().max(y.len()) + 1;
            let mut merged = x.clone();
            merged.extend_from_slice(y);
            merged.truncate(cap);
            Ok(SummaryState::new(merged))
        }
        fn symmetric(&self) -> bool {
            true
        }
        fn divide(
            &self,
            _left: &SummaryState,
            _right: &SummaryState,
            _params: &[ExtValue],
        ) -> Result<PPlanState> {
            Ok(PPlanState::new(1u64))
        }
        fn assign(
            &self,
            _side: Side,
            _key: &ExtValue,
            _pplan: &PPlanState,
            out: &mut Vec<BucketId>,
        ) -> Result<()> {
            out.push(0);
            Ok(())
        }
        fn verify(
            &self,
            _b1: BucketId,
            _k1: &ExtValue,
            _b2: BucketId,
            _k2: &ExtValue,
            _pplan: &PPlanState,
        ) -> Result<bool> {
            Ok(true)
        }
    }

    #[test]
    fn non_associative_merge_is_caught_by_the_triple_probe() {
        let guarded = GuardedJoin::new(LossyMerge, GuardConfig::default());
        let s = |n: usize| SummaryState::new(vec![0i64; n]);
        // Two merges feed the sampler three summaries of distinct sizes; the
        // probe then compares (a⊕b)⊕c against a⊕(b⊕c).
        let err = guarded
            .global_aggregate(Side::Left, s(1), s(2))
            .and_then(|m| guarded.global_aggregate(Side::Left, m, s(8)))
            .unwrap_err();
        let (phase, detail) = phase_of(err);
        assert_eq!(phase, "merge");
        assert!(detail.contains("associatively"), "{detail}");
        assert_eq!(guarded.stats().contract_breaches, 1);
    }

    #[test]
    fn policy_parse_and_display_round_trip() {
        for p in [
            UdfPolicy::FailFast,
            UdfPolicy::Quarantine,
            UdfPolicy::FallbackEquality,
        ] {
            assert_eq!(UdfPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(UdfPolicy::parse("fail-fast"), Some(UdfPolicy::FailFast));
        assert_eq!(
            UdfPolicy::parse("FALLBACK_EQUALITY"),
            Some(UdfPolicy::FallbackEquality)
        );
        assert_eq!(UdfPolicy::parse("lenient"), None);
    }

    #[test]
    fn stats_merge_accumulates_fieldwise() {
        let mut a = UdfStats {
            assign_violations: 1,
            quarantined_rows: 2,
            ..UdfStats::default()
        };
        let b = UdfStats {
            assign_violations: 3,
            caught_panics: 1,
            ..UdfStats::default()
        };
        a.merge(&b);
        assert_eq!(a.assign_violations, 4);
        assert_eq!(a.quarantined_rows, 2);
        assert_eq!(a.caught_panics, 1);
        assert_eq!(a.total_violations(), 4);
        assert!(a.any());
        assert!(!UdfStats::default().any());
    }
}
