//! The engine-facing (internal actor) join interface.

use crate::state::{PPlanState, SummaryState};
use fudj_types::{ExtValue, Result};
use std::fmt;

/// A bucket identifier — the paper's `bucket_id`. Joins may pack structure
/// into it (the interval join packs two granule ids), but the engine only
/// ever hashes and compares it.
pub type BucketId = u64;

/// Which input of the join a per-side function call concerns. Several FUDJ
/// functions come in left/right flavors because the two key types can differ
/// (paper §IV-A: "the framework allows two versions ... one for each side").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    Left,
    Right,
}

impl Side {
    /// The other side.
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// Duplicate-handling strategy for multi-assign joins (§III-B, §VII-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DedupMode {
    /// The join is single-assign: duplicates cannot arise; skip dedup.
    None,
    /// Default: *duplicate avoidance* — the framework re-runs `assign` on
    /// both keys and emits a pair only from its first matching bucket pair.
    Avoidance,
    /// *Duplicate elimination* — the engine removes duplicate output pairs
    /// in an extra post-join stage (costs a shuffle; Fig. 12a measures it).
    Elimination,
    /// The library overrides `dedup` with its own avoidance predicate (e.g.
    /// PBSM's reference-point method, Fig. 12b).
    Custom,
}

/// The type-erased join algorithm the engine executes — the paper's set of
/// *internal actors*. `fudj_exec` and the standalone runner drive this
/// interface; user code implements the typed [`crate::FlexibleJoin`] instead
/// and is adapted by [`crate::ProxyJoin`].
pub trait JoinAlgorithm: Send + Sync {
    /// The join's registered name (diagnostics only).
    fn name(&self) -> &str;

    // ------------------------------------------------------------------
    // SUMMARIZE
    // ------------------------------------------------------------------

    /// Fresh (identity) summary for one side.
    fn new_summary(&self, side: Side) -> SummaryState;

    /// Fold one key into a local summary — the paper's `local_aggregate`.
    fn local_aggregate(&self, side: Side, key: &ExtValue, summary: &mut SummaryState)
        -> Result<()>;

    /// Merge two partial summaries — the paper's `global_aggregate`.
    fn global_aggregate(
        &self,
        side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState>;

    /// Whether both sides share summarize/assign logic. When true, the
    /// optimizer may summarize a self-join once and replicate the result
    /// (§VI-C's first physical optimization).
    fn symmetric(&self) -> bool;

    // ------------------------------------------------------------------
    // DIVIDE
    // ------------------------------------------------------------------

    /// Combine the two global summaries and the query parameters into the
    /// partitioning plan.
    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[ExtValue],
    ) -> Result<PPlanState>;

    // ------------------------------------------------------------------
    // PARTITION
    // ------------------------------------------------------------------

    /// Bucket ids for a key under the plan, appended to `out` (reused across
    /// calls to keep the hot path allocation-free). One id = single-assign;
    /// several = multi-assign.
    fn assign(
        &self,
        side: Side,
        key: &ExtValue,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()>;

    // ------------------------------------------------------------------
    // COMBINE
    // ------------------------------------------------------------------

    /// Whether two buckets should be joined. The default is equality, which
    /// lets the optimizer pick hash partitioning + hash join (§VI-C's second
    /// physical optimization); overriding makes the join a theta multi-join
    /// handled by NLJ bucket matching.
    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        b1 == b2
    }

    /// Whether `matches` is the default equality. Libraries overriding
    /// `matches` must return false so the optimizer stops assuming hash
    /// join applies.
    fn uses_default_match(&self) -> bool {
        true
    }

    /// Whether a record pair from matched buckets belongs in the result.
    fn verify(
        &self,
        b1: BucketId,
        k1: &ExtValue,
        b2: BucketId,
        k2: &ExtValue,
        pplan: &PPlanState,
    ) -> Result<bool>;

    /// Duplicate-handling strategy.
    fn dedup_mode(&self) -> DedupMode {
        DedupMode::Avoidance
    }

    /// Custom dedup predicate, consulted only when [`Self::dedup_mode`] is
    /// [`DedupMode::Custom`]: return true iff the pair should be emitted
    /// from this bucket pair.
    fn dedup(
        &self,
        _b1: BucketId,
        _k1: &ExtValue,
        _b2: BucketId,
        _k2: &ExtValue,
        _pplan: &PPlanState,
    ) -> Result<bool> {
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Guardrail hooks (PR 3)
    // ------------------------------------------------------------------

    /// Exclusive upper bound of the bucket-id range this plan may assign
    /// into, when the library declares one. `None` (the default) disables
    /// the guard layer's range check.
    fn declared_buckets(&self, _pplan: &PPlanState) -> Option<BucketId> {
        None
    }

    /// The guardrail handle, when this algorithm is a
    /// [`crate::guard::GuardedJoin`] (or forwards to one). Engines use it to
    /// surface [`crate::guard::UdfStats`], flush deferred violations, and
    /// decide fallback behavior.
    fn guard(&self) -> Option<&crate::guard::GuardHandle> {
        None
    }
}

/// Forward the whole [`JoinAlgorithm`] surface through a smart pointer or
/// reference, so guards and runners can wrap `Arc<dyn JoinAlgorithm>` and
/// `&dyn JoinAlgorithm` alike.
macro_rules! forward_join_algorithm {
    (($($gen:tt)*), $ty:ty) => {
        impl<$($gen)*> JoinAlgorithm for $ty {
            fn name(&self) -> &str {
                (**self).name()
            }
            fn new_summary(&self, side: Side) -> SummaryState {
                (**self).new_summary(side)
            }
            fn local_aggregate(
                &self,
                side: Side,
                key: &ExtValue,
                summary: &mut SummaryState,
            ) -> Result<()> {
                (**self).local_aggregate(side, key, summary)
            }
            fn global_aggregate(
                &self,
                side: Side,
                a: SummaryState,
                b: SummaryState,
            ) -> Result<SummaryState> {
                (**self).global_aggregate(side, a, b)
            }
            fn symmetric(&self) -> bool {
                (**self).symmetric()
            }
            fn divide(
                &self,
                left: &SummaryState,
                right: &SummaryState,
                params: &[ExtValue],
            ) -> Result<PPlanState> {
                (**self).divide(left, right, params)
            }
            fn assign(
                &self,
                side: Side,
                key: &ExtValue,
                pplan: &PPlanState,
                out: &mut Vec<BucketId>,
            ) -> Result<()> {
                (**self).assign(side, key, pplan, out)
            }
            fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
                (**self).matches(b1, b2)
            }
            fn uses_default_match(&self) -> bool {
                (**self).uses_default_match()
            }
            fn verify(
                &self,
                b1: BucketId,
                k1: &ExtValue,
                b2: BucketId,
                k2: &ExtValue,
                pplan: &PPlanState,
            ) -> Result<bool> {
                (**self).verify(b1, k1, b2, k2, pplan)
            }
            fn dedup_mode(&self) -> DedupMode {
                (**self).dedup_mode()
            }
            fn dedup(
                &self,
                b1: BucketId,
                k1: &ExtValue,
                b2: BucketId,
                k2: &ExtValue,
                pplan: &PPlanState,
            ) -> Result<bool> {
                (**self).dedup(b1, k1, b2, k2, pplan)
            }
            fn declared_buckets(&self, pplan: &PPlanState) -> Option<BucketId> {
                (**self).declared_buckets(pplan)
            }
            fn guard(&self) -> Option<&crate::guard::GuardHandle> {
                (**self).guard()
            }
        }
    };
}

forward_join_algorithm!(('a, T: JoinAlgorithm + ?Sized), &'a T);
forward_join_algorithm!((T: JoinAlgorithm + ?Sized), std::sync::Arc<T>);

/// The framework's default duplicate-avoidance predicate (§IV-C): re-run
/// `assign` on both keys, enumerate matching bucket pairs in a canonical
/// order, and accept only when `(b1, b2)` is the first one. Every engine
/// (distributed and standalone) shares this implementation, so avoidance
/// semantics cannot drift between them.
pub fn avoidance_accepts(
    alg: &dyn JoinAlgorithm,
    b1: BucketId,
    k1: &ExtValue,
    b2: BucketId,
    k2: &ExtValue,
    pplan: &PPlanState,
) -> Result<bool> {
    let mut left = Vec::new();
    let mut right = Vec::new();
    alg.assign(Side::Left, k1, pplan, &mut left)?;
    alg.assign(Side::Right, k2, pplan, &mut right)?;
    left.sort_unstable();
    left.dedup();
    right.sort_unstable();
    right.dedup();
    for &x in &left {
        for &y in &right {
            if alg.matches(x, y) {
                return Ok((x, y) == (b1, b2));
            }
        }
    }
    // No matching bucket pair at all: the pair should never have met; drop.
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_flip() {
        assert_eq!(Side::Left.flip(), Side::Right);
        assert_eq!(Side::Right.flip(), Side::Left);
        assert_eq!(Side::Left.to_string(), "left");
    }

    #[test]
    fn dedup_mode_is_copy_eq() {
        let m = DedupMode::Avoidance;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(DedupMode::None, DedupMode::Custom);
    }
}
