//! # FUDJ — the Flexible User-Defined Distributed Join programming model
//!
//! This crate is the paper's primary contribution, rebuilt in Rust. A
//! developer adds a new *partition-based distributed join algorithm* to the
//! engine by implementing the small [`FlexibleJoin`] trait — the Rust
//! rendering of the paper's SUMMARIZE / PARTITION / COMBINE functions:
//!
//! | Paper function                       | Trait method                         |
//! |--------------------------------------|--------------------------------------|
//! | `local_aggregate(key, S)`            | [`FlexibleJoin::summarize`]          |
//! | `global_aggregate(S1, S2)`           | [`FlexibleJoin::merge_summaries`]    |
//! | `divide(S1, S2) → PPlan`             | [`FlexibleJoin::divide`]             |
//! | `assign(key, PPlan) → [bucket_id]`   | [`FlexibleJoin::assign`]             |
//! | `match(b1, b2)` (default: equality)  | [`FlexibleJoin::matches`]            |
//! | `verify(k1, k2)`                     | [`FlexibleJoin::verify`]             |
//! | `dedup(...)` (default: avoidance)    | [`FlexibleJoin::custom_dedup`] + [`DedupMode`] |
//!
//! The engine never calls user code directly. It talks to the dyn-safe
//! [`JoinAlgorithm`] interface (the paper's *internal actor*), and
//! [`ProxyJoin`] adapts any `FlexibleJoin` to it (the *proxy built-in
//! function* of Fig. 7), carrying the typed `Summary`/`PPlan` states across
//! the boundary as type-erased, serializable [`state`] objects — the same
//! role AsterixDB's "treat PPlan as a record of type Object" plays.
//!
//! Join libraries are installed and joins created/dropped through the
//! [`JoinRegistry`] — the `CREATE JOIN` / `DROP JOIN` lifecycle — without
//! rebuilding or restarting anything.
//!
//! Finally, [`standalone`] is the paper's single-machine prototype (§VI-D2):
//! it runs any `JoinAlgorithm` through the full three-phase flow in plain
//! sequential code, for debugging new join libraries and as a reference
//! semantics for the distributed engine's tests.

pub mod engine;
pub mod flexible;
pub mod guard;
pub mod library;
pub mod model;
pub mod registry;
pub mod standalone;
pub mod state;

pub use engine::{reference_execute, EngineJoin, FaultConfig, FudjEngineJoin, RetryPolicy};
pub use flexible::{FlexibleJoin, ProxyJoin};
pub use guard::{
    consume_udf_time, GuardConfig, GuardHandle, GuardMode, GuardedJoin, UdfLimits, UdfPolicy,
    UdfStats,
};
pub use library::{JoinLibrary, JoinLibraryBuilder};
pub use model::{avoidance_accepts, BucketId, DedupMode, JoinAlgorithm, Side};
pub use registry::{JoinDefinition, JoinLease, JoinRegistry, RegistryEvent, RegistrySink};
pub use state::{PPlanState, StateObject, SummaryState};
