//! The engine-side join strategy interface.
//!
//! The execution engine drives distributed joins through [`EngineJoin`], a
//! native-[`Value`] interface. Two families implement it:
//!
//! * [`FudjEngineJoin`] wraps a registered [`JoinAlgorithm`] (i.e. a user's
//!   FUDJ library behind its proxy). Every key crossing into user code is
//!   translated to an [`fudj_types::ExtValue`] first — the paper's Fig. 7
//!   boundary. The adapter counts those translations so the §VII-B overhead
//!   experiment can report the cost of the extensibility layer.
//! * Hand-written *built-in* operators (in the `fudj-joins` crate) implement
//!   `EngineJoin` directly on native values with concrete state types — the
//!   paper's from-scratch baseline, which FUDJ is benchmarked against.
//!
//! `EngineJoin` also exposes [`EngineJoin::local_join_pairs`], the per-bucket
//! local join. The default is the nested loop the plain FUDJ operator uses;
//! the §VII-F "advanced" spatial operator overrides it with a plane sweep.

use crate::model::{avoidance_accepts, BucketId, DedupMode, JoinAlgorithm, Side};
use crate::state::{PPlanState, SummaryState};
use fudj_types::{ext, Result, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Retry/recovery policy for the execution engine: how the cluster reacts
/// to failed tasks, lost shuffle partitions, and stragglers. Plain data,
/// defined here (next to the engine-facing join interface) so every layer
/// — executor, exchanges, SQL session, CLI — shares one vocabulary of
/// knobs without depending on the exec crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per task (and per partition delivery) before the
    /// failure escalates as a `FudjError`. The first attempt is free:
    /// `max_retries = 4` allows up to 5 executions.
    pub max_retries: u32,
    /// Base of the simulated exponential backoff: attempt `k` waits
    /// `backoff_base_ms << k` simulated milliseconds. The clock is
    /// simulated — no wall-clock sleeping, so chaos tests stay fast and
    /// decisions stay reproducible.
    pub backoff_base_ms: u64,
    /// A task whose simulated duration exceeds `straggler_multiple` × the
    /// median task duration of its batch is speculatively re-executed on
    /// another worker, and the faster copy wins.
    pub straggler_multiple: u32,
    /// Slowdown factor an injected straggler fault applies to a task's
    /// simulated duration.
    pub straggler_factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            backoff_base_ms: 10,
            straggler_multiple: 3,
            straggler_factor: 10,
        }
    }
}

/// Deterministic fault-injection configuration for the simulated cluster.
///
/// Every probability is an independent per-site chance in `[0, 1]`; the
/// site (seed, dispatch step, worker, task, attempt) fully determines each
/// decision, so a given seed always produces the identical fault schedule
/// regardless of thread scheduling or wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Root seed of the fault schedule.
    pub seed: u64,
    /// Chance a task attempt panics mid-flight (exercises the worker
    /// pool's unwind isolation).
    pub panic_prob: f64,
    /// Chance a task attempt fails with a transient (retryable) error.
    pub transient_prob: f64,
    /// Chance the worker running a task attempt is "lost"; the task is
    /// re-executed on the next surviving worker.
    pub worker_loss_prob: f64,
    /// Chance a whole worker dies *permanently* at a stage boundary
    /// (vs. the transient loss above): its resident partitions are gone
    /// and it takes no further tasks. Recovery restores the lost
    /// partitions from stage checkpoints when they cover the loss, and
    /// falls back to a full-stage replay otherwise.
    pub worker_death_prob: f64,
    /// Chance a task runs as a straggler (simulated slowdown by
    /// [`RetryPolicy::straggler_factor`], candidate for speculation).
    pub straggler_prob: f64,
    /// Chance a remote shuffle/broadcast/gather partition delivery is
    /// dropped (recovered by retransmission).
    pub drop_prob: f64,
    /// Chance a remote partition delivery is duplicated (recovered by
    /// receiver-side sequence dedup).
    pub duplicate_prob: f64,
    /// Retry/backoff/speculation policy.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// A moderately hostile cluster: every fault class enabled at rates
    /// that exercise all recovery paths while staying comfortably inside
    /// the default retry budget.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            panic_prob: 0.04,
            transient_prob: 0.06,
            worker_loss_prob: 0.03,
            worker_death_prob: 0.0,
            straggler_prob: 0.08,
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            retry: RetryPolicy::default(),
        }
    }

    /// [`FaultConfig::chaos`] plus permanent worker deaths at stage
    /// boundaries — the harshest plan: every recovery path including
    /// checkpoint restore / full-stage replay is exercised.
    pub fn chaos_with_deaths(seed: u64) -> Self {
        FaultConfig {
            worker_death_prob: 0.12,
            ..FaultConfig::chaos(seed)
        }
    }

    /// A fault plan that injects nothing — execution must be bit-for-bit
    /// identical to running with no plan at all.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            panic_prob: 0.0,
            transient_prob: 0.0,
            worker_loss_prob: 0.0,
            worker_death_prob: 0.0,
            straggler_prob: 0.0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            retry: RetryPolicy::default(),
        }
    }

    /// Whether any fault class has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0
            || self.transient_prob > 0.0
            || self.worker_loss_prob > 0.0
            || self.worker_death_prob > 0.0
            || self.straggler_prob > 0.0
            || self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
    }
}

/// A distributed partition-based join, as the engine sees it.
pub trait EngineJoin: Send + Sync {
    /// Name for plans and metrics.
    fn name(&self) -> &str;

    /// Fresh (identity) summary for one side.
    fn new_summary(&self, side: Side) -> SummaryState;

    /// Fold one key into a local summary.
    fn local_aggregate(&self, side: Side, key: &Value, summary: &mut SummaryState) -> Result<()>;

    /// Merge two partial summaries.
    fn global_aggregate(
        &self,
        side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState>;

    /// Whether both sides share summarize/assign logic (self-join rewrite).
    fn symmetric(&self) -> bool;

    /// Build the partitioning plan from both summaries + query parameters.
    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[Value],
    ) -> Result<PPlanState>;

    /// Bucket ids for a key, appended to `out`.
    fn assign(
        &self,
        side: Side,
        key: &Value,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()>;

    /// Bucket ids for a whole key slice: `each(i, buckets)` is called once
    /// per key, in order, with that key's sorted, deduplicated bucket
    /// list. The columnar executor calls this once per partition stride
    /// instead of once per row, amortizing the call boundary the paper's
    /// §VII-B measures; batch-aware operators can override it to assign a
    /// slice in one pass. The default loops [`EngineJoin::assign`], so a
    /// guarded join keeps its per-call panic/violation attribution.
    fn assign_slice(
        &self,
        side: Side,
        keys: &[&Value],
        pplan: &PPlanState,
        each: &mut dyn FnMut(usize, &[BucketId]),
    ) -> Result<()> {
        let mut buckets: Vec<BucketId> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            buckets.clear();
            self.assign(side, key, pplan, &mut buckets)?;
            buckets.sort_unstable();
            buckets.dedup();
            each(i, &buckets);
        }
        Ok(())
    }

    /// Bucket matching (default equality).
    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        b1 == b2
    }

    /// Whether `matches` is the default equality (hash-join eligibility).
    fn uses_default_match(&self) -> bool {
        true
    }

    /// Record-pair verification.
    fn verify(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool>;

    /// Duplicate-handling strategy.
    fn dedup_mode(&self) -> DedupMode {
        DedupMode::Avoidance
    }

    /// Dedup predicate for [`DedupMode::Avoidance`] and [`DedupMode::Custom`]:
    /// should the pair be emitted from this bucket pair?
    fn dedup(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool>;

    /// Local join of one matched bucket pair: emit the indices of key pairs
    /// that pass `verify` (dedup is applied by the caller). The default is
    /// the nested loop; operators with local optimizations (plane sweep,
    /// sort-merge) override this — the §VII-F hook.
    fn local_join_pairs(
        &self,
        b1: BucketId,
        left_keys: &[Value],
        b2: BucketId,
        right_keys: &[Value],
        pplan: &PPlanState,
        emit: &mut dyn FnMut(usize, usize),
    ) -> Result<()> {
        for (i, k1) in left_keys.iter().enumerate() {
            for (j, k2) in right_keys.iter().enumerate() {
                if self.verify(b1, k1, b2, k2, pplan)? {
                    emit(i, j);
                }
            }
        }
        Ok(())
    }

    /// The guardrail handle, when the underlying algorithm is wrapped in a
    /// [`crate::guard::GuardedJoin`]. The executor uses it to surface
    /// [`crate::guard::UdfStats`], flush deferred violations, and decide
    /// fallback behavior.
    fn guard(&self) -> Option<&crate::guard::GuardHandle> {
        None
    }
}

/// Adapter: a registered FUDJ algorithm as an [`EngineJoin`].
///
/// Carries the per-call [`Value`] → [`fudj_types::ExtValue`] translation and
/// counts every crossing of the boundary.
pub struct FudjEngineJoin {
    alg: Arc<dyn JoinAlgorithm>,
    translations: AtomicU64,
    /// Keeps the originating [`crate::registry::JoinDefinition`] pinned while
    /// a plan holds this strategy, so `DROP JOIN` fails cleanly instead of
    /// half-removing an entry a query still uses.
    _lease: Option<crate::registry::JoinLease>,
}

impl FudjEngineJoin {
    /// Wrap a registered algorithm.
    pub fn new(alg: Arc<dyn JoinAlgorithm>) -> Self {
        FudjEngineJoin {
            alg,
            translations: AtomicU64::new(0),
            _lease: None,
        }
    }

    /// Wrap a registered algorithm while holding a registry lease for the
    /// lifetime of this strategy (i.e. of the physical plan).
    pub fn with_lease(alg: Arc<dyn JoinAlgorithm>, lease: crate::registry::JoinLease) -> Self {
        FudjEngineJoin {
            alg,
            translations: AtomicU64::new(0),
            _lease: Some(lease),
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &Arc<dyn JoinAlgorithm> {
        &self.alg
    }

    /// How many engine→external value translations have happened — the
    /// extensibility-boundary traffic the §VII-B experiment quantifies.
    pub fn translation_count(&self) -> u64 {
        self.translations.load(Ordering::Relaxed)
    }

    #[inline]
    fn xlate(&self, v: &Value) -> Result<fudj_types::ExtValue> {
        self.translations.fetch_add(1, Ordering::Relaxed);
        ext::to_external(v)
    }
}

impl EngineJoin for FudjEngineJoin {
    fn name(&self) -> &str {
        self.alg.name()
    }

    fn new_summary(&self, side: Side) -> SummaryState {
        self.alg.new_summary(side)
    }

    fn local_aggregate(&self, side: Side, key: &Value, summary: &mut SummaryState) -> Result<()> {
        let ek = self.xlate(key)?;
        self.alg.local_aggregate(side, &ek, summary)
    }

    fn global_aggregate(
        &self,
        side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        self.alg.global_aggregate(side, a, b)
    }

    fn symmetric(&self) -> bool {
        self.alg.symmetric()
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[Value],
    ) -> Result<PPlanState> {
        let eparams: Vec<fudj_types::ExtValue> = params
            .iter()
            .map(|p| self.xlate(p))
            .collect::<Result<_>>()?;
        self.alg.divide(left, right, &eparams)
    }

    fn assign(
        &self,
        side: Side,
        key: &Value,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        let ek = self.xlate(key)?;
        self.alg.assign(side, &ek, pplan, out)
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        self.alg.matches(b1, b2)
    }

    fn uses_default_match(&self) -> bool {
        self.alg.uses_default_match()
    }

    fn verify(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let e1 = self.xlate(k1)?;
        let e2 = self.xlate(k2)?;
        self.alg.verify(b1, &e1, b2, &e2, pplan)
    }

    fn dedup_mode(&self) -> DedupMode {
        self.alg.dedup_mode()
    }

    fn dedup(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let e1 = self.xlate(k1)?;
        let e2 = self.xlate(k2)?;
        match self.alg.dedup_mode() {
            DedupMode::Custom => self.alg.dedup(b1, &e1, b2, &e2, pplan),
            _ => avoidance_accepts(self.alg.as_ref(), b1, &e1, b2, &e2, pplan),
        }
    }

    fn guard(&self) -> Option<&crate::guard::GuardHandle> {
        self.alg.guard()
    }
}

/// Sequential reference execution of an [`EngineJoin`] over in-memory keys:
/// the [`crate::standalone`] runner's counterpart at the engine interface.
///
/// Returns sorted `(left_index, right_index)` result pairs. The distributed
/// engine must produce exactly this set for the same inputs — its tests use
/// this function as the oracle — and built-in operators are validated
/// against their FUDJ twins through it.
pub fn reference_execute(
    ej: &dyn EngineJoin,
    left_keys: &[Value],
    right_keys: &[Value],
    params: &[Value],
) -> Result<Vec<(usize, usize)>> {
    use std::collections::HashMap;

    // SUMMARIZE
    let mut ls = ej.new_summary(Side::Left);
    for k in left_keys {
        ej.local_aggregate(Side::Left, k, &mut ls)?;
    }
    let mut rs = ej.new_summary(Side::Right);
    for k in right_keys {
        ej.local_aggregate(Side::Right, k, &mut rs)?;
    }

    // DIVIDE
    let pplan = ej.divide(&ls, &rs, params)?;

    // PARTITION
    let mut scratch = Vec::new();
    let mut bucketize = |side: Side, keys: &[Value]| -> Result<HashMap<BucketId, Vec<usize>>> {
        let mut m: HashMap<BucketId, Vec<usize>> = HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            scratch.clear();
            ej.assign(side, k, &pplan, &mut scratch)?;
            scratch.sort_unstable();
            scratch.dedup();
            for &b in &scratch {
                m.entry(b).or_default().push(i);
            }
        }
        Ok(m)
    };
    let left_buckets = bucketize(Side::Left, left_keys)?;
    let right_buckets = bucketize(Side::Right, right_keys)?;

    // COMBINE
    let mut matched: Vec<(BucketId, BucketId)> = Vec::new();
    if ej.uses_default_match() {
        for &b in left_buckets.keys() {
            if right_buckets.contains_key(&b) {
                matched.push((b, b));
            }
        }
    } else {
        for &b1 in left_buckets.keys() {
            for &b2 in right_buckets.keys() {
                if ej.matches(b1, b2) {
                    matched.push((b1, b2));
                }
            }
        }
    }
    matched.sort_unstable();

    let mode = ej.dedup_mode();
    let mut out = Vec::new();
    for (b1, b2) in matched {
        let lefts = &left_buckets[&b1];
        let rights = &right_buckets[&b2];
        let lkeys: Vec<Value> = lefts.iter().map(|&i| left_keys[i].clone()).collect();
        let rkeys: Vec<Value> = rights.iter().map(|&j| right_keys[j].clone()).collect();
        let mut verified: Vec<(usize, usize)> = Vec::new();
        ej.local_join_pairs(b1, &lkeys, b2, &rkeys, &pplan, &mut |i, j| {
            verified.push((lefts[i], rights[j]));
        })?;
        for (i, j) in verified {
            let keep = match mode {
                DedupMode::None | DedupMode::Elimination => true,
                DedupMode::Avoidance | DedupMode::Custom => {
                    ej.dedup(b1, &left_keys[i], b2, &right_keys[j], &pplan)?
                }
            };
            if keep {
                out.push((i, j));
            }
        }
    }
    out.sort_unstable();
    if mode == DedupMode::Elimination {
        out.dedup();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexible::{FlexibleJoin, ProxyJoin};
    use fudj_types::ExtValue;

    struct EqJoin;
    impl FlexibleJoin for EqJoin {
        type Summary = i64;
        type PPlan = i64;
        fn name(&self) -> &str {
            "eq"
        }
        fn summarize(&self, key: &ExtValue, s: &mut i64) -> Result<()> {
            *s = (*s).max(key.as_long()?.abs());
            Ok(())
        }
        fn merge_summaries(&self, a: i64, b: i64) -> i64 {
            a.max(b)
        }
        fn divide(&self, _: &i64, _: &i64, _: &[ExtValue]) -> Result<i64> {
            Ok(16)
        }
        fn assign(&self, key: &ExtValue, n: &i64, out: &mut Vec<BucketId>) -> Result<()> {
            out.push(key.as_long()?.rem_euclid(*n) as BucketId);
            Ok(())
        }
        fn verify(&self, k1: &ExtValue, k2: &ExtValue, _: &i64) -> Result<bool> {
            Ok(k1.as_long()? == k2.as_long()?)
        }
        fn dedup_mode(&self) -> DedupMode {
            DedupMode::None
        }
    }

    #[test]
    fn adapter_translates_and_counts() {
        let ej = FudjEngineJoin::new(Arc::new(ProxyJoin::new(EqJoin)));
        let mut s = ej.new_summary(Side::Left);
        ej.local_aggregate(Side::Left, &Value::Int64(42), &mut s)
            .unwrap();
        assert_eq!(ej.translation_count(), 1);

        let plan = ej.divide(&s, &s, &[]).unwrap();
        let mut out = Vec::new();
        ej.assign(Side::Left, &Value::Int64(18), &plan, &mut out)
            .unwrap();
        assert_eq!(out, vec![2]);
        assert!(ej
            .verify(2, &Value::Int64(18), 2, &Value::Int64(18), &plan)
            .unwrap());
        assert!(ej.translation_count() >= 4);
    }

    #[test]
    fn default_local_join_is_verified_nested_loop() {
        let ej = FudjEngineJoin::new(Arc::new(ProxyJoin::new(EqJoin)));
        let s = ej.new_summary(Side::Left);
        let plan = ej.divide(&s, &s, &[]).unwrap();
        let left = vec![Value::Int64(1), Value::Int64(2)];
        let right = vec![Value::Int64(2), Value::Int64(1), Value::Int64(2)];
        let mut pairs = Vec::new();
        ej.local_join_pairs(0, &left, 0, &right, &plan, &mut |i, j| pairs.push((i, j)))
            .unwrap();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn dedup_on_datetime_keys_goes_through_translation() {
        let ej = FudjEngineJoin::new(Arc::new(ProxyJoin::new(EqJoin)));
        let s = ej.new_summary(Side::Left);
        let plan = ej.divide(&s, &s, &[]).unwrap();
        // DateTime translates to Long; dedup (avoidance) accepts the single
        // matching bucket pair.
        let k = Value::DateTime(33);
        assert!(ej.dedup(1, &k, 1, &k, &plan).unwrap());
        assert!(!ej.dedup(0, &k, 0, &k, &plan).unwrap());
    }
}
