//! Join libraries — the "JAR package" of the paper's `CREATE JOIN`.
//!
//! A library is a named bundle of join-algorithm factories, keyed by class
//! name. Installing a library and creating joins from it never touches the
//! engine build: the paper's headline deployment claim ("new FUDJ packages
//! within seconds without system disruption") holds here by construction.

use crate::model::JoinAlgorithm;
use fudj_types::{FudjError, Result};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Factory producing a fresh algorithm instance for a query.
pub type JoinFactory = Arc<dyn Fn() -> Arc<dyn JoinAlgorithm> + Send + Sync>;

/// A named bundle of join implementations (the uploaded "library").
pub struct JoinLibrary {
    name: String,
    factories: HashMap<String, JoinFactory>,
}

impl JoinLibrary {
    /// Start building a library.
    pub fn builder(name: impl Into<String>) -> JoinLibraryBuilder {
        JoinLibraryBuilder {
            name: name.into(),
            factories: HashMap::new(),
        }
    }

    /// The library's name (the `AT <library>` clause target).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Class names available in this library, sorted.
    pub fn classes(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Instantiate the algorithm registered under `class`.
    pub fn instantiate(&self, class: &str) -> Result<Arc<dyn JoinAlgorithm>> {
        self.factories.get(class).map(|f| f()).ok_or_else(|| {
            FudjError::JoinNotFound(format!("class {class:?} in library {:?}", self.name))
        })
    }
}

impl fmt::Debug for JoinLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JoinLibrary({:?}, classes: {:?})",
            self.name,
            self.classes()
        )
    }
}

/// Builder for [`JoinLibrary`].
pub struct JoinLibraryBuilder {
    name: String,
    factories: HashMap<String, JoinFactory>,
}

impl JoinLibraryBuilder {
    /// Register an algorithm under a class name (the paper's
    /// `"package.ClassName"` string).
    pub fn with_class(
        mut self,
        class: impl Into<String>,
        factory: impl Fn() -> Arc<dyn JoinAlgorithm> + Send + Sync + 'static,
    ) -> Self {
        self.factories.insert(class.into(), Arc::new(factory));
        self
    }

    /// Finish building.
    pub fn build(self) -> JoinLibrary {
        JoinLibrary {
            name: self.name,
            factories: self.factories,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexible::{FlexibleJoin, ProxyJoin};
    use crate::model::BucketId;
    use fudj_types::ExtValue;

    struct Noop;
    impl FlexibleJoin for Noop {
        type Summary = i64;
        type PPlan = i64;
        fn name(&self) -> &str {
            "noop"
        }
        fn summarize(&self, _: &ExtValue, _: &mut i64) -> Result<()> {
            Ok(())
        }
        fn merge_summaries(&self, a: i64, _: i64) -> i64 {
            a
        }
        fn divide(&self, _: &i64, _: &i64, _: &[ExtValue]) -> Result<i64> {
            Ok(1)
        }
        fn assign(&self, _: &ExtValue, _: &i64, out: &mut Vec<BucketId>) -> Result<()> {
            out.push(0);
            Ok(())
        }
        fn verify(&self, _: &ExtValue, _: &ExtValue, _: &i64) -> Result<bool> {
            Ok(true)
        }
    }

    #[test]
    fn build_and_instantiate() {
        let lib = JoinLibrary::builder("flexiblejoins")
            .with_class("noop.Noop", || Arc::new(ProxyJoin::new(Noop)))
            .build();
        assert_eq!(lib.name(), "flexiblejoins");
        assert_eq!(lib.classes(), vec!["noop.Noop"]);
        let alg = lib.instantiate("noop.Noop").unwrap();
        assert_eq!(alg.name(), "noop");
        assert!(lib.instantiate("missing.Class").is_err());
    }
}
