//! The user-facing typed programming model and its proxy adapter.

use crate::model::{BucketId, DedupMode, JoinAlgorithm, Side};
use crate::state::{PPlanState, StateObject, SummaryState};
use fudj_types::{ExtValue, FudjError, Result};
use std::fmt;
use std::marker::PhantomData;

/// The FUDJ programming model — what a join developer writes.
///
/// A developer supplies concrete `Summary` and `PPlan` types plus the seven
/// functions of the paper's Fig. 6; the engine-side machinery (distributed
/// aggregation, PPlan broadcast, shuffling, bucket matching, dedup) is
/// inherited. Compare the paper's ~100–250 LOC per algorithm to the ~2,000
/// LOC of a hand-integrated operator — Table II, which the bench harness
/// recomputes over this repository's own sources.
///
/// Asymmetric joins (different key types or logic per side) override the
/// `*_right` variants and return `false` from [`FlexibleJoin::symmetric`];
/// the defaults delegate to the left-side functions, which keeps the common
/// symmetric case at one implementation (and lets the optimizer apply the
/// self-join summarize-once rewrite).
pub trait FlexibleJoin: Send + Sync + 'static {
    /// Per-side aggregation state. `Default` is the aggregation identity.
    type Summary: StateObject + Clone + Default;
    /// The partitioning plan produced by `divide`.
    type PPlan: StateObject + Clone;

    /// The join's name (used in error messages; the registry name comes from
    /// `CREATE JOIN`).
    fn name(&self) -> &str;

    /// Fold one left-side key into the summary (`local_aggregate`).
    fn summarize(&self, key: &ExtValue, summary: &mut Self::Summary) -> Result<()>;

    /// Fold one right-side key. Defaults to the left logic.
    fn summarize_right(&self, key: &ExtValue, summary: &mut Self::Summary) -> Result<()> {
        self.summarize(key, summary)
    }

    /// Merge two partial summaries (`global_aggregate`).
    fn merge_summaries(&self, a: Self::Summary, b: Self::Summary) -> Self::Summary;

    /// Whether both sides share summarize/assign logic.
    fn symmetric(&self) -> bool {
        true
    }

    /// Combine both global summaries and query parameters into the plan.
    fn divide(
        &self,
        left: &Self::Summary,
        right: &Self::Summary,
        params: &[ExtValue],
    ) -> Result<Self::PPlan>;

    /// Bucket ids for a left-side key, appended to `out`.
    fn assign(&self, key: &ExtValue, pplan: &Self::PPlan, out: &mut Vec<BucketId>) -> Result<()>;

    /// Bucket ids for a right-side key. Defaults to the left logic.
    fn assign_right(
        &self,
        key: &ExtValue,
        pplan: &Self::PPlan,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        self.assign(key, pplan, out)
    }

    /// Bucket matching; default equality (single-join). Override together
    /// with [`FlexibleJoin::uses_default_match`] for theta (multi-join)
    /// matching.
    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        b1 == b2
    }

    /// Must return `false` when [`FlexibleJoin::matches`] is overridden.
    fn uses_default_match(&self) -> bool {
        true
    }

    /// Final record-pair check.
    fn verify(&self, k1: &ExtValue, k2: &ExtValue, pplan: &Self::PPlan) -> Result<bool>;

    /// Duplicate handling; the framework default is avoidance.
    fn dedup_mode(&self) -> DedupMode {
        DedupMode::Avoidance
    }

    /// Custom dedup predicate (used when `dedup_mode` is `Custom`).
    fn custom_dedup(
        &self,
        _b1: BucketId,
        _k1: &ExtValue,
        _b2: BucketId,
        _k2: &ExtValue,
        _pplan: &Self::PPlan,
    ) -> Result<bool> {
        Ok(true)
    }

    /// Exclusive upper bound of the bucket ids `assign` may produce under
    /// this plan, when the library can declare one. The guardrail layer
    /// range-checks `assign` output against it; `None` (the default)
    /// disables the check.
    fn declared_buckets(&self, _pplan: &Self::PPlan) -> Option<BucketId> {
        None
    }
}

/// Adapts a typed [`FlexibleJoin`] to the engine's type-erased
/// [`JoinAlgorithm`] — the paper's *proxy built-in function* (Fig. 7). All
/// `Summary`/`PPlan` state crosses the boundary as [`SummaryState`] /
/// [`PPlanState`] blobs, and a wrong-state downcast surfaces as a
/// `JoinLibrary` error rather than a panic.
pub struct ProxyJoin<J: FlexibleJoin> {
    join: J,
    _marker: PhantomData<fn() -> J>,
}

impl<J: FlexibleJoin> ProxyJoin<J> {
    /// Wrap a join implementation.
    pub fn new(join: J) -> Self {
        ProxyJoin {
            join,
            _marker: PhantomData,
        }
    }

    /// The wrapped implementation.
    pub fn inner(&self) -> &J {
        &self.join
    }

    fn summary<'a>(&self, state: &'a SummaryState, ctx: &str) -> Result<&'a J::Summary> {
        state.downcast_ref::<J::Summary>().ok_or_else(|| {
            FudjError::JoinLibrary(format!(
                "{}: {ctx} received a summary of the wrong concrete type",
                self.join.name()
            ))
        })
    }

    fn pplan<'a>(&self, state: &'a PPlanState, ctx: &str) -> Result<&'a J::PPlan> {
        state.downcast_ref::<J::PPlan>().ok_or_else(|| {
            FudjError::JoinLibrary(format!(
                "{}: {ctx} received a PPlan of the wrong concrete type",
                self.join.name()
            ))
        })
    }
}

impl<J: FlexibleJoin> fmt::Debug for ProxyJoin<J> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProxyJoin({})", self.join.name())
    }
}

impl<J: FlexibleJoin> JoinAlgorithm for ProxyJoin<J> {
    fn name(&self) -> &str {
        self.join.name()
    }

    fn new_summary(&self, _side: Side) -> SummaryState {
        SummaryState::new(J::Summary::default())
    }

    fn local_aggregate(
        &self,
        side: Side,
        key: &ExtValue,
        summary: &mut SummaryState,
    ) -> Result<()> {
        // In-place update: local aggregation runs once per record, so the
        // summary must not be cloned here (a per-record hash-map clone would
        // dominate the text join's summarize phase).
        let name = self.join.name();
        let typed = summary.downcast_mut::<J::Summary>().ok_or_else(|| {
            FudjError::JoinLibrary(format!(
                "{name}: local_aggregate received a summary of the wrong concrete type"
            ))
        })?;
        match side {
            Side::Left => self.join.summarize(key, typed),
            Side::Right => self.join.summarize_right(key, typed),
        }
    }

    fn global_aggregate(
        &self,
        _side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        let ta = self.summary(&a, "global_aggregate")?.clone();
        let tb = self.summary(&b, "global_aggregate")?.clone();
        Ok(SummaryState::new(self.join.merge_summaries(ta, tb)))
    }

    fn symmetric(&self) -> bool {
        self.join.symmetric()
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[ExtValue],
    ) -> Result<PPlanState> {
        let l = self.summary(left, "divide")?;
        let r = self.summary(right, "divide")?;
        Ok(PPlanState::new(self.join.divide(l, r, params)?))
    }

    fn assign(
        &self,
        side: Side,
        key: &ExtValue,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        let plan = self.pplan(pplan, "assign")?;
        match side {
            Side::Left => self.join.assign(key, plan, out),
            Side::Right => self.join.assign_right(key, plan, out),
        }
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        self.join.matches(b1, b2)
    }

    fn uses_default_match(&self) -> bool {
        self.join.uses_default_match()
    }

    fn verify(
        &self,
        _b1: BucketId,
        k1: &ExtValue,
        _b2: BucketId,
        k2: &ExtValue,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let plan = self.pplan(pplan, "verify")?;
        self.join.verify(k1, k2, plan)
    }

    fn dedup_mode(&self) -> DedupMode {
        self.join.dedup_mode()
    }

    fn dedup(
        &self,
        b1: BucketId,
        k1: &ExtValue,
        b2: BucketId,
        k2: &ExtValue,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let plan = self.pplan(pplan, "dedup")?;
        self.join.custom_dedup(b1, k1, b2, k2, plan)
    }

    fn declared_buckets(&self, pplan: &PPlanState) -> Option<BucketId> {
        let plan = self.pplan(pplan, "declared_buckets").ok()?;
        self.join.declared_buckets(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::avoidance_accepts;

    /// A toy modulo equi-join: keys are longs, bucket = key mod n. Exists to
    /// exercise the proxy plumbing, not to be a sensible join.
    struct ModJoin;

    impl FlexibleJoin for ModJoin {
        type Summary = i64; // max |key| observed
        type PPlan = i64; // modulus

        fn name(&self) -> &str {
            "mod_join"
        }

        fn summarize(&self, key: &ExtValue, summary: &mut i64) -> Result<()> {
            *summary = (*summary).max(key.as_long()?.abs());
            Ok(())
        }

        fn merge_summaries(&self, a: i64, b: i64) -> i64 {
            a.max(b)
        }

        fn divide(&self, l: &i64, r: &i64, params: &[ExtValue]) -> Result<i64> {
            let n = params
                .first()
                .map(|p| p.as_long())
                .transpose()?
                .unwrap_or(8);
            Ok(n.min(l.max(r) + 1).max(1))
        }

        fn assign(&self, key: &ExtValue, pplan: &i64, out: &mut Vec<BucketId>) -> Result<()> {
            out.push((key.as_long()?.rem_euclid(*pplan)) as BucketId);
            Ok(())
        }

        fn verify(&self, k1: &ExtValue, k2: &ExtValue, _pplan: &i64) -> Result<bool> {
            Ok(k1.as_long()? == k2.as_long()?)
        }

        fn dedup_mode(&self) -> DedupMode {
            DedupMode::None
        }
    }

    fn proxy() -> ProxyJoin<ModJoin> {
        ProxyJoin::new(ModJoin)
    }

    #[test]
    fn full_flow_through_proxy() {
        let p = proxy();
        let mut s1 = p.new_summary(Side::Left);
        let mut s2 = p.new_summary(Side::Right);
        for k in [3i64, 15, 7] {
            p.local_aggregate(Side::Left, &ExtValue::Long(k), &mut s1)
                .unwrap();
        }
        p.local_aggregate(Side::Right, &ExtValue::Long(9), &mut s2)
            .unwrap();
        let merged = p
            .global_aggregate(Side::Left, s1.clone(), s2.clone())
            .unwrap();
        assert_eq!(merged.downcast_ref::<i64>(), Some(&15));

        let plan = p.divide(&s1, &s2, &[ExtValue::Long(4)]).unwrap();
        assert_eq!(plan.downcast_ref::<i64>(), Some(&4));

        let mut buckets = Vec::new();
        p.assign(Side::Left, &ExtValue::Long(10), &plan, &mut buckets)
            .unwrap();
        assert_eq!(buckets, vec![2]);

        assert!(p.matches(3, 3));
        assert!(!p.matches(3, 4));
        assert!(p.uses_default_match());

        assert!(p
            .verify(2, &ExtValue::Long(10), 2, &ExtValue::Long(10), &plan)
            .unwrap());
        assert!(!p
            .verify(2, &ExtValue::Long(10), 2, &ExtValue::Long(6), &plan)
            .unwrap());
    }

    #[test]
    fn wrong_state_type_is_an_error_not_a_panic() {
        let p = proxy();
        let bogus_summary = SummaryState::new(String::from("not an i64"));
        let good = p.new_summary(Side::Left);
        let err = p
            .global_aggregate(Side::Left, bogus_summary, good)
            .unwrap_err();
        assert!(matches!(err, FudjError::JoinLibrary(_)));

        let bogus_plan = PPlanState::new(vec![1u8]);
        let mut out = Vec::new();
        assert!(p
            .assign(Side::Left, &ExtValue::Long(1), &bogus_plan, &mut out)
            .is_err());
    }

    #[test]
    fn avoidance_on_single_assign_accepts_the_only_pair() {
        let p = proxy();
        let plan = PPlanState::new(4i64);
        let k = ExtValue::Long(10);
        // bucket of 10 mod 4 = 2: the only matching pair is (2, 2).
        assert!(avoidance_accepts(&p, 2, &k, 2, &k, &plan).unwrap());
        // A pair reported from the wrong bucket is rejected.
        assert!(!avoidance_accepts(&p, 3, &k, 3, &k, &plan).unwrap());
    }

    #[test]
    fn type_error_in_user_code_propagates() {
        let p = proxy();
        let mut s = p.new_summary(Side::Left);
        let err = p.local_aggregate(Side::Left, &ExtValue::Text("x".into()), &mut s);
        assert!(err.is_err());
    }
}
