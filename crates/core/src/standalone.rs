//! The single-machine standalone runner (§VI-D2).
//!
//! The paper ships a standalone prototype so join developers can test and
//! debug a FUDJ library without a running DBMS. This module is that
//! prototype: it drives any [`JoinAlgorithm`] through the full SUMMARIZE →
//! PARTITION → COMBINE flow in plain sequential code and returns matched
//! `(left_index, right_index)` pairs.
//!
//! Beyond debugging, the distributed engine's tests use this runner as the
//! *reference semantics*: for every workload, the cluster execution must
//! produce exactly the pairs this code produces.

use crate::guard::{GuardConfig, GuardedJoin, UdfPolicy, UdfStats};
use crate::model::{avoidance_accepts, BucketId, DedupMode, JoinAlgorithm, Side};
use fudj_types::{ExtValue, FudjError, Result};
use std::collections::HashMap;

/// Statistics the runner gathers along the way — handy when tuning a new
/// join's partitioning (the paper's "number of buckets" analyses).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StandaloneStats {
    /// Distinct buckets observed on each side.
    pub left_buckets: usize,
    pub right_buckets: usize,
    /// Total assignments (≥ record count when multi-assign).
    pub left_assignments: usize,
    pub right_assignments: usize,
    /// Bucket pairs that matched.
    pub matched_bucket_pairs: usize,
    /// Record pairs that reached `verify`.
    pub verified_pairs: usize,
    /// Record pairs dropped by duplicate handling.
    pub deduped_pairs: usize,
}

/// Run the full three-phase flow over in-memory keys.
///
/// `params` are the query-time parameters (grid size, bucket count,
/// similarity threshold, ...) forwarded to `divide`.
///
/// Like the executor, the runner never invokes user code directly: unless
/// `alg` is already guarded, it is wrapped in a [`GuardedJoin`] with the
/// default fail-fast [`GuardConfig`] — zero-cost for well-behaved libraries,
/// a structured [`FudjError::UdfViolation`] instead of UB for misbehaving
/// ones.
pub fn run_standalone(
    alg: &dyn JoinAlgorithm,
    left_keys: &[ExtValue],
    right_keys: &[ExtValue],
    params: &[ExtValue],
) -> Result<Vec<(usize, usize)>> {
    run_standalone_with_stats(alg, left_keys, right_keys, params).map(|(pairs, _)| pairs)
}

/// [`run_standalone`], also returning execution statistics.
pub fn run_standalone_with_stats(
    alg: &dyn JoinAlgorithm,
    left_keys: &[ExtValue],
    right_keys: &[ExtValue],
    params: &[ExtValue],
) -> Result<(Vec<(usize, usize)>, StandaloneStats)> {
    if alg.guard().is_some() {
        run_flow(alg, left_keys, right_keys, params)
    } else {
        let guarded = GuardedJoin::new(alg, GuardConfig::default());
        run_flow(&guarded, left_keys, right_keys, params)
    }
}

/// Run under an explicit guard configuration, returning the guardrail
/// counters alongside the pairs. Under [`UdfPolicy::FallbackEquality`], a
/// violation in a default-equality-match join degrades to the plain
/// nested-loop equality join on the raw keys.
pub fn run_guarded(
    alg: &dyn JoinAlgorithm,
    config: GuardConfig,
    left_keys: &[ExtValue],
    right_keys: &[ExtValue],
    params: &[ExtValue],
) -> Result<(Vec<(usize, usize)>, UdfStats)> {
    let policy = config.policy;
    let guarded = GuardedJoin::new(alg, config);
    match run_flow(&guarded, left_keys, right_keys, params) {
        Ok((pairs, _)) => Ok((pairs, guarded.stats())),
        Err(FudjError::UdfViolation { .. })
            if policy == UdfPolicy::FallbackEquality && alg.uses_default_match() =>
        {
            guarded.handle().note_fallback();
            let mut pairs = Vec::new();
            for (i, k1) in left_keys.iter().enumerate() {
                for (j, k2) in right_keys.iter().enumerate() {
                    if k1 == k2 {
                        pairs.push((i, j));
                    }
                }
            }
            Ok((pairs, guarded.stats()))
        }
        Err(e) => Err(e),
    }
}

/// The actual three-phase flow; `alg` is expected to already be guarded.
fn run_flow(
    alg: &dyn JoinAlgorithm,
    left_keys: &[ExtValue],
    right_keys: &[ExtValue],
    params: &[ExtValue],
) -> Result<(Vec<(usize, usize)>, StandaloneStats)> {
    let mut stats = StandaloneStats::default();

    // ---- SUMMARIZE ----------------------------------------------------
    let mut left_summary = alg.new_summary(Side::Left);
    for k in left_keys {
        alg.local_aggregate(Side::Left, k, &mut left_summary)?;
    }
    let mut right_summary = alg.new_summary(Side::Right);
    for k in right_keys {
        alg.local_aggregate(Side::Right, k, &mut right_summary)?;
    }

    // ---- DIVIDE --------------------------------------------------------
    let pplan = alg.divide(&left_summary, &right_summary, params)?;

    // ---- PARTITION ------------------------------------------------------
    let mut scratch: Vec<BucketId> = Vec::new();
    let mut left_buckets: HashMap<BucketId, Vec<usize>> = HashMap::new();
    if let Some(g) = alg.guard() {
        g.begin_partition();
    }
    for (i, k) in left_keys.iter().enumerate() {
        scratch.clear();
        alg.assign(Side::Left, k, &pplan, &mut scratch)?;
        stats.left_assignments += scratch.len();
        scratch.sort_unstable();
        scratch.dedup();
        for &b in &scratch {
            left_buckets.entry(b).or_default().push(i);
        }
    }
    let mut right_buckets: HashMap<BucketId, Vec<usize>> = HashMap::new();
    if let Some(g) = alg.guard() {
        g.begin_partition();
    }
    for (j, k) in right_keys.iter().enumerate() {
        scratch.clear();
        alg.assign(Side::Right, k, &pplan, &mut scratch)?;
        stats.right_assignments += scratch.len();
        scratch.sort_unstable();
        scratch.dedup();
        for &b in &scratch {
            right_buckets.entry(b).or_default().push(j);
        }
    }
    stats.left_buckets = left_buckets.len();
    stats.right_buckets = right_buckets.len();

    // ---- COMBINE ---------------------------------------------------------
    // Match buckets: equality fast path for default-match joins, full
    // cross-check of bucket ids (the theta case) otherwise — the same split
    // the optimizer makes between hash join and NLJ bucket matching.
    let mut matched: Vec<(BucketId, BucketId)> = Vec::new();
    if alg.uses_default_match() {
        for &b in left_buckets.keys() {
            if right_buckets.contains_key(&b) {
                matched.push((b, b));
            }
        }
    } else {
        for &b1 in left_buckets.keys() {
            for &b2 in right_buckets.keys() {
                if alg.matches(b1, b2) {
                    matched.push((b1, b2));
                }
            }
        }
    }
    // Deterministic output order regardless of hash-map iteration.
    matched.sort_unstable();
    stats.matched_bucket_pairs = matched.len();

    let dedup_mode = alg.dedup_mode();
    // Avoidance dedup re-invokes `assign`; give the combine phase its own
    // fan-out window so those re-runs don't count against the partition cap.
    if let Some(g) = alg.guard() {
        g.begin_partition();
    }
    let mut out: Vec<(usize, usize)> = Vec::new();
    for (b1, b2) in matched {
        let lefts = &left_buckets[&b1];
        let rights = &right_buckets[&b2];
        for &i in lefts {
            for &j in rights {
                stats.verified_pairs += 1;
                if !alg.verify(b1, &left_keys[i], b2, &right_keys[j], &pplan)? {
                    continue;
                }
                let keep = match dedup_mode {
                    DedupMode::None | DedupMode::Elimination => true,
                    DedupMode::Avoidance => {
                        avoidance_accepts(alg, b1, &left_keys[i], b2, &right_keys[j], &pplan)?
                    }
                    DedupMode::Custom => {
                        alg.dedup(b1, &left_keys[i], b2, &right_keys[j], &pplan)?
                    }
                };
                if keep {
                    out.push((i, j));
                } else {
                    stats.deduped_pairs += 1;
                }
            }
        }
    }

    if dedup_mode == DedupMode::Elimination {
        let before = out.len();
        out.sort_unstable();
        out.dedup();
        stats.deduped_pairs += before - out.len();
    } else {
        out.sort_unstable();
    }

    // Surface any violation deferred by a callback with no `Result` channel
    // (e.g. a panicking `matches`) — nothing gets silently swallowed.
    if let Some(g) = alg.guard() {
        g.check()?;
    }
    Ok((out, stats))
}

/// Brute-force reference join: verify every pair under a plan produced by
/// the normal summarize/divide flow. Used by tests to check that the
/// partitioned execution loses no pairs and invents none.
pub fn nested_loop_reference(
    alg: &dyn JoinAlgorithm,
    left_keys: &[ExtValue],
    right_keys: &[ExtValue],
    params: &[ExtValue],
) -> Result<Vec<(usize, usize)>> {
    let mut left_summary = alg.new_summary(Side::Left);
    for k in left_keys {
        alg.local_aggregate(Side::Left, k, &mut left_summary)?;
    }
    let mut right_summary = alg.new_summary(Side::Right);
    for k in right_keys {
        alg.local_aggregate(Side::Right, k, &mut right_summary)?;
    }
    let pplan = alg.divide(&left_summary, &right_summary, params)?;

    let mut out = Vec::new();
    for (i, k1) in left_keys.iter().enumerate() {
        for (j, k2) in right_keys.iter().enumerate() {
            // Bucket ids are irrelevant to the ground truth; verify must not
            // depend on them for correctness (only dedup does).
            if alg.verify(0, k1, 0, k2, &pplan)? {
                out.push((i, j));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexible::{FlexibleJoin, ProxyJoin};
    use serde::Serialize;

    /// A 1-D "range overlap" join with deliberate multi-assign so the dedup
    /// paths get exercised: keys are `LongArray [start, end]` ranges over a
    /// fixed domain; buckets are fixed-width cells; a range is assigned to
    /// every cell it overlaps; verify is true overlap.
    struct RangeJoin {
        cells: i64,
        mode: DedupMode,
    }

    #[derive(Clone, Debug, Default, Serialize)]
    struct Span {
        lo: i64,
        hi: i64,
        seen: bool,
    }

    #[derive(Clone, Debug, Serialize)]
    struct CellPlan {
        lo: i64,
        width: i64,
        cells: i64,
    }

    impl FlexibleJoin for RangeJoin {
        type Summary = Span;
        type PPlan = CellPlan;

        fn name(&self) -> &str {
            "range_join"
        }

        fn summarize(&self, key: &ExtValue, s: &mut Span) -> Result<()> {
            let iv = key.as_interval()?;
            if !s.seen {
                *s = Span {
                    lo: iv.start,
                    hi: iv.end,
                    seen: true,
                };
            } else {
                s.lo = s.lo.min(iv.start);
                s.hi = s.hi.max(iv.end);
            }
            Ok(())
        }

        fn merge_summaries(&self, a: Span, b: Span) -> Span {
            match (a.seen, b.seen) {
                (false, _) => b,
                (_, false) => a,
                _ => Span {
                    lo: a.lo.min(b.lo),
                    hi: a.hi.max(b.hi),
                    seen: true,
                },
            }
        }

        fn divide(&self, l: &Span, r: &Span, _params: &[ExtValue]) -> Result<CellPlan> {
            let m = self.merge_summaries(l.clone(), r.clone());
            let width = ((m.hi - m.lo).max(1) / self.cells).max(1);
            Ok(CellPlan {
                lo: m.lo,
                width,
                cells: self.cells,
            })
        }

        fn assign(&self, key: &ExtValue, p: &CellPlan, out: &mut Vec<BucketId>) -> Result<()> {
            let iv = key.as_interval()?;
            let c0 = ((iv.start - p.lo) / p.width).clamp(0, p.cells - 1);
            let c1 = ((iv.end - p.lo) / p.width).clamp(0, p.cells - 1);
            for c in c0..=c1 {
                out.push(c as BucketId);
            }
            Ok(())
        }

        fn verify(&self, k1: &ExtValue, k2: &ExtValue, _p: &CellPlan) -> Result<bool> {
            let a = k1.as_interval()?;
            let b = k2.as_interval()?;
            Ok(a.overlaps(&b))
        }

        fn dedup_mode(&self) -> DedupMode {
            self.mode
        }

        fn custom_dedup(
            &self,
            b1: BucketId,
            k1: &ExtValue,
            _b2: BucketId,
            k2: &ExtValue,
            p: &CellPlan,
        ) -> Result<bool> {
            // Reference-point style: emit only from the cell containing the
            // start of the pair's overlap region.
            let a = k1.as_interval()?;
            let b = k2.as_interval()?;
            let start = a.start.max(b.start);
            let cell = ((start - p.lo) / p.width).clamp(0, p.cells - 1) as BucketId;
            Ok(cell == b1)
        }
    }

    fn ranges(data: &[(i64, i64)]) -> Vec<ExtValue> {
        data.iter()
            .map(|&(s, e)| ExtValue::LongArray(vec![s, e]))
            .collect()
    }

    fn expected_pairs(l: &[(i64, i64)], r: &[(i64, i64)]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, a) in l.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                if a.0 <= b.1 && a.1 >= b.0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn avoidance_returns_exact_result_set() {
        let l = [(0, 50), (10, 15), (90, 100), (40, 60)];
        let r = [(5, 12), (55, 95), (200, 210)];
        let alg = ProxyJoin::new(RangeJoin {
            cells: 8,
            mode: DedupMode::Avoidance,
        });
        let got = run_standalone(&alg, &ranges(&l), &ranges(&r), &[]).unwrap();
        assert_eq!(got, expected_pairs(&l, &r));
    }

    #[test]
    fn elimination_matches_avoidance_result() {
        let l = [(0, 30), (25, 80), (70, 99)];
        let r = [(10, 40), (50, 75)];
        let a1 = ProxyJoin::new(RangeJoin {
            cells: 6,
            mode: DedupMode::Avoidance,
        });
        let a2 = ProxyJoin::new(RangeJoin {
            cells: 6,
            mode: DedupMode::Elimination,
        });
        let g1 = run_standalone(&a1, &ranges(&l), &ranges(&r), &[]).unwrap();
        let g2 = run_standalone(&a2, &ranges(&l), &ranges(&r), &[]).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(g1, expected_pairs(&l, &r));
    }

    #[test]
    fn custom_dedup_matches_default() {
        let l = [(0, 70), (30, 35)];
        let r = [(20, 90), (0, 5)];
        let a1 = ProxyJoin::new(RangeJoin {
            cells: 10,
            mode: DedupMode::Avoidance,
        });
        let a2 = ProxyJoin::new(RangeJoin {
            cells: 10,
            mode: DedupMode::Custom,
        });
        let g1 = run_standalone(&a1, &ranges(&l), &ranges(&r), &[]).unwrap();
        let g2 = run_standalone(&a2, &ranges(&l), &ranges(&r), &[]).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn no_dedup_overcounts_multi_assigned_pairs() {
        // With dedup disabled, a pair spanning several shared cells is
        // emitted once per matched bucket pair — documenting why the
        // framework defaults to avoidance.
        let l = [(0, 100)];
        let r = [(0, 100)];
        let alg = ProxyJoin::new(RangeJoin {
            cells: 4,
            mode: DedupMode::None,
        });
        let got = run_standalone(&alg, &ranges(&l), &ranges(&r), &[]).unwrap();
        assert_eq!(got.len(), 4, "one emission per shared cell");
    }

    #[test]
    fn stats_reflect_multi_assign() {
        let l = [(0, 100), (10, 20)];
        let r = [(50, 60)];
        let alg = ProxyJoin::new(RangeJoin {
            cells: 4,
            mode: DedupMode::Avoidance,
        });
        let (_pairs, stats) =
            run_standalone_with_stats(&alg, &ranges(&l), &ranges(&r), &[]).unwrap();
        assert!(stats.left_assignments > 2, "(0,100) spans all cells");
        assert_eq!(stats.right_assignments, 1);
        assert!(stats.matched_bucket_pairs >= 1);
    }

    #[test]
    fn agrees_with_nested_loop_reference() {
        let l = [(0, 10), (5, 25), (20, 30), (28, 28), (100, 120)];
        let r = [(8, 22), (29, 40), (95, 105), (50, 60)];
        let alg = ProxyJoin::new(RangeJoin {
            cells: 5,
            mode: DedupMode::Avoidance,
        });
        let got = run_standalone(&alg, &ranges(&l), &ranges(&r), &[]).unwrap();
        let reference = nested_loop_reference(&alg, &ranges(&l), &ranges(&r), &[]).unwrap();
        assert_eq!(got, reference);
    }

    #[test]
    fn empty_sides() {
        let alg = ProxyJoin::new(RangeJoin {
            cells: 4,
            mode: DedupMode::Avoidance,
        });
        assert!(run_standalone(&alg, &[], &ranges(&[(0, 1)]), &[])
            .unwrap()
            .is_empty());
        assert!(run_standalone(&alg, &ranges(&[(0, 1)]), &[], &[])
            .unwrap()
            .is_empty());
        assert!(run_standalone(&alg, &[], &[], &[]).unwrap().is_empty());
    }
}
