//! Property tests: every value round-trips the wire format and the external
//! translation protocol without loss.

use bytes::{Buf, BytesMut};
use fudj_geo::{Point, Polygon};
use fudj_temporal::Interval;
use fudj_types::{ext, wire, DataType, Row, Value};
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int64),
        // Finite floats only: the engine never stores NaN/inf.
        (-1e15f64..1e15).prop_map(Value::Float64),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::str),
        any::<u128>().prop_map(Value::Uuid),
        any::<i64>().prop_map(Value::DateTime),
        (any::<i32>(), 0i32..1_000_000)
            .prop_map(|(s, d)| Value::Interval(Interval::new(s as i64, s as i64 + d as i64))),
        (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y)| Value::Point(Point::new(x, y))),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => arb_scalar(),
        1 => prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 3..10)
            .prop_map(|pts| Value::polygon(Polygon::new(
                pts.into_iter().map(|(x, y)| Point::new(x, y)).collect()
            ))),
        1 => prop::collection::vec(arb_scalar(), 0..6).prop_map(Value::list),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Row::new)
}

proptest! {
    /// Whole rows round-trip: any mix of the engine's data types survives
    /// decode(encode(r)) bit-for-bit with no bytes left over.
    #[test]
    fn row_roundtrip(row in arb_row()) {
        let mut buf = BytesMut::new();
        wire::encode_row(&row, &mut buf);
        let mut bytes = buf.freeze();
        let back = wire::decode_row(&mut bytes).unwrap();
        prop_assert_eq!(back, row);
        prop_assert!(!bytes.has_remaining());
    }

    /// A row's encoded size is exactly its width prefix plus its values'
    /// encodings — the invariant the exchange and checkpoint byte meters
    /// rely on when they charge `encode_row` output lengths to their
    /// network/storage counters.
    #[test]
    fn row_encoded_size_is_sum_of_value_encodings(row in arb_row()) {
        let mut whole = BytesMut::new();
        wire::encode_row(&row, &mut whole);
        let mut expected = 4; // u32 width prefix
        for v in row.values() {
            let mut one = BytesMut::new();
            wire::encode_value(v, &mut one);
            expected += one.len();
        }
        prop_assert_eq!(whole.len(), expected);
    }

    #[test]
    fn wire_roundtrip(v in arb_value()) {
        let mut buf = BytesMut::new();
        wire::encode_value(&v, &mut buf);
        let mut bytes = buf.freeze();
        let back = wire::decode_value(&mut bytes).unwrap();
        prop_assert_eq!(back, v);
        prop_assert!(!bytes.has_remaining());
    }

    /// Decoding arbitrary garbage must never panic — errors only.
    #[test]
    fn decode_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut b = bytes::Bytes::from(bytes);
        let _ = wire::decode_value(&mut b);
    }

    /// Translation to external types and back is lossless for the key types
    /// FUDJ libraries receive.
    #[test]
    fn external_translation_roundtrip(v in arb_value()) {
        let target = v.data_type();
        // Heterogeneous / non-simple lists legitimately fail translation.
        if let Ok(ev) = ext::to_external(&v) {
            if matches!(
                target,
                DataType::Int64
                    | DataType::Float64
                    | DataType::String
                    | DataType::Bool
                    | DataType::Uuid
                    | DataType::DateTime
                    | DataType::Interval
                    | DataType::Point
                    | DataType::Polygon
            ) {
                let back = ext::from_external(&ev, &target).unwrap();
                prop_assert_eq!(back, v);
            }
        }
    }
}
