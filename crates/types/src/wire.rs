//! Compact binary row format.
//!
//! Exchange operators in the simulated cluster serialize every row they
//! ship between workers. That keeps the shuffled-byte metrics honest (the
//! paper's partitioning discussion is largely about network cost) and
//! faithfully models the serialization work a real shared-nothing engine
//! performs at each repartitioning.
//!
//! Format per value: a 1-byte tag, then a fixed- or length-prefixed payload.
//! A row is its values back to back; a batch is a `u32` row count + rows.

use crate::error::{FudjError, Result};
use crate::row::{Batch, Row};
use crate::schema::SchemaRef;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fudj_geo::{Point, Polygon};
use fudj_temporal::Interval;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT64: u8 = 2;
const TAG_FLOAT64: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_UUID: u8 = 5;
const TAG_DATETIME: u8 = 6;
const TAG_INTERVAL: u8 = 7;
const TAG_POINT: u8 = 8;
const TAG_POLYGON: u8 = 9;
const TAG_LIST: u8 = 10;

/// Append one value.
pub fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int64(x) => {
            buf.put_u8(TAG_INT64);
            buf.put_i64_le(*x);
        }
        Value::Float64(x) => {
            buf.put_u8(TAG_FLOAT64);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Uuid(u) => {
            buf.put_u8(TAG_UUID);
            buf.put_u128_le(*u);
        }
        Value::DateTime(ms) => {
            buf.put_u8(TAG_DATETIME);
            buf.put_i64_le(*ms);
        }
        Value::Interval(iv) => {
            buf.put_u8(TAG_INTERVAL);
            buf.put_i64_le(iv.start);
            buf.put_i64_le(iv.end);
        }
        Value::Point(p) => {
            buf.put_u8(TAG_POINT);
            buf.put_f64_le(p.x);
            buf.put_f64_le(p.y);
        }
        Value::Polygon(poly) => {
            buf.put_u8(TAG_POLYGON);
            buf.put_u32_le(poly.ring().len() as u32);
            for p in poly.ring() {
                buf.put_f64_le(p.x);
                buf.put_f64_le(p.y);
            }
        }
        Value::List(vs) => {
            buf.put_u8(TAG_LIST);
            buf.put_u32_le(vs.len() as u32);
            for v in vs.iter() {
                encode_value(v, buf);
            }
        }
    }
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(FudjError::Wire(format!("truncated input reading {what}")))
    } else {
        Ok(())
    }
}

/// Decode one value.
pub fn decode_value(buf: &mut impl Buf) -> Result<Value> {
    need(buf, 1, "tag")?;
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            need(buf, 1, "bool")?;
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_INT64 => {
            need(buf, 8, "int64")?;
            Value::Int64(buf.get_i64_le())
        }
        TAG_FLOAT64 => {
            need(buf, 8, "float64")?;
            Value::Float64(buf.get_f64_le())
        }
        TAG_STR => {
            need(buf, 4, "string length")?;
            let len = buf.get_u32_le() as usize;
            need(buf, len, "string bytes")?;
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            let s = String::from_utf8(bytes)
                .map_err(|e| FudjError::Wire(format!("invalid utf8 string: {e}")))?;
            Value::str(s)
        }
        TAG_UUID => {
            need(buf, 16, "uuid")?;
            Value::Uuid(buf.get_u128_le())
        }
        TAG_DATETIME => {
            need(buf, 8, "datetime")?;
            Value::DateTime(buf.get_i64_le())
        }
        TAG_INTERVAL => {
            need(buf, 16, "interval")?;
            let start = buf.get_i64_le();
            let end = buf.get_i64_le();
            if start > end {
                return Err(FudjError::Wire(format!(
                    "inverted interval [{start}, {end}]"
                )));
            }
            Value::Interval(Interval::new(start, end))
        }
        TAG_POINT => {
            need(buf, 16, "point")?;
            let x = buf.get_f64_le();
            let y = buf.get_f64_le();
            Value::Point(Point::new(x, y))
        }
        TAG_POLYGON => {
            need(buf, 4, "polygon vertex count")?;
            let n = buf.get_u32_le() as usize;
            if n < 3 {
                return Err(FudjError::Wire(format!("polygon with {n} vertices")));
            }
            need(buf, n * 16, "polygon vertices")?;
            let mut ring = Vec::with_capacity(n);
            for _ in 0..n {
                let x = buf.get_f64_le();
                let y = buf.get_f64_le();
                ring.push(Point::new(x, y));
            }
            Value::polygon(Polygon::new(ring))
        }
        TAG_LIST => {
            need(buf, 4, "list length")?;
            let n = buf.get_u32_le() as usize;
            let mut vs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                vs.push(decode_value(buf)?);
            }
            Value::list(vs)
        }
        other => return Err(FudjError::Wire(format!("unknown value tag {other}"))),
    })
}

/// Append one row (its width is implied by the schema on the decode side).
pub fn encode_row(row: &Row, buf: &mut BytesMut) {
    buf.put_u32_le(row.len() as u32);
    for v in row.values() {
        encode_value(v, buf);
    }
}

/// Decode one row.
pub fn decode_row(buf: &mut impl Buf) -> Result<Row> {
    need(buf, 4, "row width")?;
    let n = buf.get_u32_le() as usize;
    let mut values = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        values.push(decode_value(buf)?);
    }
    Ok(Row::new(values))
}

/// Serialize a whole batch to a frozen buffer.
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + batch.len() * 32);
    buf.put_u32_le(batch.len() as u32);
    for row in batch.rows() {
        encode_row(row, &mut buf);
    }
    buf.freeze()
}

/// Decode a batch under a known schema.
pub fn decode_batch(mut bytes: Bytes, schema: SchemaRef) -> Result<Batch> {
    need(&bytes, 4, "batch row count")?;
    let n = bytes.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        rows.push(decode_row(&mut bytes)?);
    }
    if bytes.has_remaining() {
        return Err(FudjError::Wire(format!(
            "{} trailing bytes after batch",
            bytes.remaining()
        )));
    }
    Ok(Batch::new(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::DataType;

    fn every_value() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int64(-7),
            Value::Float64(3.25),
            Value::str("text with spaces ünicode"),
            Value::Uuid(u128::MAX - 5),
            Value::DateTime(1_700_000_000_000),
            Value::Interval(Interval::new(-10, 10)),
            Value::Point(Point::new(-1.5, 2.5)),
            Value::polygon(Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
            ])),
            Value::list(vec![Value::Int64(1), Value::str("x"), Value::Null]),
        ]
    }

    #[test]
    fn value_roundtrip_all_variants() {
        for v in every_value() {
            let mut buf = BytesMut::new();
            encode_value(&v, &mut buf);
            let mut b = buf.freeze();
            let back = decode_value(&mut b).unwrap();
            assert_eq!(back, v, "roundtrip of {v}");
            assert!(!b.has_remaining(), "no trailing bytes for {v}");
        }
    }

    #[test]
    fn row_and_batch_roundtrip() {
        let schema = Schema::shared(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::String),
        ]);
        let rows = vec![
            Row::new(vec![Value::Int64(1), Value::str("one")]),
            Row::new(vec![Value::Int64(2), Value::Null]),
        ];
        let batch = Batch::new(schema.clone(), rows);
        let bytes = encode_batch(&batch);
        let back = decode_batch(bytes, schema).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let mut buf = BytesMut::new();
        encode_value(&Value::str("hello world"), &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            // Must error (or, for cut=0, error about the tag) — never panic.
            assert!(decode_value(&mut partial).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_tag_rejected() {
        let mut b = Bytes::from_static(&[200u8]);
        assert!(matches!(decode_value(&mut b), Err(FudjError::Wire(_))));
    }

    #[test]
    fn corrupt_interval_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_i64_le(10);
        buf.put_i64_le(5); // end < start
        assert!(decode_value(&mut buf.freeze()).is_err());
    }

    #[test]
    fn trailing_bytes_in_batch_rejected() {
        let schema = Schema::shared(vec![Field::new("a", DataType::Int64)]);
        let batch = Batch::new(schema.clone(), vec![Row::new(vec![Value::Int64(1)])]);
        let mut bytes = BytesMut::from(&encode_batch(&batch)[..]);
        bytes.put_u8(0xEE);
        assert!(decode_batch(bytes.freeze(), schema).is_err());
    }

    #[test]
    fn encoded_size_reflects_payload() {
        // A sanity anchor for the byte-accounting metrics: a row of two i64s
        // costs 4 (width) + 2 × (1 tag + 8 payload) = 22 bytes.
        let row = Row::new(vec![Value::Int64(1), Value::Int64(2)]);
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        assert_eq!(buf.len(), 22);
    }
}
