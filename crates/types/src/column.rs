//! Columnar batches: typed column vectors, selection bitmaps, and a
//! columnar wire codec.
//!
//! The columnar execution mode keeps data in [`ColumnVec`]s — one typed
//! vector per column — so operators run cache-friendly strides over
//! primitive slices instead of per-row `Value` dispatch. A
//! [`SelectionBitmap`] carries filter verdicts between kernels without
//! materializing survivors until a pipeline boundary.
//!
//! The wire codec here is **byte-identical** to the row codec in
//! [`crate::wire`]: [`encode_columnar`] walks a [`ColumnarBatch`]
//! row-major and emits exactly the bytes `wire::encode_batch` would emit
//! for the same rows. Every byte-accounting pin (the 13-byte single-i64
//! row, shuffle/broadcast byte counters) therefore holds in both
//! execution modes by construction.

use crate::error::{FudjError, Result};
use crate::row::Row;
use crate::value::Value;
use crate::wire;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// One column of values. Homogeneous primitive columns get a typed
/// vector; anything mixed, null-bearing, or non-primitive falls back to
/// [`ColumnVec::Generic`], which preserves exact row semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnVec {
    /// All values are `Value::Int64`.
    Int64(Vec<i64>),
    /// All values are `Value::Float64`.
    Float64(Vec<f64>),
    /// All values are `Value::Bool`.
    Bool(Vec<bool>),
    /// All values are `Value::Str`.
    Str(Vec<Arc<str>>),
    /// Arbitrary values (mixed types, nulls, geometry, lists, ...).
    Generic(Vec<Value>),
}

impl ColumnVec {
    /// Empty column; the type is inferred from the first pushed value.
    pub fn new() -> Self {
        ColumnVec::Generic(Vec::new())
    }

    /// Build a column from values, choosing the tightest representation.
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let mut col = ColumnVec::new();
        for v in values {
            col.push(v);
        }
        col
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int64(v) => v.len(),
            ColumnVec::Float64(v) => v.len(),
            ColumnVec::Bool(v) => v.len(),
            ColumnVec::Str(v) => v.len(),
            ColumnVec::Generic(v) => v.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one value, degrading to [`ColumnVec::Generic`] when the
    /// value does not fit the current typed representation. An empty
    /// generic column adopts the first value's type.
    pub fn push(&mut self, v: Value) {
        if let ColumnVec::Generic(vals) = self {
            if vals.is_empty() {
                *self = match v {
                    Value::Int64(x) => ColumnVec::Int64(vec![x]),
                    Value::Float64(x) => ColumnVec::Float64(vec![x]),
                    Value::Bool(x) => ColumnVec::Bool(vec![x]),
                    Value::Str(s) => ColumnVec::Str(vec![s]),
                    other => ColumnVec::Generic(vec![other]),
                };
                return;
            }
        }
        match (&mut *self, v) {
            (ColumnVec::Int64(vals), Value::Int64(x)) => vals.push(x),
            (ColumnVec::Float64(vals), Value::Float64(x)) => vals.push(x),
            (ColumnVec::Bool(vals), Value::Bool(x)) => vals.push(x),
            (ColumnVec::Str(vals), Value::Str(s)) => vals.push(s),
            (ColumnVec::Generic(vals), other) => vals.push(other),
            (_, other) => {
                // Type mismatch: degrade to generic, preserving order.
                let mut vals = self.to_values();
                vals.push(other);
                *self = ColumnVec::Generic(vals);
            }
        }
    }

    /// The value at `i`, cloned out (cheap: payloads are `Arc`-backed).
    ///
    /// # Panics
    /// Panics when `i` is out of bounds, like slice indexing.
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int64(v) => Value::Int64(v[i]),
            ColumnVec::Float64(v) => Value::Float64(v[i]),
            ColumnVec::Bool(v) => Value::Bool(v[i]),
            ColumnVec::Str(v) => Value::Str(v[i].clone()),
            ColumnVec::Generic(v) => v[i].clone(),
        }
    }

    /// Copy of the sub-column `[from, to)`.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, from: usize, to: usize) -> ColumnVec {
        match self {
            ColumnVec::Int64(v) => ColumnVec::Int64(v[from..to].to_vec()),
            ColumnVec::Float64(v) => ColumnVec::Float64(v[from..to].to_vec()),
            ColumnVec::Bool(v) => ColumnVec::Bool(v[from..to].to_vec()),
            ColumnVec::Str(v) => ColumnVec::Str(v[from..to].to_vec()),
            ColumnVec::Generic(v) => ColumnVec::Generic(v[from..to].to_vec()),
        }
    }

    /// Concatenation of `self` and `other`; mismatched representations
    /// degrade to generic.
    pub fn concat(&self, other: &ColumnVec) -> ColumnVec {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        match (self, other) {
            (ColumnVec::Int64(a), ColumnVec::Int64(b)) => {
                ColumnVec::Int64(a.iter().chain(b).copied().collect())
            }
            (ColumnVec::Float64(a), ColumnVec::Float64(b)) => {
                ColumnVec::Float64(a.iter().chain(b).copied().collect())
            }
            (ColumnVec::Bool(a), ColumnVec::Bool(b)) => {
                ColumnVec::Bool(a.iter().chain(b).copied().collect())
            }
            (ColumnVec::Str(a), ColumnVec::Str(b)) => {
                ColumnVec::Str(a.iter().chain(b).cloned().collect())
            }
            _ => {
                let mut vals = self.to_values();
                vals.extend(other.to_values());
                ColumnVec::Generic(vals)
            }
        }
    }

    /// The rows selected by `sel` (must be the column's length).
    pub fn filter(&self, sel: &SelectionBitmap) -> ColumnVec {
        debug_assert_eq!(sel.len(), self.len(), "selection length mismatch");
        match self {
            ColumnVec::Int64(v) => ColumnVec::Int64(sel.ones().map(|i| v[i]).collect()),
            ColumnVec::Float64(v) => ColumnVec::Float64(sel.ones().map(|i| v[i]).collect()),
            ColumnVec::Bool(v) => ColumnVec::Bool(sel.ones().map(|i| v[i]).collect()),
            ColumnVec::Str(v) => ColumnVec::Str(sel.ones().map(|i| v[i].clone()).collect()),
            ColumnVec::Generic(v) => ColumnVec::Generic(sel.ones().map(|i| v[i].clone()).collect()),
        }
    }

    /// Materialize the column back to values.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// The typed `i64` slice, when this is a homogeneous int column.
    pub fn as_i64s(&self) -> Option<&[i64]> {
        match self {
            ColumnVec::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// The typed `f64` slice, when this is a homogeneous float column.
    pub fn as_f64s(&self) -> Option<&[f64]> {
        match self {
            ColumnVec::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// The typed string slice, when this is a homogeneous string column.
    pub fn as_strs(&self) -> Option<&[Arc<str>]> {
        match self {
            ColumnVec::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl Default for ColumnVec {
    fn default() -> Self {
        ColumnVec::new()
    }
}

/// A packed bitmap of row selections, one bit per row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SelectionBitmap {
    /// Empty bitmap; grow it with [`Self::push`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let fill = if value { u64::MAX } else { 0 };
        let mut b = SelectionBitmap {
            words: vec![fill; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let (word, shift) = (self.len / 64, self.len % 64);
        if shift == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << shift;
        }
        self.len += 1;
    }

    /// The bit at `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds ({})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set the bit at `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit {i} out of bounds ({})", self.len);
        if bit {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Number of selected rows (popcount over the words).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection with another bitmap of the same length —
    /// how conjunctive filter kernels combine per-predicate verdicts.
    pub fn and_with(&mut self, other: &SelectionBitmap) {
        debug_assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterator over selected row indices, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// A batch of aligned columns — the columnar pipeline's unit of flow.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnarBatch {
    columns: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnarBatch {
    /// Batch from pre-built columns.
    ///
    /// # Panics
    /// Panics (debug builds) when column lengths disagree.
    pub fn from_columns(columns: Vec<ColumnVec>) -> Self {
        let rows = columns.first().map(ColumnVec::len).unwrap_or(0);
        debug_assert!(
            columns.iter().all(|c| c.len() == rows),
            "ragged columnar batch"
        );
        ColumnarBatch { columns, rows }
    }

    /// Transpose rows into columns. All rows must share one width; a
    /// ragged input is a caller bug surfaced as an error (the row layout
    /// tolerates ragged streams, the columnar layout cannot).
    pub fn from_rows(rows: &[Row]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Ok(ColumnarBatch::default());
        };
        let width = first.len();
        let mut columns = vec![ColumnVec::new(); width];
        for row in rows {
            if row.len() != width {
                return Err(FudjError::Execution(format!(
                    "ragged batch: expected width {width}, found row of {}",
                    row.len()
                )));
            }
            for (c, v) in columns.iter_mut().zip(row.values()) {
                c.push(v.clone());
            }
        }
        Ok(ColumnarBatch {
            columns,
            rows: rows.len(),
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns[i]
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// Materialize back to rows (transpose).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows)
            .map(|i| Row::new(self.columns.iter().map(|c| c.value(i)).collect()))
            .collect()
    }

    /// The rows selected by `sel` (must be the batch's length).
    pub fn filter(&self, sel: &SelectionBitmap) -> ColumnarBatch {
        ColumnarBatch {
            columns: self.columns.iter().map(|c| c.filter(sel)).collect(),
            rows: sel.count_ones(),
        }
    }

    /// New batch keeping only the columns at `indices`, in that order.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn project(&self, indices: &[usize]) -> ColumnarBatch {
        ColumnarBatch {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            rows: self.rows,
        }
    }
}

/// Encode a columnar batch with **exactly** the bytes
/// [`wire::encode_batch`] emits for the equivalent rows: a `u32` row
/// count, then each row as a `u32` width plus tagged values, walked
/// row-major across the columns.
pub fn encode_columnar(batch: &ColumnarBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + batch.num_rows() * 32);
    buf.put_u32_le(batch.num_rows() as u32);
    for i in 0..batch.num_rows() {
        buf.put_u32_le(batch.num_columns() as u32);
        for col in batch.columns() {
            // Cloning the value is an `Arc` bump for large payloads;
            // delegating to `wire::encode_value` keeps byte-identity
            // with the row codec by construction.
            wire::encode_value(&col.value(i), &mut buf);
        }
    }
    buf.freeze()
}

/// Decode a batch produced by [`encode_columnar`] or
/// [`wire::encode_batch`] straight into columns, without materializing
/// intermediate rows. Rejects ragged rows and trailing bytes.
pub fn decode_columnar(mut bytes: Bytes) -> Result<ColumnarBatch> {
    let n = {
        if bytes.remaining() < 4 {
            return Err(FudjError::Wire(
                "truncated input reading batch count".into(),
            ));
        }
        bytes.get_u32_le() as usize
    };
    let mut reader = ColumnReader::new();
    for _ in 0..n {
        reader.read_row(&mut bytes)?;
    }
    if bytes.has_remaining() {
        return Err(FudjError::Wire(format!(
            "{} trailing bytes after batch",
            bytes.remaining()
        )));
    }
    Ok(reader.finish())
}

/// Incremental columnar decoder over a stream of wire-format rows (the
/// exchange framing: rows back to back, no count prefix). Values land
/// directly in column vectors; the underlying [`Bytes`] window is a
/// zero-copy view, so readers over sub-slices share one allocation.
#[derive(Default)]
pub struct ColumnReader {
    columns: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnReader {
    /// Fresh reader; width locks in at the first row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows read so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Read one wire-format row into the columns. The first row fixes
    /// the batch width; later rows must match it.
    pub fn read_row(&mut self, buf: &mut impl Buf) -> Result<()> {
        if buf.remaining() < 4 {
            return Err(FudjError::Wire("truncated input reading row width".into()));
        }
        let width = buf.get_u32_le() as usize;
        if self.rows == 0 && self.columns.is_empty() {
            self.columns = vec![ColumnVec::new(); width];
        } else if width != self.columns.len() {
            return Err(FudjError::Wire(format!(
                "ragged columnar stream: expected width {}, found {width}",
                self.columns.len()
            )));
        }
        for col in &mut self.columns {
            col.push(wire::decode_value(buf)?);
        }
        self.rows += 1;
        Ok(())
    }

    /// Drain a buffer of back-to-back rows (exchange framing).
    pub fn read_stream(&mut self, buf: &mut Bytes) -> Result<()> {
        while buf.has_remaining() {
            self.read_row(buf)?;
        }
        Ok(())
    }

    /// The accumulated batch.
    pub fn finish(self) -> ColumnarBatch {
        ColumnarBatch {
            rows: self.rows,
            columns: self.columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Batch;
    use crate::schema::{Field, Schema};
    use crate::DataType;

    fn rows_of(values: Vec<Vec<Value>>) -> Vec<Row> {
        values.into_iter().map(Row::new).collect()
    }

    #[test]
    fn typed_columns_round_trip() {
        let rows = rows_of(vec![
            vec![Value::Int64(1), Value::str("a"), Value::Float64(0.5)],
            vec![Value::Int64(2), Value::str("b"), Value::Float64(1.5)],
        ]);
        let batch = ColumnarBatch::from_rows(&rows).unwrap();
        assert!(matches!(batch.column(0), ColumnVec::Int64(_)));
        assert!(matches!(batch.column(1), ColumnVec::Str(_)));
        assert!(matches!(batch.column(2), ColumnVec::Float64(_)));
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn mixed_column_degrades_to_generic() {
        let mut col = ColumnVec::from_values(vec![Value::Int64(1), Value::Int64(2)]);
        assert!(matches!(col, ColumnVec::Int64(_)));
        col.push(Value::Null);
        assert!(matches!(col, ColumnVec::Generic(_)));
        assert_eq!(
            col.to_values(),
            vec![Value::Int64(1), Value::Int64(2), Value::Null]
        );
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows = rows_of(vec![vec![Value::Int64(1)], vec![]]);
        assert!(ColumnarBatch::from_rows(&rows).is_err());
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut b = SelectionBitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(b.get(0) && !b.get(1) && b.get(129));
        let ones: Vec<usize> = b.ones().collect();
        assert_eq!(ones, (0..130).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn bitmap_filled_and_set() {
        let mut b = SelectionBitmap::filled(70, true);
        assert_eq!(b.count_ones(), 70);
        b.set(69, false);
        assert_eq!(b.count_ones(), 69);
        assert!(!b.get(69));
        assert_eq!(SelectionBitmap::filled(70, false).count_ones(), 0);
    }

    #[test]
    fn bitmap_and_with_intersects() {
        let mut a = SelectionBitmap::new();
        let mut b = SelectionBitmap::new();
        for i in 0..100 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        a.and_with(&b);
        let ones: Vec<usize> = a.ones().collect();
        assert_eq!(ones, (0..100).filter(|i| i % 6 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn filter_matches_naive_row_filter() {
        let rows = rows_of(
            (0..57)
                .map(|i| vec![Value::Int64(i), Value::str(format!("s{i}"))])
                .collect(),
        );
        let batch = ColumnarBatch::from_rows(&rows).unwrap();
        let mut sel = SelectionBitmap::new();
        for row in &rows {
            sel.push(row.get(0).as_i64().unwrap() % 5 < 2);
        }
        let naive: Vec<Row> = rows
            .iter()
            .filter(|r| r.get(0).as_i64().unwrap() % 5 < 2)
            .cloned()
            .collect();
        assert_eq!(batch.filter(&sel).to_rows(), naive);
    }

    #[test]
    fn slice_concat_round_trip() {
        let col = ColumnVec::from_values((0..10).map(Value::Int64));
        let back = col.slice(0, 4).concat(&col.slice(4, 10));
        assert_eq!(back, col);
    }

    #[test]
    fn project_reorders_columns() {
        let rows = rows_of(vec![vec![
            Value::Int64(1),
            Value::str("x"),
            Value::Bool(true),
        ]]);
        let batch = ColumnarBatch::from_rows(&rows).unwrap();
        let p = batch.project(&[2, 0]);
        assert_eq!(
            p.to_rows(),
            rows_of(vec![vec![Value::Bool(true), Value::Int64(1)]])
        );
    }

    #[test]
    fn columnar_codec_is_byte_identical_to_row_codec() {
        let schema = Schema::shared(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::String),
        ]);
        let rows = rows_of(vec![
            vec![Value::Int64(-3), Value::str("one")],
            vec![Value::Int64(99), Value::Null],
        ]);
        let row_bytes = wire::encode_batch(&Batch::new(schema, rows.clone()));
        let col_bytes = encode_columnar(&ColumnarBatch::from_rows(&rows).unwrap());
        assert_eq!(row_bytes, col_bytes);
        let back = decode_columnar(col_bytes).unwrap();
        assert_eq!(back.to_rows(), rows);
    }

    #[test]
    fn columnar_codec_preserves_the_13_byte_pin() {
        // One single-i64 row: 4 (count) + 4 (width) + 1 (tag) + 8 = 17
        // for the batch; the row alone is the pinned 13 bytes.
        let rows = rows_of(vec![vec![Value::Int64(7)]]);
        let bytes = encode_columnar(&ColumnarBatch::from_rows(&rows).unwrap());
        assert_eq!(bytes.len(), 4 + 13);
    }

    #[test]
    fn decode_columnar_rejects_trailing_bytes() {
        let rows = rows_of(vec![vec![Value::Int64(7)]]);
        let bytes = encode_columnar(&ColumnarBatch::from_rows(&rows).unwrap());
        let mut extended = BytesMut::from(&bytes[..]);
        extended.put_u8(0xEE);
        assert!(decode_columnar(extended.freeze()).is_err());
    }

    #[test]
    fn column_reader_drains_exchange_framing() {
        // Exchange buffers carry rows back to back with no count prefix.
        let rows = rows_of(vec![
            vec![Value::Int64(1), Value::Bool(true)],
            vec![Value::Int64(2), Value::Bool(false)],
        ]);
        let mut buf = BytesMut::new();
        for r in &rows {
            wire::encode_row(r, &mut buf);
        }
        let mut bytes = buf.freeze();
        let mut reader = ColumnReader::new();
        reader.read_stream(&mut bytes).unwrap();
        assert_eq!(reader.finish().to_rows(), rows);
    }

    #[test]
    fn column_reader_rejects_ragged_stream() {
        let mut buf = BytesMut::new();
        wire::encode_row(&Row::new(vec![Value::Int64(1)]), &mut buf);
        wire::encode_row(&Row::new(vec![Value::Int64(1), Value::Int64(2)]), &mut buf);
        let mut bytes = buf.freeze();
        let mut reader = ColumnReader::new();
        assert!(reader.read_stream(&mut bytes).is_err());
    }
}
