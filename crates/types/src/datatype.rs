//! The engine-native type system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Data types supported by the engine — the analog of AsterixDB's type
/// system restricted to what the paper's datasets and queries need.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// The type of `Value::Null` alone (columns are nullable regardless).
    Null,
    Bool,
    Int64,
    Float64,
    /// UTF-8 string.
    String,
    /// 128-bit identifier (the datasets' `uuid` primary keys).
    Uuid,
    /// Epoch milliseconds.
    DateTime,
    /// Closed `[start, end]` interval of epoch milliseconds.
    Interval,
    /// 2-D point geometry.
    Point,
    /// Simple polygon geometry.
    Polygon,
    /// Homogeneous list.
    List(Box<DataType>),
}

impl DataType {
    /// Whether values of this type are geometries.
    pub fn is_geometry(&self) -> bool {
        matches!(self, DataType::Point | DataType::Polygon)
    }

    /// Whether this type supports arithmetic/ordering comparisons.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Int64 | DataType::Float64 | DataType::DateTime
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Null => write!(f, "null"),
            DataType::Bool => write!(f, "boolean"),
            DataType::Int64 => write!(f, "bigint"),
            DataType::Float64 => write!(f, "double"),
            DataType::String => write!(f, "string"),
            DataType::Uuid => write!(f, "uuid"),
            DataType::DateTime => write!(f, "datetime"),
            DataType::Interval => write!(f, "interval"),
            DataType::Point => write!(f, "point"),
            DataType::Polygon => write!(f, "polygon"),
            DataType::List(inner) => write!(f, "list<{inner}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int64.to_string(), "bigint");
        assert_eq!(
            DataType::List(Box::new(DataType::String)).to_string(),
            "list<string>"
        );
    }

    #[test]
    fn classification() {
        assert!(DataType::Point.is_geometry());
        assert!(DataType::Polygon.is_geometry());
        assert!(!DataType::Interval.is_geometry());
        assert!(DataType::DateTime.is_numeric());
        assert!(!DataType::String.is_numeric());
    }
}
