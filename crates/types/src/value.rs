//! The engine-native runtime value.

use crate::datatype::DataType;
use crate::error::{FudjError, Result};
use fudj_geo::{Point, Polygon};
use fudj_temporal::Interval;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A runtime value. Large payloads (strings, polygons, lists) are behind
/// `Arc` so rows can be cloned cheaply as they fan out to multiple buckets —
/// the multi-assign path duplicates rows per bucket, and PBSM's duplication
/// factor makes shallow clones matter.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    Int64(i64),
    Float64(f64),
    Str(Arc<str>),
    Uuid(u128),
    /// Epoch milliseconds.
    DateTime(i64),
    Interval(Interval),
    Point(Point),
    Polygon(Arc<Polygon>),
    List(Arc<Vec<Value>>),
}

impl Value {
    /// String value from anything stringy.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Polygon value (wraps in `Arc`).
    pub fn polygon(p: Polygon) -> Value {
        Value::Polygon(Arc::new(p))
    }

    /// List value (wraps in `Arc`).
    pub fn list(vs: Vec<Value>) -> Value {
        Value::List(Arc::new(vs))
    }

    /// The value's runtime type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Str(_) => DataType::String,
            Value::Uuid(_) => DataType::Uuid,
            Value::DateTime(_) => DataType::DateTime,
            Value::Interval(_) => DataType::Interval,
            Value::Point(_) => DataType::Point,
            Value::Polygon(_) => DataType::Polygon,
            Value::List(vs) => DataType::List(Box::new(
                vs.first().map(Value::data_type).unwrap_or(DataType::Null),
            )),
        }
    }

    /// Whether this is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Boolean payload, or a type error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(FudjError::type_mismatch("boolean", other, "as_bool")),
        }
    }

    /// Integer payload (`Int64`), or a type error.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int64(v) => Ok(*v),
            other => Err(FudjError::type_mismatch("bigint", other, "as_i64")),
        }
    }

    /// Float payload, widening `Int64` and `DateTime` as SQL comparison does.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Float64(v) => Ok(*v),
            Value::Int64(v) => Ok(*v as f64),
            Value::DateTime(v) => Ok(*v as f64),
            other => Err(FudjError::type_mismatch("double", other, "as_f64")),
        }
    }

    /// String payload, or a type error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(FudjError::type_mismatch("string", other, "as_str")),
        }
    }

    /// Interval payload, or a type error.
    pub fn as_interval(&self) -> Result<Interval> {
        match self {
            Value::Interval(iv) => Ok(*iv),
            other => Err(FudjError::type_mismatch("interval", other, "as_interval")),
        }
    }

    /// Point payload, or a type error.
    pub fn as_point(&self) -> Result<Point> {
        match self {
            Value::Point(p) => Ok(*p),
            other => Err(FudjError::type_mismatch("point", other, "as_point")),
        }
    }

    /// Polygon payload, or a type error.
    pub fn as_polygon(&self) -> Result<&Polygon> {
        match self {
            Value::Polygon(p) => Ok(p),
            other => Err(FudjError::type_mismatch("polygon", other, "as_polygon")),
        }
    }

    /// List payload, or a type error.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(vs) => Ok(vs),
            other => Err(FudjError::type_mismatch("list", other, "as_list")),
        }
    }

    /// Variant discriminant used by ordering and the wire format.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int64(_) => 2,
            Value::Float64(_) => 3,
            Value::Str(_) => 4,
            Value::Uuid(_) => 5,
            Value::DateTime(_) => 6,
            Value::Interval(_) => 7,
            Value::Point(_) => 8,
            Value::Polygon(_) => 9,
            Value::List(_) => 10,
        }
    }
}

/// Equality is *total*: floats compare by bit pattern through `total_cmp`, so
/// `Value` can key hash tables (group-by, hash join build sides).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order: `Null` sorts first; numeric variants (`Int64`, `Float64`,
/// `DateTime`) compare by numeric value across variants (so ORDER BY mixes
/// them sanely); everything else compares within its variant, with distinct
/// variants ordered by tag.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Uuid(a), Uuid(b)) => a.cmp(b),
            (Interval(a), Interval(b)) => a.cmp(b),
            (Point(a), Point(b)) => a.x.total_cmp(&b.x).then_with(|| a.y.total_cmp(&b.y)),
            (Polygon(a), Polygon(b)) => {
                let la = a.ring();
                let lb = b.ring();
                la.len().cmp(&lb.len()).then_with(|| {
                    for (p, q) in la.iter().zip(lb.iter()) {
                        let c = p.x.total_cmp(&q.x).then_with(|| p.y.total_cmp(&q.y));
                        if c != Ordering::Equal {
                            return c;
                        }
                    }
                    Ordering::Equal
                })
            }
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            // Cross-variant numeric comparison.
            (a, b) if is_numeric_variant(a) && is_numeric_variant(b) => {
                numeric_of(a).total_cmp(&numeric_of(b))
            }
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

#[inline]
fn is_numeric_variant(v: &Value) -> bool {
    matches!(v, Value::Int64(_) | Value::Float64(_) | Value::DateTime(_))
}

#[inline]
fn numeric_of(v: &Value) -> f64 {
    match v {
        Value::Int64(x) => *x as f64,
        Value::Float64(x) => *x,
        Value::DateTime(x) => *x as f64,
        _ => unreachable!("numeric_of on non-numeric"),
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Numeric variants hash by canonical f64 bits so that values that
            // compare equal across variants hash equally.
            v @ (Value::Int64(_) | Value::Float64(_) | Value::DateTime(_)) => {
                state.write_u8(2);
                state.write_u64(numeric_of(v).to_bits());
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            Value::Uuid(u) => {
                state.write_u8(5);
                u.hash(state);
            }
            Value::Interval(iv) => {
                state.write_u8(7);
                iv.hash(state);
            }
            Value::Point(p) => {
                state.write_u8(8);
                state.write_u64(p.x.to_bits());
                state.write_u64(p.y.to_bits());
            }
            Value::Polygon(p) => {
                state.write_u8(9);
                for q in p.ring() {
                    state.write_u64(q.x.to_bits());
                    state.write_u64(q.y.to_bits());
                }
            }
            Value::List(vs) => {
                state.write_u8(10);
                for v in vs.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Uuid(u) => write!(f, "uuid:{u:032x}"),
            Value::DateTime(ms) => write!(f, "{}", fudj_temporal::format_millis(*ms)),
            Value::Interval(iv) => write!(f, "{iv}"),
            Value::Point(p) => write!(f, "{p}"),
            Value::Polygon(p) => write!(f, "{p}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}
impl From<Interval> for Value {
    fn from(iv: Interval) -> Self {
        Value::Interval(iv)
    }
}
impl From<Point> for Value {
    fn from(p: Point) -> Self {
        Value::Point(p)
    }
}
impl From<Polygon> for Value {
    fn from(p: Polygon) -> Self {
        Value::polygon(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int64(7).as_i64().unwrap(), 7);
        assert!(Value::Int64(7).as_str().is_err());
        assert_eq!(Value::str("hi").as_str().unwrap(), "hi");
        assert!(Value::Null.as_bool().is_err());
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::Int64(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::DateTime(1000).as_f64().unwrap(), 1000.0);
    }

    #[test]
    fn cross_variant_numeric_equality_and_hash() {
        let a = Value::Int64(5);
        let b = Value::Float64(5.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_null_first_then_numeric() {
        let mut vs = vec![
            Value::Int64(2),
            Value::Null,
            Value::Float64(1.5),
            Value::Int64(-3),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Int64(-3),
                Value::Float64(1.5),
                Value::Int64(2)
            ]
        );
    }

    #[test]
    fn string_ordering() {
        assert!(Value::str("apple") < Value::str("banana"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn interval_and_point_equality() {
        assert_eq!(
            Value::Interval(Interval::new(1, 5)),
            Value::Interval(Interval::new(1, 5))
        );
        assert_ne!(
            Value::Point(Point::new(0.0, 0.0)),
            Value::Point(Point::new(0.0, 1.0))
        );
    }

    #[test]
    fn list_lexicographic_order() {
        let a = Value::list(vec![Value::Int64(1), Value::Int64(2)]);
        let b = Value::list(vec![Value::Int64(1), Value::Int64(3)]);
        let c = Value::list(vec![Value::Int64(1)]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int64(42).to_string(), "42");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(
            Value::list(vec![Value::Int64(1), Value::Int64(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn data_type_reporting() {
        assert_eq!(Value::Uuid(9).data_type(), DataType::Uuid);
        assert_eq!(
            Value::list(vec![Value::str("x")]).data_type(),
            DataType::List(Box::new(DataType::String))
        );
    }

    #[test]
    fn equal_values_hash_equal() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int64(11),
            Value::str("token"),
            Value::Uuid(123),
            Value::Interval(Interval::new(0, 9)),
            Value::Point(Point::new(1.0, 2.0)),
        ];
        for v in &vals {
            assert_eq!(hash_of(v), hash_of(&v.clone()));
        }
    }
}
