//! Schemas: named, typed columns.

use crate::datatype::DataType;
use crate::error::{FudjError, Result};
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered set of fields. Shared behind [`SchemaRef`] between batches.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Schema from a field list.
    ///
    /// # Panics
    /// Panics on duplicate column names — schemas are constructed by the
    /// binder/planner, which must qualify ambiguous names first.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[i + 1..] {
                assert_ne!(f.name, g.name, "duplicate column name {:?}", f.name);
            }
        }
        Schema { fields }
    }

    /// Convenience: `Schema::new` wrapped in an `Arc`.
    pub fn shared(fields: Vec<Field>) -> SchemaRef {
        Arc::new(Schema::new(fields))
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of column `name`, or an error naming the candidates.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| FudjError::ColumnNotFound {
                name: name.to_owned(),
                schema: self.to_string(),
            })
    }

    /// The field called `name`.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// New schema with both field lists concatenated; right-side duplicates
    /// get a `right.` prefix (how the join operators build output schemas).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let name = if self.index_of(&f.name).is_ok() {
                format!("right.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type.clone()));
        }
        Schema::new(fields)
    }

    /// New schema keeping only the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Uuid),
            Field::new("tags", DataType::String),
            Field::new("boundary", DataType::Polygon),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of("tags").unwrap(), 1);
        assert!(matches!(
            s.index_of("nope"),
            Err(FudjError::ColumnNotFound { .. })
        ));
        assert_eq!(s.field("boundary").unwrap().data_type, DataType::Polygon);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn rejects_duplicates() {
        let _ = Schema::new(vec![
            Field::new("id", DataType::Uuid),
            Field::new("id", DataType::Int64),
        ]);
    }

    #[test]
    fn join_prefixes_collisions() {
        let left = sample();
        let right = Schema::new(vec![
            Field::new("id", DataType::Uuid),
            Field::new("temp", DataType::Int64),
        ]);
        let j = left.join(&right);
        assert_eq!(j.len(), 5);
        assert!(j.index_of("right.id").is_ok());
        assert!(j.index_of("temp").is_ok());
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.fields()[0].name, "boundary");
        assert_eq!(p.fields()[1].name, "id");
    }

    #[test]
    fn display() {
        assert_eq!(
            sample().to_string(),
            "id: uuid, tags: string, boundary: polygon"
        );
    }
}
