//! The external simple-type protocol — the paper's Fig. 7 boundary.
//!
//! A FUDJ library never sees engine-native [`Value`]s. The proxy built-in
//! function deserializes the engine value and hands the library a *simple*
//! type: longs, doubles, text, and flat arrays. This module defines those
//! simple types ([`ExtValue`]) and the translation protocol in both
//! directions. Conventions, mirroring §VI-B:
//!
//! * `interval`  → `LongArray [start, end]` (the paper's own example);
//! * `point`    → `DoubleArray [x, y]`;
//! * `polygon`  → `DoubleArray [x0, y0, x1, y1, ...]` (flattened ring);
//! * `datetime` → `Long` (epoch milliseconds);
//! * `uuid`     → `Text` (hex), since user code only compares/prints ids.
//!
//! Translation is deliberately cheap — the engine value is already
//! deserialized, so this is field extraction, not a re-parse. §VII-B of the
//! paper measures this overhead as near zero for spatial/interval keys and
//! small for text; the `bench` crate repeats that measurement.

use crate::error::{FudjError, Result};
use crate::value::Value;
use fudj_geo::{Point, Polygon};
use fudj_temporal::Interval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value in the external (user-facing) type system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExtValue {
    Null,
    Bool(bool),
    Long(i64),
    Double(f64),
    Text(String),
    LongArray(Vec<i64>),
    DoubleArray(Vec<f64>),
    TextArray(Vec<String>),
}

impl ExtValue {
    /// Long payload, or a library-facing error.
    pub fn as_long(&self) -> Result<i64> {
        match self {
            ExtValue::Long(v) => Ok(*v),
            other => Err(lib_err("Long", other)),
        }
    }

    /// Double payload (widening `Long`), or an error.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            ExtValue::Double(v) => Ok(*v),
            ExtValue::Long(v) => Ok(*v as f64),
            other => Err(lib_err("Double", other)),
        }
    }

    /// Text payload, or an error.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            ExtValue::Text(s) => Ok(s),
            other => Err(lib_err("Text", other)),
        }
    }

    /// Long-array payload, or an error.
    pub fn as_long_array(&self) -> Result<&[i64]> {
        match self {
            ExtValue::LongArray(v) => Ok(v),
            other => Err(lib_err("LongArray", other)),
        }
    }

    /// Double-array payload, or an error.
    pub fn as_double_array(&self) -> Result<&[f64]> {
        match self {
            ExtValue::DoubleArray(v) => Ok(v),
            other => Err(lib_err("DoubleArray", other)),
        }
    }

    /// Interpret a `LongArray [start, end]` as an interval (the convention
    /// interval keys arrive under).
    pub fn as_interval(&self) -> Result<Interval> {
        let arr = self.as_long_array()?;
        if arr.len() != 2 || arr[0] > arr[1] {
            return Err(FudjError::JoinLibrary(format!(
                "expected [start, end] long array for interval, got {arr:?}"
            )));
        }
        Ok(Interval::new(arr[0], arr[1]))
    }

    /// Interpret a `DoubleArray` of coordinate pairs as its MBR — the shape
    /// both point and polygon keys share, which is all the spatial FUDJ
    /// needs for summarize/assign.
    pub fn as_coords_mbr(&self) -> Result<fudj_geo::Rect> {
        let arr = self.as_double_array()?;
        if arr.is_empty() || arr.len() % 2 != 0 {
            return Err(FudjError::JoinLibrary(format!(
                "expected flat [x0, y0, ...] coordinate array, got length {}",
                arr.len()
            )));
        }
        let mut r = fudj_geo::Rect::empty();
        for pair in arr.chunks_exact(2) {
            r.expand_point(&Point::new(pair[0], pair[1]));
        }
        Ok(r)
    }
}

fn lib_err(expected: &str, found: &ExtValue) -> FudjError {
    FudjError::JoinLibrary(format!("expected external {expected}, found {found:?}"))
}

impl fmt::Display for ExtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtValue::Null => write!(f, "null"),
            ExtValue::Bool(b) => write!(f, "{b}"),
            ExtValue::Long(v) => write!(f, "{v}"),
            ExtValue::Double(v) => write!(f, "{v}"),
            ExtValue::Text(s) => write!(f, "{s:?}"),
            ExtValue::LongArray(v) => write!(f, "{v:?}"),
            ExtValue::DoubleArray(v) => write!(f, "{v:?}"),
            ExtValue::TextArray(v) => write!(f, "{v:?}"),
        }
    }
}

/// Engine value → external simple value (the proxy function's outbound hop).
pub fn to_external(v: &Value) -> Result<ExtValue> {
    Ok(match v {
        Value::Null => ExtValue::Null,
        Value::Bool(b) => ExtValue::Bool(*b),
        Value::Int64(x) => ExtValue::Long(*x),
        Value::Float64(x) => ExtValue::Double(*x),
        Value::Str(s) => ExtValue::Text(s.to_string()),
        Value::Uuid(u) => ExtValue::Text(format!("{u:032x}")),
        Value::DateTime(ms) => ExtValue::Long(*ms),
        Value::Interval(iv) => ExtValue::LongArray(vec![iv.start, iv.end]),
        Value::Point(p) => ExtValue::DoubleArray(vec![p.x, p.y]),
        Value::Polygon(poly) => {
            let mut coords = Vec::with_capacity(poly.ring().len() * 2);
            for p in poly.ring() {
                coords.push(p.x);
                coords.push(p.y);
            }
            ExtValue::DoubleArray(coords)
        }
        Value::List(vs) => {
            // Lists translate only when homogeneous over simple scalars.
            if vs.iter().all(|v| matches!(v, Value::Str(_))) {
                ExtValue::TextArray(
                    vs.iter()
                        .map(|v| v.as_str().map(str::to_owned))
                        .collect::<Result<_>>()?,
                )
            } else if vs
                .iter()
                .all(|v| matches!(v, Value::Int64(_) | Value::DateTime(_)))
            {
                ExtValue::LongArray(
                    vs.iter()
                        .map(|v| v.as_f64().map(|f| f as i64))
                        .collect::<Result<_>>()?,
                )
            } else if vs.iter().all(|v| matches!(v, Value::Float64(_))) {
                ExtValue::DoubleArray(vs.iter().map(|v| v.as_f64()).collect::<Result<_>>()?)
            } else {
                return Err(FudjError::JoinLibrary(format!(
                    "list value is not translatable to a simple external array: {v}"
                )));
            }
        }
    })
}

/// External simple value → engine value under a target type (the proxy
/// function's inbound hop, used when a library hands back derived values).
pub fn from_external(ev: &ExtValue, target: &crate::DataType) -> Result<Value> {
    use crate::DataType as T;
    Ok(match (ev, target) {
        (ExtValue::Null, _) => Value::Null,
        (ExtValue::Bool(b), T::Bool) => Value::Bool(*b),
        (ExtValue::Long(v), T::Int64) => Value::Int64(*v),
        (ExtValue::Long(v), T::DateTime) => Value::DateTime(*v),
        (ExtValue::Long(v), T::Float64) => Value::Float64(*v as f64),
        (ExtValue::Double(v), T::Float64) => Value::Float64(*v),
        (ExtValue::Text(s), T::String) => Value::str(s),
        (ExtValue::Text(s), T::Uuid) => {
            let u = u128::from_str_radix(s, 16)
                .map_err(|e| FudjError::JoinLibrary(format!("bad uuid text {s:?}: {e}")))?;
            Value::Uuid(u)
        }
        (la @ ExtValue::LongArray(_), T::Interval) => Value::Interval(la.as_interval()?),
        (ExtValue::DoubleArray(a), T::Point) if a.len() == 2 => {
            Value::Point(Point::new(a[0], a[1]))
        }
        (ExtValue::DoubleArray(a), T::Polygon) if a.len() >= 6 && a.len() % 2 == 0 => {
            let ring = a.chunks_exact(2).map(|c| Point::new(c[0], c[1])).collect();
            Value::polygon(Polygon::new(ring))
        }
        (ExtValue::TextArray(ts), T::List(inner)) if **inner == T::String => {
            Value::list(ts.iter().map(Value::str).collect())
        }
        (ev, t) => {
            return Err(FudjError::JoinLibrary(format!(
                "cannot translate external {ev} back to engine type {t}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    #[test]
    fn scalar_roundtrips() {
        let cases = vec![
            (Value::Int64(42), DataType::Int64),
            (Value::Float64(2.5), DataType::Float64),
            (Value::str("hello"), DataType::String),
            (Value::Bool(true), DataType::Bool),
            (Value::DateTime(1_000_000), DataType::DateTime),
            (Value::Uuid(0xdeadbeef), DataType::Uuid),
        ];
        for (v, t) in cases {
            let ev = to_external(&v).unwrap();
            assert_eq!(from_external(&ev, &t).unwrap(), v, "{t:?}");
        }
    }

    #[test]
    fn interval_is_long_array() {
        let v = Value::Interval(Interval::new(10, 99));
        let ev = to_external(&v).unwrap();
        assert_eq!(ev, ExtValue::LongArray(vec![10, 99]));
        assert_eq!(ev.as_interval().unwrap(), Interval::new(10, 99));
        assert_eq!(from_external(&ev, &DataType::Interval).unwrap(), v);
    }

    #[test]
    fn point_and_polygon_are_coord_arrays() {
        let p = Value::Point(Point::new(1.0, 2.0));
        let ev = to_external(&p).unwrap();
        assert_eq!(ev, ExtValue::DoubleArray(vec![1.0, 2.0]));
        let mbr = ev.as_coords_mbr().unwrap();
        assert_eq!((mbr.min_x, mbr.max_y), (1.0, 2.0));

        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ]);
        let pv = Value::polygon(poly.clone());
        let pev = to_external(&pv).unwrap();
        assert_eq!(pev.as_coords_mbr().unwrap(), poly.mbr());
        assert_eq!(from_external(&pev, &DataType::Polygon).unwrap(), pv);
    }

    #[test]
    fn text_list_roundtrip() {
        let v = Value::list(vec![Value::str("a"), Value::str("b")]);
        let ev = to_external(&v).unwrap();
        assert_eq!(ev, ExtValue::TextArray(vec!["a".into(), "b".into()]));
        let back = from_external(&ev, &DataType::List(Box::new(DataType::String))).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn bad_translations_error() {
        assert!(ExtValue::Text("x".into()).as_long().is_err());
        assert!(ExtValue::LongArray(vec![5, 1]).as_interval().is_err()); // inverted
        assert!(ExtValue::DoubleArray(vec![1.0]).as_coords_mbr().is_err()); // odd length
        assert!(from_external(&ExtValue::Double(1.0), &DataType::Polygon).is_err());
        assert!(from_external(&ExtValue::Text("zz-not-hex".into()), &DataType::Uuid).is_err());
    }

    #[test]
    fn widening_accessors() {
        assert_eq!(ExtValue::Long(3).as_double().unwrap(), 3.0);
        assert_eq!(ExtValue::Double(3.5).as_double().unwrap(), 3.5);
    }
}
