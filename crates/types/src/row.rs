//! Rows and batches — the unit of data flow between operators.

use crate::schema::SchemaRef;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// One tuple. The value buffer is `Arc`-shared, so cloning a row is a
/// refcount bump and dropping a shared clone frees nothing — a scan can
/// hand every operator the stored rows without touching the allocator,
/// which used to dominate scan-heavy pipelines. Rows are immutable in
/// exchange: the widening ops ([`Row::push`], [`Row::with_appended`])
/// build a fresh buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into(),
        }
    }

    /// The values in column order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds — operator code resolves column
    /// indices against the schema before touching rows.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append a value (used when operators widen rows, e.g. UNNEST adds the
    /// bucket id column). Copy-on-write: builds a fresh buffer — prefer
    /// [`Row::with_appended`] when the original row is kept anyway.
    pub fn push(&mut self, v: Value) {
        *self = self.with_appended(v);
    }

    /// This row widened by one trailing value, in a single allocation.
    pub fn with_appended(&self, v: Value) -> Row {
        Row {
            values: self
                .values
                .iter()
                .cloned()
                .chain(std::iter::once(v))
                .collect(),
        }
    }

    /// This row truncated to its first `n` columns, in a single allocation.
    pub fn prefix(&self, n: usize) -> Row {
        Row {
            values: self.values[..n].iter().cloned().collect(),
        }
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        Row {
            values: self
                .values
                .iter()
                .chain(other.values.iter())
                .cloned()
                .collect(),
        }
    }

    /// New row keeping only the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Copy out the value vector. (The buffer may be shared with other
    /// clones of this row, so this clones the values.)
    pub fn into_values(self) -> Vec<Value> {
        self.values.to_vec()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row {
            values: iter.into_iter().collect(),
        }
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A batch: a schema plus rows. Operators exchange batches, not single rows,
/// to keep per-row overhead off the hot path.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    schema: SchemaRef,
    rows: Vec<Row>,
}

impl Batch {
    /// Batch from a schema and rows.
    ///
    /// Row widths are validated in debug builds only; operators construct
    /// batches in hot loops.
    pub fn new(schema: SchemaRef, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row width does not match schema {schema}",
            schema = schema
        );
        Batch { schema, rows }
    }

    /// Empty batch of a schema.
    pub fn empty(schema: SchemaRef) -> Self {
        Batch {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The rows.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Mutable row access (used by in-place operators like sort).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::String),
        ])
    }

    #[test]
    fn row_accessors() {
        let r = Row::new(vec![Value::Int64(1), Value::str("x")]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0), &Value::Int64(1));
        assert_eq!(r.values()[1], Value::str("x"));
    }

    #[test]
    fn concat_and_project() {
        let a = Row::new(vec![Value::Int64(1)]);
        let b = Row::new(vec![Value::str("x"), Value::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int64(1)]);
    }

    #[test]
    fn batch_basics() {
        let s = schema();
        let b = Batch::new(
            s.clone(),
            vec![Row::new(vec![Value::Int64(1), Value::str("x")])],
        );
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert!(Batch::empty(s).is_empty());
    }

    #[test]
    fn rows_order_and_eq() {
        let r1 = Row::new(vec![Value::Int64(1)]);
        let r2 = Row::new(vec![Value::Int64(2)]);
        assert!(r1 < r2);
        assert_eq!(r1, r1.clone());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "row width")]
    fn batch_validates_width_in_debug() {
        let _ = Batch::new(schema(), vec![Row::new(vec![Value::Int64(1)])]);
    }
}
