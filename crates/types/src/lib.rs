//! Value model, schemas, rows, and the FUDJ external-type protocol.
//!
//! This crate is the vocabulary shared by every layer of the reproduction:
//!
//! * [`Value`] / [`DataType`] — the engine-native ("internal", in the
//!   paper's Fig. 7 sense) type system: the role AsterixDB's
//!   `AInt`/`APoint`/... play in the original.
//! * [`Schema`] / [`Row`] / [`Batch`] — tabular data flowing between
//!   operators.
//! * [`FudjError`] — the error type used across the workspace.
//! * [`ext::ExtValue`] — the *simple external types* a FUDJ library sees,
//!   plus the translation protocol converting engine values to them.
//!   This is the paper's proxy-built-in-function serialization boundary.
//! * [`wire`] — a compact binary row format used by exchange operators so
//!   the simulated cluster's shuffled-byte accounting is honest.

pub mod column;
pub mod datatype;
pub mod error;
pub mod ext;
pub mod row;
pub mod schema;
pub mod value;
pub mod wire;

pub use column::{ColumnReader, ColumnVec, ColumnarBatch, SelectionBitmap};
pub use datatype::DataType;
pub use error::{FudjError, Result};
pub use ext::ExtValue;
pub use row::{Batch, Row};
pub use schema::{Field, Schema, SchemaRef};
pub use value::Value;
