//! The workspace-wide error type.

use std::fmt;

/// Errors surfaced by any layer of the FUDJ reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FudjError {
    /// A value had an unexpected runtime type.
    TypeMismatch {
        expected: String,
        found: String,
        context: String,
    },
    /// A referenced column does not exist in the schema.
    ColumnNotFound { name: String, schema: String },
    /// A referenced dataset does not exist in the catalog.
    DatasetNotFound(String),
    /// A referenced FUDJ (or its library) is not registered.
    JoinNotFound(String),
    /// SQL text could not be lexed/parsed/bound.
    Parse(String),
    /// The planner could not produce a plan (unsupported shape, bad types).
    Plan(String),
    /// A runtime failure inside an operator or exchange.
    Execution(String),
    /// A FUDJ library misbehaved (bad assign output, failed translation...).
    JoinLibrary(String),
    /// Catalog-level conflicts (duplicate names, dropped objects in use).
    Catalog(String),
    /// Wire-format corruption during (de)serialization.
    Wire(String),
    /// A guarded user callback broke the UDF contract: panicked, blew a
    /// budget, or failed a guard-layer invariant check. `phase` names the
    /// callback (`summarize`, `merge`, `divide`, `assign`, `match`,
    /// `verify`, `dedup`), `site` pins the offending invocation.
    UdfViolation {
        phase: String,
        site: String,
        detail: String,
    },
    /// The query was cancelled (by the user or the scheduler) before it
    /// could finish.
    Cancelled(String),
    /// The query's simulated-clock deadline expired mid-execution.
    Deadline(String),
    /// The scheduler refused to admit the query (concurrency or memory
    /// quota exceeded and the admission queue is full).
    Admission(String),
    /// A durable-storage failure (WAL/snapshot I/O, unwritable directory,
    /// unrecoverable manifest).
    Storage(String),
    /// A *simulated* crash injected by the storage fault layer. Only the
    /// crash-restart harness should ever observe this variant; it marks
    /// the point where a real process would have died.
    Crash(String),
}

impl FudjError {
    /// Shorthand for a [`FudjError::TypeMismatch`].
    pub fn type_mismatch(
        expected: impl Into<String>,
        found: impl fmt::Debug,
        context: impl Into<String>,
    ) -> Self {
        FudjError::TypeMismatch {
            expected: expected.into(),
            found: format!("{found:?}"),
            context: context.into(),
        }
    }
}

impl fmt::Display for FudjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FudjError::TypeMismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            FudjError::ColumnNotFound { name, schema } => {
                write!(f, "column {name:?} not found in schema [{schema}]")
            }
            FudjError::DatasetNotFound(name) => write!(f, "dataset {name:?} not found"),
            FudjError::JoinNotFound(name) => write!(f, "join {name:?} is not registered"),
            FudjError::Parse(msg) => write!(f, "parse error: {msg}"),
            FudjError::Plan(msg) => write!(f, "planning error: {msg}"),
            FudjError::Execution(msg) => write!(f, "execution error: {msg}"),
            FudjError::JoinLibrary(msg) => write!(f, "join library error: {msg}"),
            FudjError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            FudjError::Wire(msg) => write!(f, "wire format error: {msg}"),
            FudjError::UdfViolation {
                phase,
                site,
                detail,
            } => {
                write!(f, "UDF violation in {phase} at {site}: {detail}")
            }
            FudjError::Cancelled(msg) => write!(f, "query cancelled: {msg}"),
            FudjError::Deadline(msg) => write!(f, "deadline exceeded: {msg}"),
            FudjError::Admission(msg) => write!(f, "admission rejected: {msg}"),
            FudjError::Storage(msg) => write!(f, "storage error: {msg}"),
            FudjError::Crash(msg) => write!(f, "simulated crash: {msg}"),
        }
    }
}

impl std::error::Error for FudjError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, FudjError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FudjError::type_mismatch("Int64", "hello", "filter predicate");
        let s = e.to_string();
        assert!(s.contains("Int64") && s.contains("filter predicate"));

        assert_eq!(
            FudjError::DatasetNotFound("Parks".into()).to_string(),
            "dataset \"Parks\" not found"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FudjError::Plan("x".into()));
    }
}
