//! Property tests for the query journal: journal records ride the same
//! WAL frames as data records, so any single bit flip or truncation of a
//! journal segment is *detected* by the frame checksum — replay may drop
//! or quarantine the damaged frame, but it never mis-decodes a journal
//! record into a different one, and `fold_journal` over the survivors
//! never invents a pending query that was not submitted.

use fudj_storage::wal::{encode_frame, WAL_MAGIC};
use fudj_storage::{fold_journal, replay_wal, WalRecord};
use proptest::prelude::*;

fn arb_counters() -> impl Strategy<Value = Vec<(String, u64)>> {
    prop::collection::vec(("[a-z_]{1,12}", any::<u64>()), 0..5)
}

fn arb_journal_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (
            any::<u64>(),
            "[a-zA-Z0-9 (),*=']{1,40}",
            prop::collection::vec(("[a-z_]{1,12}", "[a-z0-9]{1,8}"), 0..4),
        )
            .prop_map(|(fingerprint, sql, options)| WalRecord::QuerySubmitted {
                fingerprint,
                sql,
                options,
            }),
        (
            any::<u64>(),
            prop_oneof![
                Just("join:partition".to_owned()),
                Just("join:combine".to_owned()),
                Just("agg:shuffle".to_owned()),
            ],
            arb_counters(),
            prop::collection::vec("[a-z:_]{1,16}".prop_map(String::from), 0..4),
        )
            .prop_map(|(fingerprint, stage, counters, phases)| {
                WalRecord::StageCommitted {
                    fingerprint,
                    stage,
                    counters,
                    phases,
                }
            }),
        any::<u64>().prop_map(|fingerprint| WalRecord::QueryFinished { fingerprint }),
    ]
}

fn segment(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = WAL_MAGIC.to_vec();
    for (i, rec) in records.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(i as u64 + 1, rec));
    }
    bytes
}

/// Fingerprints a fold would report as pending for the given records.
fn pending_fingerprints(records: &[(u64, WalRecord)]) -> Vec<u64> {
    fold_journal(records)
        .iter()
        .map(|p| p.fingerprint)
        .collect()
}

proptest! {
    /// Flipping any single bit in a journal segment never mis-decodes a
    /// record: every record replay returns is byte-identical to the
    /// original at its sequence number, and the damage is detected.
    #[test]
    fn journal_bit_flip_never_misdecodes(
        records in prop::collection::vec(arb_journal_record(), 1..8),
        flip in any::<u64>(),
    ) {
        let clean = segment(&records);
        let bit = (flip % (clean.len() as u64 * 8)) as usize;
        let mut damaged = clean.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        let replay = replay_wal(&damaged);
        prop_assert!(
            replay.torn_tail
                || replay.quarantined > 0
                || replay.records.len() < records.len(),
            "flip at bit {} undetected", bit
        );
        for (seq, rec) in &replay.records {
            prop_assert!(*seq >= 1 && *seq <= records.len() as u64, "alien seq {seq}");
            prop_assert_eq!(rec, &records[(*seq - 1) as usize], "seq {} mis-decoded", seq);
        }
        // Folding the survivors never invents a query: every pending
        // fingerprint must have a matching QuerySubmitted in the originals.
        for fp in pending_fingerprints(&replay.records) {
            prop_assert!(
                records.iter().any(|r| matches!(
                    r,
                    WalRecord::QuerySubmitted { fingerprint, .. } if *fingerprint == fp
                )),
                "fold invented pending query {fp:#x} from a damaged segment"
            );
        }
    }

    /// Truncating a journal segment at any byte replays a gapless prefix,
    /// and the fold over that prefix equals the fold over the same prefix
    /// of the original records — recovery never resumes work that was
    /// journaled *after* the cut.
    #[test]
    fn journal_truncation_folds_to_exact_prefix(
        records in prop::collection::vec(arb_journal_record(), 1..8),
        cut in any::<u64>(),
    ) {
        let clean = segment(&records);
        let at = (cut % (clean.len() as u64 + 1)) as usize;
        let replay = replay_wal(&clean[..at]);
        prop_assert!(replay.records.len() <= records.len());
        for (i, (seq, rec)) in replay.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1, "replay is a gapless prefix");
            prop_assert_eq!(rec, &records[i]);
        }
        let expected: Vec<(u64, WalRecord)> = records[..replay.records.len()]
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| (i as u64 + 1, r))
            .collect();
        prop_assert_eq!(fold_journal(&replay.records), fold_journal(&expected));
    }

    /// `fold_journal` semantics hold for arbitrary record interleavings:
    /// a query is pending iff it was submitted and not finished afterward,
    /// stage boundaries are deduped by stage name, and re-submission under
    /// the same fingerprint (a resume that crashed again) is idempotent.
    #[test]
    fn fold_is_submit_minus_finish_with_deduped_stages(
        records in prop::collection::vec(arb_journal_record(), 0..16),
    ) {
        let seq: Vec<(u64, WalRecord)> = records
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| (i as u64 + 1, r))
            .collect();
        let pending = fold_journal(&seq);
        // Model: walk the records, tracking open fingerprints.
        let mut open: Vec<u64> = Vec::new();
        for rec in &records {
            match rec {
                WalRecord::QuerySubmitted { fingerprint, .. } if !open.contains(fingerprint) => {
                    open.push(*fingerprint);
                }
                WalRecord::QueryFinished { fingerprint } => {
                    open.retain(|f| f != fingerprint);
                }
                _ => {}
            }
        }
        let got: Vec<u64> = pending.iter().map(|p| p.fingerprint).collect();
        prop_assert_eq!(&got, &open, "pending set must be submit minus finish");
        for p in &pending {
            let mut seen = Vec::new();
            for c in &p.committed {
                prop_assert!(
                    !seen.contains(&&c.stage),
                    "stage {:?} committed twice for {:#x}", c.stage, p.fingerprint
                );
                seen.push(&c.stage);
            }
        }
    }
}
