//! Property test: CSV export → import is lossless for every supported type.

use fudj_geo::{Point, Polygon};
use fudj_storage::{read_csv, write_csv, DatasetBuilder};
use fudj_temporal::Interval;
use fudj_types::{DataType, Field, Row, Schema, Value};
use proptest::prelude::*;

/// One row covering all nine CSV-supported types, with independent
/// nullability per column (except the primary key).
fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    let strings = prop::sample::select(vec![
        "plain",
        "with, comma",
        "say \"hi\"",
        "mixed, \"both\" éß",
        "",
    ]);
    (
        any::<i64>(),                                                                // id
        prop::option::of(any::<i64>()),                                              // bigint
        prop::option::of(-1e12f64..1e12),                                            // double
        prop::option::of(any::<bool>()),                                             // bool
        prop::option::of(strings),                                                   // string
        prop::option::of(any::<u128>()),                                             // uuid
        prop::option::of(any::<i64>()),                                              // datetime
        prop::option::of((any::<i32>(), 0i32..1_000_000)),                           // interval
        prop::option::of((-1e6f64..1e6, -1e6f64..1e6)),                              // point
        prop::option::of(prop::collection::vec((-1e5f64..1e5, -1e5f64..1e5), 3..8)), // polygon
    )
        .prop_map(|(id, i, f, b, s, u, dt, iv, pt, poly)| {
            fn opt<T>(o: Option<T>, f: impl FnOnce(T) -> Value) -> Value {
                o.map(f).unwrap_or(Value::Null)
            }
            vec![
                Value::Int64(id),
                opt(i, Value::Int64),
                opt(f, Value::Float64),
                opt(b, Value::Bool),
                opt(s, Value::str),
                opt(u, Value::Uuid),
                opt(dt, Value::DateTime),
                opt(iv, |(st, d)| {
                    Value::Interval(Interval::new(st as i64, st as i64 + d as i64))
                }),
                opt(pt, |(x, y)| Value::Point(Point::new(x, y))),
                opt(poly, |pts| {
                    Value::polygon(Polygon::new(
                        pts.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                    ))
                }),
            ]
        })
}

fn schema() -> fudj_types::SchemaRef {
    Schema::shared(vec![
        Field::new("id", DataType::Int64),
        Field::new("c_int", DataType::Int64),
        Field::new("c_float", DataType::Float64),
        Field::new("c_bool", DataType::Bool),
        Field::new("c_str", DataType::String),
        Field::new("c_uuid", DataType::Uuid),
        Field::new("c_dt", DataType::DateTime),
        Field::new("c_iv", DataType::Interval),
        Field::new("c_pt", DataType::Point),
        Field::new("c_poly", DataType::Polygon),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn csv_roundtrip_is_lossless(
        rows in prop::collection::vec(arb_row(), 1..16),
        case_id in any::<u64>(),
    ) {
        let schema = schema();
        let d = DatasetBuilder::new("t", schema.clone()).partitions(3).build().unwrap();
        for r in &rows {
            d.insert(Row::new(r.clone())).unwrap();
        }

        let path = std::env::temp_dir().join(format!(
            "fudj-csv-prop-{}-{case_id}.csv",
            std::process::id()
        ));
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, "t2", schema, "id", 2).unwrap();
        let _ = std::fs::remove_file(&path);

        let mut a = d.all_rows();
        let mut b = back.all_rows();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
