//! Property tests for WAL/snapshot corruption detection: any single bit
//! flip or truncation of an encoded record is *detected* by the checksum
//! — replay may drop or quarantine the damaged frame, but it never
//! mis-decodes one into a different record, and it never panics.

use fudj_storage::wal::{encode_frame, GuardSpec, JoinSpec, WAL_MAGIC};
use fudj_storage::{replay_wal, SnapshotState, SnapshotTable, WalRecord};
use fudj_types::{Row, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int64),
        (-1e15f64..1e15).prop_map(Value::Float64),
        "[a-zA-Z0-9 ]{0,16}".prop_map(Value::str),
        any::<u128>().prop_map(Value::Uuid),
    ]
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    let name = "[a-z]{1,10}";
    prop_oneof![
        (
            name,
            prop::collection::vec(("[a-z]{1,8}", Just("bigint".to_owned())), 1..4),
            1u32..8
        )
            .prop_map(|(n, fields, parts)| {
                let pk = fields[0].0.clone();
                WalRecord::CreateTable {
                    name: n,
                    fields,
                    primary_key: pk,
                    partitions: parts,
                }
            }),
        name.prop_map(|n| WalRecord::DropTable { name: n }),
        (
            name,
            prop::collection::vec(
                prop::collection::vec(arb_value(), 1..4).prop_map(Row::new),
                0..6
            )
        )
            .prop_map(|(table, rows)| WalRecord::Append { table, rows }),
        (name, name, name, 0u64..1000).prop_map(|(n, lib, class, budget)| {
            WalRecord::CreateJoin(JoinSpec {
                name: n,
                library: lib,
                class,
                arg_types: vec!["bigint".into(), "string".into()],
                guard: GuardSpec {
                    policy: "quarantine".into(),
                    call_budget_ms: budget,
                    max_pplan_bytes: 1024,
                    max_buckets_per_key: 8,
                    max_assign_fanout: 4,
                    check_sample: 1,
                },
                memory_budget_rows: (budget % 2 == 0).then_some(budget),
            })
        }),
        name.prop_map(|n| WalRecord::DropJoin { name: n }),
    ]
}

fn segment(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = WAL_MAGIC.to_vec();
    for (i, rec) in records.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(i as u64 + 1, rec));
    }
    bytes
}

proptest! {
    /// Flipping any single bit anywhere in a segment never yields a
    /// mis-decoded record: every record that replay *does* return is
    /// byte-identical to the original at its sequence number.
    #[test]
    fn single_bit_flip_never_misdecodes(
        records in prop::collection::vec(arb_record(), 1..6),
        flip in any::<u64>(),
    ) {
        let clean = segment(&records);
        let bit = (flip % (clean.len() as u64 * 8)) as usize;
        let mut damaged = clean.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        let replay = replay_wal(&damaged);
        // Detection: the damaged segment must not replay cleanly.
        prop_assert!(
            replay.torn_tail
                || replay.quarantined > 0
                || replay.records.len() < records.len(),
            "flip at bit {} undetected", bit
        );
        // No mis-decode: surviving records match the originals exactly.
        for (seq, rec) in &replay.records {
            prop_assert!(*seq >= 1 && *seq <= records.len() as u64, "alien seq {seq}");
            prop_assert_eq!(rec, &records[(*seq - 1) as usize], "seq {} mis-decoded", seq);
        }
    }

    /// Truncating a segment at any byte yields a clean prefix: replay
    /// returns exactly the records whose frames fit, in order, and flags
    /// the cut as a torn tail (unless the cut lands on a frame boundary).
    #[test]
    fn truncation_recovers_exact_prefix(
        records in prop::collection::vec(arb_record(), 1..6),
        cut in any::<u64>(),
    ) {
        let clean = segment(&records);
        let at = (cut % (clean.len() as u64 + 1)) as usize;
        let replay = replay_wal(&clean[..at]);
        prop_assert!(replay.records.len() <= records.len());
        for (i, (seq, rec)) in replay.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1, "replay is a gapless prefix");
            prop_assert_eq!(rec, &records[i]);
        }
        prop_assert!(replay.valid_len <= at as u64);
        // Replaying the truncated-to-valid prefix is stable (idempotent
        // recovery: a second crash during recovery changes nothing).
        let again = replay_wal(&clean[..replay.valid_len as usize]);
        prop_assert_eq!(again.records, replay.records);
        prop_assert!(!again.torn_tail || replay.valid_len == 0);
    }

    /// Snapshot images detect any single bit flip and any truncation —
    /// decode fails cleanly rather than returning altered state.
    #[test]
    fn snapshot_bit_flip_and_truncation_detected(
        rows in prop::collection::vec(prop::collection::vec(arb_value(), 2..4).prop_map(Row::new), 0..8),
        flip in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let state = SnapshotState {
            last_seq: rows.len() as u64,
            joins: vec![],
            tables: vec![SnapshotTable {
                name: "t".into(),
                fields: vec![("a".into(), "bigint".into()), ("b".into(), "string".into())],
                primary_key: "a".into(),
                partitions: 2,
                rows,
            }],
        };
        let clean = fudj_storage::snapshot::encode_snapshot(&state);
        prop_assert_eq!(fudj_storage::snapshot::decode_snapshot(&clean).unwrap(), state);
        let bit = (flip % (clean.len() as u64 * 8)) as usize;
        let mut damaged = clean.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            fudj_storage::snapshot::decode_snapshot(&damaged).is_err(),
            "flip at bit {} undetected", bit
        );
        let at = (cut % clean.len() as u64) as usize; // strictly shorter than clean
        prop_assert!(fudj_storage::snapshot::decode_snapshot(&clean[..at]).is_err());
    }
}
