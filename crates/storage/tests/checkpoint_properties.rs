//! Property tests: the checkpoint store round-trips arbitrary rows through
//! the wire format, and its byte accounting agrees with what `encode_row`
//! actually produces (so checkpoint bytes are comparable to the shuffle
//! byte meters).

use bytes::BytesMut;
use fudj_geo::{Point, Polygon};
use fudj_storage::CheckpointStore;
use fudj_temporal::Interval;
use fudj_types::{wire, Row, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int64),
        // Finite floats only: the engine never stores NaN/inf.
        (-1e15f64..1e15).prop_map(Value::Float64),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::str),
        any::<u128>().prop_map(Value::Uuid),
        any::<i64>().prop_map(Value::DateTime),
        (any::<i32>(), 0i32..1_000_000)
            .prop_map(|(s, d)| Value::Interval(Interval::new(s as i64, s as i64 + d as i64))),
        (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y)| Value::Point(Point::new(x, y))),
        prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 3..8).prop_map(|pts| {
            Value::polygon(Polygon::new(
                pts.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
            ))
        }),
    ]
}

fn arb_partition() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        prop::collection::vec(arb_value(), 0..6).prop_map(Row::new),
        0..12,
    )
}

proptest! {
    /// put → get restores the exact rows, and the reported checkpoint
    /// size equals the sum of the rows' wire encodings.
    #[test]
    fn checkpoint_roundtrip_and_byte_accounting(parts in prop::collection::vec(arb_partition(), 1..4)) {
        let store = CheckpointStore::new();
        let mut expected_total = 0u64;
        for (p, rows) in parts.iter().enumerate() {
            let outcome = store.put(7, "join:partition/left", p, rows).unwrap();
            let mut buf = BytesMut::new();
            for row in rows {
                wire::encode_row(row, &mut buf);
            }
            prop_assert_eq!(outcome.bytes, buf.len() as u64, "partition {}", p);
            prop_assert_eq!(outcome.evicted, 0);
            expected_total += buf.len() as u64;
        }
        prop_assert_eq!(store.total_bytes(), expected_total);
        prop_assert_eq!(store.stats().bytes_written, expected_total);
        for (p, rows) in parts.iter().enumerate() {
            let restored = store.get(7, "join:partition/left", p).unwrap().unwrap();
            prop_assert_eq!(&restored, rows, "partition {}", p);
        }
        // Unknown keys stay misses even with data present.
        prop_assert!(store.get(7, "join:partition/right", 0).is_none());
        prop_assert!(store.get(8, "join:partition/left", 0).is_none());
    }

    /// Eviction under a byte budget never corrupts surviving checkpoints
    /// and never reports a total above the budget.
    #[test]
    fn eviction_preserves_survivors(parts in prop::collection::vec(arb_partition(), 2..6), budget in 1u64..4096) {
        let store = CheckpointStore::with_budget(budget);
        for (p, rows) in parts.iter().enumerate() {
            store.put(1, "agg:shuffle/partials", p, rows).unwrap();
        }
        prop_assert!(store.total_bytes() <= budget);
        for (p, rows) in parts.iter().enumerate() {
            if let Some(restored) = store.get(1, "agg:shuffle/partials", p) {
                prop_assert_eq!(&restored.unwrap(), rows, "partition {}", p);
            }
        }
    }
}

/// Finishing a query drops its checkpoints *eagerly* (not by waiting for
/// global FIFO eviction): under a budget that only fits one query's
/// working set, dropping the finished query's entries must leave the
/// full headroom to the query that is still running.
#[test]
fn finished_query_drop_relieves_eviction_pressure() {
    let row = || {
        Row::new(vec![
            Value::Int64(42),
            Value::str("payload-payload-payload"),
        ])
    };
    let rows: Vec<Row> = (0..8).map(|_| row()).collect();
    let per_part = {
        let probe = CheckpointStore::new();
        probe.put(0, "probe", 0, &rows).unwrap().bytes
    };
    // Budget fits ~6 partitions: query 1's four partitions plus a little.
    let store = CheckpointStore::with_budget(per_part * 6);
    for p in 0..4 {
        store.put(1, "join:combine/joined", p, &rows).unwrap();
    }
    // Query 1 finishes → its checkpoints drop eagerly.
    store.remove_query(1);
    assert_eq!(store.len(), 0);
    assert_eq!(store.total_bytes(), 0);
    // Query 2 now writes four partitions of its own. With eager drop the
    // budget holds them all — nothing is evicted. (Under pure global
    // FIFO, query 1's stale entries would have forced evictions here.)
    let mut evicted = 0;
    for p in 0..4 {
        evicted += store
            .put(2, "join:combine/joined", p, &rows)
            .unwrap()
            .evicted;
    }
    assert_eq!(evicted, 0, "eager drop must leave query 2 the full budget");
    for p in 0..4 {
        let restored = store.get(2, "join:combine/joined", p).unwrap().unwrap();
        assert_eq!(restored, rows);
    }
    // A finished query's keys are really gone, not shadowed.
    assert!(store.get(1, "join:combine/joined", 0).is_none());
}
