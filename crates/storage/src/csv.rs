//! CSV import/export for datasets.
//!
//! Gives the engine a way in and out of the outside world (the paper's
//! datasets are distributed as CSV-ish dumps). The textual forms are chosen
//! to round-trip every engine type given the schema:
//!
//! | type | form |
//! |---|---|
//! | `bigint`, `double`, `boolean` | plain literal |
//! | `string` | RFC-4180 quoting when needed |
//! | `uuid` | 32 hex digits |
//! | `datetime` | epoch milliseconds |
//! | `interval` | `start..end` (epoch milliseconds) |
//! | `point` | `x y` |
//! | `polygon` | `x1 y1; x2 y2; ...` |
//! | null | empty field |

use crate::dataset::{Dataset, DatasetBuilder};
use fudj_geo::{Point, Polygon};
use fudj_temporal::Interval;
use fudj_types::{DataType, FudjError, Result, Row, SchemaRef, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Render one value as a CSV field (no quoting applied yet).
fn field_text(v: &Value) -> Result<String> {
    Ok(match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int64(x) => x.to_string(),
        Value::Float64(x) => {
            // RFC-style shortest form that round-trips f64.
            format!("{x:?}")
        }
        Value::Str(s) => s.to_string(),
        Value::Uuid(u) => format!("{u:032x}"),
        Value::DateTime(ms) => ms.to_string(),
        Value::Interval(iv) => format!("{}..{}", iv.start, iv.end),
        Value::Point(p) => format!("{:?} {:?}", p.x, p.y),
        Value::Polygon(poly) => poly
            .ring()
            .iter()
            .map(|p| format!("{:?} {:?}", p.x, p.y))
            .collect::<Vec<_>>()
            .join("; "),
        Value::List(_) => {
            return Err(FudjError::Execution(
                "list values are not CSV-exportable".into(),
            ))
        }
    })
}

/// Quote per RFC 4180 when the field needs it. The empty string is always
/// quoted (`""`) so it stays distinguishable from null (empty, unquoted).
fn quote(field: &str) -> String {
    if field.is_empty() || field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Parse one CSV field under a target type. An *unquoted* empty field is
/// null; a quoted empty field is the empty string.
fn parse_field(text: &str, quoted: bool, dt: &DataType, line: usize) -> Result<Value> {
    if text.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    let err =
        |what: &str| FudjError::Execution(format!("line {line}: cannot parse {text:?} as {what}"));
    Ok(match dt {
        DataType::Bool => Value::Bool(text.parse().map_err(|_| err("boolean"))?),
        DataType::Int64 => Value::Int64(text.parse().map_err(|_| err("bigint"))?),
        DataType::Float64 => Value::Float64(text.parse().map_err(|_| err("double"))?),
        DataType::String => Value::str(text),
        DataType::Uuid => Value::Uuid(u128::from_str_radix(text, 16).map_err(|_| err("uuid hex"))?),
        DataType::DateTime => Value::DateTime(text.parse().map_err(|_| err("epoch millis"))?),
        DataType::Interval => {
            let (s, e) = text
                .split_once("..")
                .ok_or_else(|| err("interval start..end"))?;
            let start: i64 = s.trim().parse().map_err(|_| err("interval start"))?;
            let end: i64 = e.trim().parse().map_err(|_| err("interval end"))?;
            if start > end {
                return Err(err("interval (start after end)"));
            }
            Value::Interval(Interval::new(start, end))
        }
        DataType::Point => {
            let mut it = text.split_whitespace();
            let x: f64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("point x"))?;
            let y: f64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("point y"))?;
            Value::Point(Point::new(x, y))
        }
        DataType::Polygon => {
            let ring = text
                .split(';')
                .map(|pair| {
                    let mut it = pair.split_whitespace();
                    let x: f64 = it.next().and_then(|t| t.parse().ok())?;
                    let y: f64 = it.next().and_then(|t| t.parse().ok())?;
                    Some(Point::new(x, y))
                })
                .collect::<Option<Vec<Point>>>()
                .ok_or_else(|| err("polygon ring"))?;
            if ring.len() < 3 {
                return Err(err("polygon (needs ≥ 3 vertices)"));
            }
            Value::polygon(Polygon::new(ring))
        }
        DataType::Null | DataType::List(_) => {
            return Err(FudjError::Execution(format!(
                "line {line}: type {dt} is not CSV-loadable"
            )))
        }
    })
}

/// Split one CSV record into `(field, was_quoted)` pairs (RFC-4180
/// quoting). Quotedness is preserved to keep null (unquoted empty) and the
/// empty string (quoted empty) distinct.
fn split_record(line: &str, line_no: usize) -> Result<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut cur_quoted = false;
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() && !cur_quoted => {
                in_quotes = true;
                cur_quoted = true;
            }
            ',' if !in_quotes => {
                fields.push((std::mem::take(&mut cur), cur_quoted));
                cur_quoted = false;
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(FudjError::Execution(format!(
            "line {line_no}: unterminated quote"
        )));
    }
    fields.push((cur, cur_quoted));
    Ok(fields)
}

/// Write a dataset to a CSV file (header row first).
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<usize> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| FudjError::Execution(format!("create {}: {e}", path.as_ref().display())))?;
    let mut w = BufWriter::new(file);
    let io_err = |e: std::io::Error| FudjError::Execution(format!("csv write: {e}"));

    let header: Vec<String> = dataset
        .schema()
        .fields()
        .iter()
        .map(|f| quote(&f.name))
        .collect();
    writeln!(w, "{}", header.join(",")).map_err(io_err)?;

    let mut written = 0usize;
    for row in dataset.all_rows() {
        // Nulls stay unquoted-empty; everything else (including the empty
        // string, which quotes to `""`) goes through the quoting rules.
        let fields: Vec<String> = row
            .values()
            .iter()
            .map(|v| {
                if v.is_null() {
                    Ok(String::new())
                } else {
                    Ok(quote(&field_text(v)?))
                }
            })
            .collect::<Result<_>>()?;
        writeln!(w, "{}", fields.join(",")).map_err(io_err)?;
        written += 1;
    }
    w.flush().map_err(io_err)?;
    Ok(written)
}

/// Read a CSV file (with header) into a new dataset under `schema`. Header
/// names must match the schema's field names in order.
pub fn read_csv(
    path: impl AsRef<Path>,
    name: impl Into<String>,
    schema: SchemaRef,
    primary_key: &str,
    partitions: usize,
) -> Result<Dataset> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| FudjError::Execution(format!("open {}: {e}", path.as_ref().display())))?;
    let reader = BufReader::new(file);
    let dataset = DatasetBuilder::new(name, schema.clone())
        .primary_key(primary_key)
        .partitions(partitions)
        .build()?;

    let mut lines = reader.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| FudjError::Execution("csv file is empty".into()))?;
    let header = header.map_err(|e| FudjError::Execution(format!("csv read: {e}")))?;
    let names: Vec<String> = split_record(&header, 1)?
        .into_iter()
        .map(|(f, _)| f)
        .collect();
    let expected: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
    if names != expected {
        return Err(FudjError::Execution(format!(
            "csv header {names:?} does not match schema columns {expected:?}"
        )));
    }

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.map_err(|e| FudjError::Execution(format!("csv read: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, line_no)?;
        if fields.len() != schema.len() {
            return Err(FudjError::Execution(format!(
                "line {line_no}: expected {} fields, found {}",
                schema.len(),
                fields.len()
            )));
        }
        let values: Vec<Value> = fields
            .iter()
            .zip(schema.fields())
            .map(|((f, quoted), field)| parse_field(f, *quoted, &field.data_type, line_no))
            .collect::<Result<_>>()?;
        dataset.insert(Row::new(values))?;
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::{Field, Schema};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fudj-csv-test-{}-{tag}.csv", std::process::id()))
    }

    fn full_schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("id", DataType::Uuid),
            Field::new("n", DataType::Int64),
            Field::new("x", DataType::Float64),
            Field::new("ok", DataType::Bool),
            Field::new("note", DataType::String),
            Field::new("at", DataType::DateTime),
            Field::new("span", DataType::Interval),
            Field::new("loc", DataType::Point),
            Field::new("shape", DataType::Polygon),
        ])
    }

    fn sample_row(i: u128) -> Row {
        Row::new(vec![
            Value::Uuid(i),
            Value::Int64(-5 + i as i64),
            Value::Float64(0.1 + i as f64),
            Value::Bool(i.is_multiple_of(2)),
            Value::str(format!("tricky, \"quoted\"\nvalue {i}")),
            Value::DateTime(1_700_000_000_000 + i as i64),
            Value::Interval(Interval::new(10, 20 + i as i64)),
            Value::Point(Point::new(1.5, -2.25)),
            Value::polygon(Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(0.0, 4.0),
            ])),
        ])
    }

    #[test]
    fn roundtrip_every_type() {
        // Note: the string contains a comma and quotes but no newline —
        // multi-line CSV records are out of scope for the line reader.
        let schema = full_schema();
        let d = DatasetBuilder::new("t", schema.clone())
            .partitions(2)
            .build()
            .unwrap();
        for i in 0..10u128 {
            let mut row = sample_row(i).into_values();
            row[4] = Value::str(format!("tricky, \"quoted\" value {i}"));
            d.insert(Row::new(row)).unwrap();
        }
        let path = temp_path("roundtrip");
        let written = write_csv(&d, &path).unwrap();
        assert_eq!(written, 10);

        let back = read_csv(&path, "t2", schema, "id", 3).unwrap();
        let mut a = d.all_rows();
        let mut b = back.all_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn nulls_roundtrip_as_empty() {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::String),
        ]);
        let d = DatasetBuilder::new("t", schema.clone()).build().unwrap();
        d.insert(Row::new(vec![Value::Int64(1), Value::Null]))
            .unwrap();
        let path = temp_path("nulls");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, "t2", schema, "id", 1).unwrap();
        assert_eq!(back.all_rows()[0].get(1), &Value::Null);
        let _ = std::fs::remove_file(path);
    }

    /// Regression (found by the round-trip property test): the empty string
    /// must stay distinguishable from null — `""` (quoted) vs `` (bare).
    #[test]
    fn empty_string_is_not_null() {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::String),
        ]);
        let d = DatasetBuilder::new("t", schema.clone()).build().unwrap();
        d.insert(Row::new(vec![Value::Int64(1), Value::str("")]))
            .unwrap();
        d.insert(Row::new(vec![Value::Int64(2), Value::Null]))
            .unwrap();
        let path = temp_path("emptystr");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, "t2", schema, "id", 1).unwrap();
        let mut rows = back.all_rows();
        rows.sort();
        assert_eq!(rows[0].get(1), &Value::str(""));
        assert_eq!(rows[1].get(1), &Value::Null);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn header_mismatch_rejected() {
        let path = temp_path("badheader");
        std::fs::write(&path, "wrong,names\n1,2\n").unwrap();
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        assert!(read_csv(&path, "t", schema, "id", 1).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_fields_report_line_numbers() {
        let path = temp_path("badfield");
        std::fs::write(&path, "id,span\n1,10..20\n2,backwards\n").unwrap();
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("span", DataType::Interval),
        ]);
        let err = read_csv(&path, "t", schema, "id", 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 3"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn quoting_rules() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        let rec = split_record("\"a,b\",c,\"say \"\"hi\"\"\",", 1).unwrap();
        assert_eq!(
            rec,
            vec![
                ("a,b".to_owned(), true),
                ("c".to_owned(), false),
                ("say \"hi\"".to_owned(), true),
                (String::new(), false),
            ]
        );
        assert_eq!(quote(""), "\"\"");
        assert!(split_record("\"unterminated", 1).is_err());
    }

    #[test]
    fn wrong_field_count_rejected() {
        let path = temp_path("fieldcount");
        std::fs::write(&path, "id,v\n1\n").unwrap();
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let err = read_csv(&path, "t", schema, "id", 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("expected 2 fields"), "{err}");
        let _ = std::fs::remove_file(path);
    }
}
