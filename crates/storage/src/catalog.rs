//! The catalog: named datasets.
//!
//! FUDJ join metadata (`CREATE JOIN`) lives in `fudj_core::JoinRegistry`;
//! the session layer composes both. Keeping them separate mirrors the
//! paper's design, where join libraries are installed independently of the
//! data they will run over.

use crate::dataset::Dataset;
use fudj_types::{FudjError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Observer of catalog mutations, called *before* the map changes
/// (log-before-apply). The durability layer uses it to WAL table DDL and
/// to attach append sinks to newly registered datasets; an error aborts
/// the mutation.
pub trait CatalogSink: Send + Sync {
    /// A dataset is about to be registered.
    fn on_register(&self, dataset: &Arc<Dataset>) -> Result<()>;
    /// A dataset is about to be dropped.
    fn on_drop(&self, name: &str) -> Result<()>;
}

/// A thread-safe name → dataset map.
#[derive(Default)]
pub struct Catalog {
    datasets: RwLock<HashMap<String, Arc<Dataset>>>,
    sink: RwLock<Option<Arc<dyn CatalogSink>>>,
    /// DDL version: bumped on every successful register/drop. Result
    /// caches fold it into their keys so table-level DDL (which can swap a
    /// whole dataset under an unchanged name) invalidates coarsely.
    ddl_epoch: AtomicU64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach or detach the mutation observer.
    pub fn set_sink(&self, sink: Option<Arc<dyn CatalogSink>>) {
        *self.sink.write() = sink;
    }

    /// Register a dataset under its own name. Fails on duplicates — matching
    /// `CREATE DATASET` semantics.
    pub fn register(&self, dataset: Dataset) -> Result<Arc<Dataset>> {
        let name = dataset.name().to_owned();
        let mut map = self.datasets.write();
        if map.contains_key(&name) {
            return Err(FudjError::Catalog(format!(
                "dataset {name:?} already exists"
            )));
        }
        let arc = Arc::new(dataset);
        if let Some(sink) = self.sink.read().clone() {
            sink.on_register(&arc)?;
        }
        map.insert(name, arc.clone());
        self.ddl_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(arc)
    }

    /// Look up a dataset.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>> {
        self.datasets
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| FudjError::DatasetNotFound(name.to_owned()))
    }

    /// Drop a dataset (`DROP DATASET`).
    pub fn drop_dataset(&self, name: &str) -> Result<()> {
        let mut map = self.datasets.write();
        if !map.contains_key(name) {
            return Err(FudjError::DatasetNotFound(name.to_owned()));
        }
        if let Some(sink) = self.sink.read().clone() {
            sink.on_drop(name)?;
        }
        map.remove(name);
        self.ddl_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// DDL epoch: advances on every successful register/drop, never on
    /// reads. Part of result-cache keys.
    pub fn ddl_epoch(&self) -> u64 {
        self.ddl_epoch.load(Ordering::Acquire)
    }

    /// Names of all registered datasets, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.datasets.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use fudj_types::{DataType, Field, Schema};

    fn ds(name: &str) -> Dataset {
        let schema = Schema::shared(vec![Field::new("id", DataType::Uuid)]);
        DatasetBuilder::new(name, schema).build().unwrap()
    }

    #[test]
    fn register_get_drop() {
        let cat = Catalog::new();
        cat.register(ds("Parks")).unwrap();
        cat.register(ds("Wildfires")).unwrap();
        assert_eq!(cat.names(), vec!["Parks", "Wildfires"]);
        assert_eq!(cat.get("Parks").unwrap().name(), "Parks");
        cat.drop_dataset("Parks").unwrap();
        assert!(matches!(
            cat.get("Parks"),
            Err(FudjError::DatasetNotFound(_))
        ));
    }

    #[test]
    fn ddl_epoch_tracks_mutations_not_reads() {
        let cat = Catalog::new();
        assert_eq!(cat.ddl_epoch(), 0);
        cat.register(ds("Parks")).unwrap();
        assert_eq!(cat.ddl_epoch(), 1);
        let _ = cat.get("Parks");
        let _ = cat.names();
        assert_eq!(cat.ddl_epoch(), 1, "reads never bump");
        assert!(cat.register(ds("Parks")).is_err());
        assert_eq!(cat.ddl_epoch(), 1, "failed DDL never bumps");
        cat.drop_dataset("Parks").unwrap();
        assert_eq!(cat.ddl_epoch(), 2);
    }

    #[test]
    fn duplicate_rejected() {
        let cat = Catalog::new();
        cat.register(ds("Parks")).unwrap();
        assert!(matches!(
            cat.register(ds("Parks")),
            Err(FudjError::Catalog(_))
        ));
    }

    #[test]
    fn drop_missing_errors() {
        let cat = Catalog::new();
        assert!(cat.drop_dataset("ghost").is_err());
    }

    #[test]
    fn sink_observes_and_can_veto_mutations() {
        struct Log(parking_lot::Mutex<Vec<String>>, bool);
        impl CatalogSink for Log {
            fn on_register(&self, dataset: &Arc<Dataset>) -> Result<()> {
                self.0.lock().push(format!("+{}", dataset.name()));
                if self.1 {
                    return Err(FudjError::Storage("no".into()));
                }
                Ok(())
            }
            fn on_drop(&self, name: &str) -> Result<()> {
                self.0.lock().push(format!("-{name}"));
                Ok(())
            }
        }
        let cat = Catalog::new();
        let log = Arc::new(Log(parking_lot::Mutex::new(Vec::new()), false));
        cat.set_sink(Some(log.clone()));
        cat.register(ds("Parks")).unwrap();
        cat.drop_dataset("Parks").unwrap();
        assert_eq!(*log.0.lock(), vec!["+Parks", "-Parks"]);
        // A vetoing sink aborts registration entirely.
        cat.set_sink(Some(Arc::new(Log(
            parking_lot::Mutex::new(Vec::new()),
            true,
        ))));
        assert!(cat.register(ds("Lakes")).is_err());
        cat.set_sink(None);
        assert!(cat.get("Lakes").is_err(), "vetoed dataset not registered");
        cat.register(ds("Lakes")).unwrap();
    }
}
