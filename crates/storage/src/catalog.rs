//! The catalog: named datasets.
//!
//! FUDJ join metadata (`CREATE JOIN`) lives in `fudj_core::JoinRegistry`;
//! the session layer composes both. Keeping them separate mirrors the
//! paper's design, where join libraries are installed independently of the
//! data they will run over.

use crate::dataset::Dataset;
use fudj_types::{FudjError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe name → dataset map.
#[derive(Default)]
pub struct Catalog {
    datasets: RwLock<HashMap<String, Arc<Dataset>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dataset under its own name. Fails on duplicates — matching
    /// `CREATE DATASET` semantics.
    pub fn register(&self, dataset: Dataset) -> Result<Arc<Dataset>> {
        let name = dataset.name().to_owned();
        let mut map = self.datasets.write();
        if map.contains_key(&name) {
            return Err(FudjError::Catalog(format!(
                "dataset {name:?} already exists"
            )));
        }
        let arc = Arc::new(dataset);
        map.insert(name, arc.clone());
        Ok(arc)
    }

    /// Look up a dataset.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>> {
        self.datasets
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| FudjError::DatasetNotFound(name.to_owned()))
    }

    /// Drop a dataset (`DROP DATASET`).
    pub fn drop_dataset(&self, name: &str) -> Result<()> {
        self.datasets
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| FudjError::DatasetNotFound(name.to_owned()))
    }

    /// Names of all registered datasets, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.datasets.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use fudj_types::{DataType, Field, Schema};

    fn ds(name: &str) -> Dataset {
        let schema = Schema::shared(vec![Field::new("id", DataType::Uuid)]);
        DatasetBuilder::new(name, schema).build().unwrap()
    }

    #[test]
    fn register_get_drop() {
        let cat = Catalog::new();
        cat.register(ds("Parks")).unwrap();
        cat.register(ds("Wildfires")).unwrap();
        assert_eq!(cat.names(), vec!["Parks", "Wildfires"]);
        assert_eq!(cat.get("Parks").unwrap().name(), "Parks");
        cat.drop_dataset("Parks").unwrap();
        assert!(matches!(
            cat.get("Parks"),
            Err(FudjError::DatasetNotFound(_))
        ));
    }

    #[test]
    fn duplicate_rejected() {
        let cat = Catalog::new();
        cat.register(ds("Parks")).unwrap();
        assert!(matches!(
            cat.register(ds("Parks")),
            Err(FudjError::Catalog(_))
        ));
    }

    #[test]
    fn drop_missing_errors() {
        let cat = Catalog::new();
        assert!(cat.drop_dataset("ghost").is_err());
    }
}
