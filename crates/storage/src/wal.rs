//! Checksummed, length-prefixed write-ahead log.
//!
//! The WAL is the durability contract's front door: every catalog
//! mutation (table DDL, `CREATE/DROP JOIN` with its guard config) and
//! every table append is encoded as one [`WalRecord`] frame *before* the
//! in-memory structures change. Row payloads reuse the
//! [`fudj_types::wire`] codec, so WAL bytes are directly comparable to
//! the shuffle and checkpoint byte meters.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic "FUDJWAL1" frame*
//! frame  := len:u32le body crc:u32le      -- len = body.len(), crc = crc32(body)
//! body   := seq:u64le kind:u8 payload
//! ```
//!
//! CRC32 (IEEE polynomial) detects every single-bit error and all burst
//! errors up to 32 bits, which is what the property suite in
//! `tests/wal_properties.rs` pins down. Replay ([`replay_wal`]) restores
//! the *committed prefix*:
//!
//! * a frame that runs past EOF, or trailing garbage with no valid frame
//!   after it, is a **torn tail** — dropped (the caller physically
//!   truncates the file to [`WalReplay::valid_len`]);
//! * a mid-file frame whose checksum fails but where a later valid frame
//!   resyncs is **quarantined** — skipped and counted, never decoded.
//!
//! Neither case is ever a panic or a wrong answer.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fudj_types::{wire, DataType, FudjError, Result, Row};

/// First eight bytes of every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"FUDJWAL1";

/// Upper bound on one frame body; anything larger is implausible framing
/// (corruption masquerading as a length), not a real record.
pub const MAX_FRAME: usize = 1 << 26;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) over `bytes` — detects all single-bit flips and any
/// truncation that changes the covered range.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Data-type codec (Display strings, parsed back on replay).
// ---------------------------------------------------------------------------

/// Parse a [`DataType`] from its `Display` form (`bigint`, `list<point>`,
/// ...). The inverse of `DataType::to_string`, used when replaying table
/// DDL out of the log.
pub fn parse_data_type(s: &str) -> Result<DataType> {
    Ok(match s {
        "null" => DataType::Null,
        "boolean" => DataType::Bool,
        "bigint" => DataType::Int64,
        "double" => DataType::Float64,
        "string" => DataType::String,
        "uuid" => DataType::Uuid,
        "datetime" => DataType::DateTime,
        "interval" => DataType::Interval,
        "point" => DataType::Point,
        "polygon" => DataType::Polygon,
        other => {
            if let Some(inner) = other
                .strip_prefix("list<")
                .and_then(|r| r.strip_suffix('>'))
            {
                DataType::List(Box::new(parse_data_type(inner)?))
            } else {
                return Err(FudjError::Storage(format!(
                    "unknown data type {other:?} in log record"
                )));
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Logged catalog state (plain values — no dependency on fudj-core).
// ---------------------------------------------------------------------------

/// Guard configuration of a registered join, flattened to plain values so
/// the storage layer needs no `fudj-core` dependency. The session bridges
/// this to/from `GuardConfig` (policy round-trips through its `Display`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardSpec {
    /// `UdfPolicy` display form (`failfast`, `quarantine`, ...).
    pub policy: String,
    /// Per-callback budget in simulated milliseconds.
    pub call_budget_ms: u64,
    /// Maximum serialized PPlan size.
    pub max_pplan_bytes: u64,
    /// Maximum buckets one key may land in.
    pub max_buckets_per_key: u64,
    /// Maximum assign fanout per row.
    pub max_assign_fanout: u64,
    /// Contract-check sampling interval.
    pub check_sample: u64,
}

/// Everything needed to re-issue a `CREATE JOIN` on recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinSpec {
    /// Registered join name.
    pub name: String,
    /// Library the class was instantiated from.
    pub library: String,
    /// Join class within the library.
    pub class: String,
    /// Argument types in `DataType` display form.
    pub arg_types: Vec<String>,
    /// Guard knobs active at creation.
    pub guard: GuardSpec,
    /// Spill budget, if one was set.
    pub memory_budget_rows: Option<u64>,
}

/// One logged mutation. Everything the engine must survive a crash with.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Table DDL: schema as `(name, data-type display string)` pairs.
    CreateTable {
        /// Dataset name.
        name: String,
        /// `(field name, data type display string)` per column.
        fields: Vec<(String, String)>,
        /// Primary-key column name.
        primary_key: String,
        /// Partition count.
        partitions: u32,
    },
    /// Table dropped.
    DropTable {
        /// Dataset name.
        name: String,
    },
    /// Rows appended to a table (wire-codec payload).
    Append {
        /// Target dataset.
        table: String,
        /// Appended rows.
        rows: Vec<Row>,
    },
    /// `CREATE JOIN` with its full spec.
    CreateJoin(JoinSpec),
    /// `DROP JOIN`.
    DropJoin {
        /// Join name.
        name: String,
    },
    /// Query journal: a statement entered execution under the durable
    /// query journal. `fingerprint` keys the query across restarts (a
    /// stable hash of the SQL text); `options` are the session knobs
    /// needed to re-plan it identically on resume.
    QuerySubmitted {
        /// Stable statement fingerprint.
        fingerprint: u64,
        /// The statement text, verbatim.
        sql: String,
        /// `(knob, value)` pairs to re-apply before re-planning.
        options: Vec<(String, String)>,
    },
    /// Query journal: a stage boundary of `fingerprint` committed — its
    /// output partitions are durable in the checkpoint tier and the
    /// logical counters at the boundary are `counters`/`phases` (opaque
    /// name/value pairs; the executor owns their meaning).
    StageCommitted {
        /// Statement fingerprint this boundary belongs to.
        fingerprint: u64,
        /// Stage name (`join:partition`, `join:combine`, `agg:shuffle`).
        stage: String,
        /// Flattened logical counters at the boundary.
        counters: Vec<(String, u64)>,
        /// Phase names completed before the boundary, in order.
        phases: Vec<String>,
    },
    /// Query journal: the statement finished (result delivered); its
    /// journal entries and durable checkpoints are dead on replay.
    QueryFinished {
        /// Statement fingerprint.
        fingerprint: u64,
    },
}

const KIND_CREATE_TABLE: u8 = 1;
const KIND_DROP_TABLE: u8 = 2;
const KIND_APPEND: u8 = 3;
const KIND_CREATE_JOIN: u8 = 4;
const KIND_DROP_JOIN: u8 = 5;
const KIND_QUERY_SUBMITTED: u8 = 6;
const KIND_STAGE_COMMITTED: u8 = 7;
const KIND_QUERY_FINISHED: u8 = 8;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(FudjError::Wire(format!(
            "log record truncated reading {what}: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

fn get_str(buf: &mut Bytes, what: &str) -> Result<String> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    if len > MAX_FRAME {
        return Err(FudjError::Wire(format!("implausible {what} length {len}")));
    }
    need(buf, len, what)?;
    let raw = buf.chunk()[..len].to_vec();
    buf.advance(len);
    String::from_utf8(raw).map_err(|_| FudjError::Wire(format!("{what} is not valid UTF-8")))
}

impl WalRecord {
    /// Encode the record payload (kind byte + body, no framing).
    fn encode_payload(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::CreateTable {
                name,
                fields,
                primary_key,
                partitions,
            } => {
                buf.put_u8(KIND_CREATE_TABLE);
                put_str(buf, name);
                buf.put_u32_le(fields.len() as u32);
                for (fname, ftype) in fields {
                    put_str(buf, fname);
                    put_str(buf, ftype);
                }
                put_str(buf, primary_key);
                buf.put_u32_le(*partitions);
            }
            WalRecord::DropTable { name } => {
                buf.put_u8(KIND_DROP_TABLE);
                put_str(buf, name);
            }
            WalRecord::Append { table, rows } => {
                buf.put_u8(KIND_APPEND);
                put_str(buf, table);
                buf.put_u32_le(rows.len() as u32);
                for row in rows {
                    wire::encode_row(row, buf);
                }
            }
            WalRecord::CreateJoin(spec) => {
                buf.put_u8(KIND_CREATE_JOIN);
                put_str(buf, &spec.name);
                put_str(buf, &spec.library);
                put_str(buf, &spec.class);
                buf.put_u32_le(spec.arg_types.len() as u32);
                for t in &spec.arg_types {
                    put_str(buf, t);
                }
                put_str(buf, &spec.guard.policy);
                buf.put_u64_le(spec.guard.call_budget_ms);
                buf.put_u64_le(spec.guard.max_pplan_bytes);
                buf.put_u64_le(spec.guard.max_buckets_per_key);
                buf.put_u64_le(spec.guard.max_assign_fanout);
                buf.put_u64_le(spec.guard.check_sample);
                match spec.memory_budget_rows {
                    Some(b) => {
                        buf.put_u8(1);
                        buf.put_u64_le(b);
                    }
                    None => buf.put_u8(0),
                }
            }
            WalRecord::DropJoin { name } => {
                buf.put_u8(KIND_DROP_JOIN);
                put_str(buf, name);
            }
            WalRecord::QuerySubmitted {
                fingerprint,
                sql,
                options,
            } => {
                buf.put_u8(KIND_QUERY_SUBMITTED);
                buf.put_u64_le(*fingerprint);
                put_str(buf, sql);
                buf.put_u32_le(options.len() as u32);
                for (key, value) in options {
                    put_str(buf, key);
                    put_str(buf, value);
                }
            }
            WalRecord::StageCommitted {
                fingerprint,
                stage,
                counters,
                phases,
            } => {
                buf.put_u8(KIND_STAGE_COMMITTED);
                buf.put_u64_le(*fingerprint);
                put_str(buf, stage);
                buf.put_u32_le(counters.len() as u32);
                for (name, value) in counters {
                    put_str(buf, name);
                    buf.put_u64_le(*value);
                }
                buf.put_u32_le(phases.len() as u32);
                for phase in phases {
                    put_str(buf, phase);
                }
            }
            WalRecord::QueryFinished { fingerprint } => {
                buf.put_u8(KIND_QUERY_FINISHED);
                buf.put_u64_le(*fingerprint);
            }
        }
    }

    /// Decode one record payload (kind byte + body).
    fn decode_payload(buf: &mut Bytes) -> Result<WalRecord> {
        need(buf, 1, "record kind")?;
        let kind = buf.get_u8();
        Ok(match kind {
            KIND_CREATE_TABLE => {
                let name = get_str(buf, "table name")?;
                need(buf, 4, "field count")?;
                let nfields = buf.get_u32_le() as usize;
                let mut fields = Vec::with_capacity(nfields.min(1024));
                for _ in 0..nfields {
                    let fname = get_str(buf, "field name")?;
                    let ftype = get_str(buf, "field type")?;
                    fields.push((fname, ftype));
                }
                let primary_key = get_str(buf, "primary key")?;
                need(buf, 4, "partition count")?;
                let partitions = buf.get_u32_le();
                WalRecord::CreateTable {
                    name,
                    fields,
                    primary_key,
                    partitions,
                }
            }
            KIND_DROP_TABLE => WalRecord::DropTable {
                name: get_str(buf, "table name")?,
            },
            KIND_APPEND => {
                let table = get_str(buf, "table name")?;
                need(buf, 4, "row count")?;
                let nrows = buf.get_u32_le() as usize;
                let mut rows = Vec::with_capacity(nrows.min(4096));
                for _ in 0..nrows {
                    rows.push(wire::decode_row(buf)?);
                }
                WalRecord::Append { table, rows }
            }
            KIND_CREATE_JOIN => {
                let name = get_str(buf, "join name")?;
                let library = get_str(buf, "library")?;
                let class = get_str(buf, "class")?;
                need(buf, 4, "arg count")?;
                let nargs = buf.get_u32_le() as usize;
                let mut arg_types = Vec::with_capacity(nargs.min(64));
                for _ in 0..nargs {
                    arg_types.push(get_str(buf, "arg type")?);
                }
                let policy = get_str(buf, "guard policy")?;
                need(buf, 8 * 5 + 1, "guard limits")?;
                let guard = GuardSpec {
                    policy,
                    call_budget_ms: buf.get_u64_le(),
                    max_pplan_bytes: buf.get_u64_le(),
                    max_buckets_per_key: buf.get_u64_le(),
                    max_assign_fanout: buf.get_u64_le(),
                    check_sample: buf.get_u64_le(),
                };
                let memory_budget_rows = match buf.get_u8() {
                    0 => None,
                    1 => {
                        need(buf, 8, "memory budget")?;
                        Some(buf.get_u64_le())
                    }
                    other => {
                        return Err(FudjError::Wire(format!(
                            "bad memory-budget tag {other} in join spec"
                        )))
                    }
                };
                WalRecord::CreateJoin(JoinSpec {
                    name,
                    library,
                    class,
                    arg_types,
                    guard,
                    memory_budget_rows,
                })
            }
            KIND_DROP_JOIN => WalRecord::DropJoin {
                name: get_str(buf, "join name")?,
            },
            KIND_QUERY_SUBMITTED => {
                need(buf, 8, "query fingerprint")?;
                let fingerprint = buf.get_u64_le();
                let sql = get_str(buf, "query sql")?;
                need(buf, 4, "option count")?;
                let nopts = buf.get_u32_le() as usize;
                let mut options = Vec::with_capacity(nopts.min(64));
                for _ in 0..nopts {
                    let key = get_str(buf, "option key")?;
                    let value = get_str(buf, "option value")?;
                    options.push((key, value));
                }
                WalRecord::QuerySubmitted {
                    fingerprint,
                    sql,
                    options,
                }
            }
            KIND_STAGE_COMMITTED => {
                need(buf, 8, "query fingerprint")?;
                let fingerprint = buf.get_u64_le();
                let stage = get_str(buf, "stage name")?;
                need(buf, 4, "counter count")?;
                let ncounters = buf.get_u32_le() as usize;
                let mut counters = Vec::with_capacity(ncounters.min(256));
                for _ in 0..ncounters {
                    let name = get_str(buf, "counter name")?;
                    need(buf, 8, "counter value")?;
                    counters.push((name, buf.get_u64_le()));
                }
                need(buf, 4, "phase count")?;
                let nphases = buf.get_u32_le() as usize;
                let mut phases = Vec::with_capacity(nphases.min(64));
                for _ in 0..nphases {
                    phases.push(get_str(buf, "phase name")?);
                }
                WalRecord::StageCommitted {
                    fingerprint,
                    stage,
                    counters,
                    phases,
                }
            }
            KIND_QUERY_FINISHED => {
                need(buf, 8, "query fingerprint")?;
                WalRecord::QueryFinished {
                    fingerprint: buf.get_u64_le(),
                }
            }
            other => {
                return Err(FudjError::Wire(format!("unknown log record kind {other}")));
            }
        })
    }
}

/// Encode one framed record: `len | seq ++ kind ++ payload | crc`.
pub fn encode_frame(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(64);
    body.put_u64_le(seq);
    record.encode_payload(&mut body);
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Outcome of replaying one WAL segment's bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WalReplay {
    /// Decoded `(seq, record)` pairs of the committed prefix, in order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset just past the last valid frame — the length the file
    /// should be truncated to when `torn_tail` is set.
    pub valid_len: u64,
    /// A trailing partial/corrupt region was dropped.
    pub torn_tail: bool,
    /// Mid-file frames whose checksum failed but where a later valid
    /// frame resynced the scan (skipped, counted, never decoded).
    pub quarantined: u64,
}

/// Whether a plausible, checksum-valid frame starts at `off`. Returns the
/// offset just past it when valid.
fn frame_at(bytes: &[u8], off: usize) -> Option<usize> {
    let rest = &bytes[off..];
    if rest.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if !(9..=MAX_FRAME).contains(&len) || rest.len() < 4 + len + 4 {
        return None;
    }
    let body = &rest[4..4 + len];
    let stored = u32::from_le_bytes([
        rest[4 + len],
        rest[4 + len + 1],
        rest[4 + len + 2],
        rest[4 + len + 3],
    ]);
    (crc32(body) == stored).then_some(off + 4 + len + 4)
}

/// Replay one segment's bytes back into records, restoring the committed
/// prefix and classifying everything else as torn tail or quarantined
/// corruption (see module docs). Never panics on any input.
pub fn replay_wal(bytes: &[u8]) -> WalReplay {
    let mut out = WalReplay::default();
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // Header torn or corrupt: nothing is trustworthy. An empty or
        // short file is a torn header write; a wrong magic is corruption.
        out.torn_tail = true;
        if bytes.len() >= WAL_MAGIC.len() {
            out.quarantined = 1;
        }
        return out;
    }
    let mut off = WAL_MAGIC.len();
    out.valid_len = off as u64;
    while off < bytes.len() {
        match frame_at(bytes, off) {
            Some(end) => {
                let len = u32::from_le_bytes([
                    bytes[off],
                    bytes[off + 1],
                    bytes[off + 2],
                    bytes[off + 3],
                ]) as usize;
                let mut body = Bytes::from(&bytes[off + 4..off + 4 + len]);
                let seq = body.get_u64_le();
                match WalRecord::decode_payload(&mut body) {
                    Ok(rec) => out.records.push((seq, rec)),
                    // Checksum valid but undecodable (e.g. a record kind
                    // from a future version): quarantine, keep scanning.
                    Err(_) => out.quarantined += 1,
                }
                off = end;
                out.valid_len = off as u64;
            }
            None => {
                // No valid frame here. Resync: if a valid frame starts
                // anywhere later, this region is mid-file corruption to
                // quarantine; otherwise it is the torn tail.
                match ((off + 1)..bytes.len()).find(|&o| frame_at(bytes, o).is_some()) {
                    Some(resync) => {
                        out.quarantined += 1;
                        off = resync;
                    }
                    None => {
                        out.torn_tail = true;
                        break;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Value;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "parks".into(),
                fields: vec![
                    ("id".into(), "bigint".into()),
                    ("loc".into(), "point".into()),
                ],
                primary_key: "id".into(),
                partitions: 4,
            },
            WalRecord::Append {
                table: "parks".into(),
                rows: vec![
                    Row::new(vec![Value::Int64(1), Value::str("a")]),
                    Row::new(vec![Value::Int64(2), Value::Null]),
                ],
            },
            WalRecord::CreateJoin(JoinSpec {
                name: "near".into(),
                library: "spatial".into(),
                class: "distance".into(),
                arg_types: vec!["point".into(), "point".into(), "double".into()],
                guard: GuardSpec {
                    policy: "quarantine".into(),
                    call_budget_ms: 100,
                    max_pplan_bytes: 1 << 20,
                    max_buckets_per_key: 64,
                    max_assign_fanout: 32,
                    check_sample: 7,
                },
                memory_budget_rows: Some(5000),
            }),
            WalRecord::DropJoin {
                name: "near".into(),
            },
            WalRecord::DropTable {
                name: "parks".into(),
            },
            WalRecord::QuerySubmitted {
                fingerprint: 0xfeed_beef_dead_cafe,
                sql: "SELECT COUNT(*) FROM parks p".into(),
                options: vec![
                    ("exec_mode".into(), "columnar".into()),
                    ("memory_budget_rows".into(), "64".into()),
                ],
            },
            WalRecord::StageCommitted {
                fingerprint: 0xfeed_beef_dead_cafe,
                stage: "join:combine".into(),
                counters: vec![
                    ("rows_shuffled".into(), 123),
                    ("bytes_shuffled".into(), 456),
                ],
                phases: vec!["summarize".into(), "divide".into()],
            },
            WalRecord::QueryFinished {
                fingerprint: 0xfeed_beef_dead_cafe,
            },
        ]
    }

    fn segment(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for (i, rec) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64 + 1, rec));
        }
        bytes
    }

    #[test]
    fn every_record_kind_round_trips() {
        let records = sample_records();
        let replay = replay_wal(&segment(&records));
        assert!(!replay.torn_tail);
        assert_eq!(replay.quarantined, 0);
        let back: Vec<WalRecord> = replay.records.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(back, records);
        let seqs: Vec<u64> = replay.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (1..=records.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_is_truncated_not_decoded() {
        let records = sample_records();
        let full = segment(&records);
        // Chop mid-way through the last frame.
        let cut = full.len() - 3;
        let replay = replay_wal(&full[..cut]);
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), records.len() - 1);
        assert!(replay.valid_len < cut as u64);
        // Replaying exactly the valid prefix is clean.
        let clean = replay_wal(&full[..replay.valid_len as usize]);
        assert!(!clean.torn_tail);
        assert_eq!(clean.records.len(), records.len() - 1);
    }

    #[test]
    fn mid_file_corruption_is_quarantined_with_resync() {
        let records = sample_records();
        let mut bytes = segment(&records);
        // Flip a bit inside the second frame's body (first frame is
        // magic + frame one; corrupt somewhere after that).
        let first_end = WAL_MAGIC.len() + encode_frame(1, &records[0]).len();
        bytes[first_end + 10] ^= 0x40;
        let replay = replay_wal(&bytes);
        assert_eq!(replay.quarantined, 1, "corrupt frame skipped");
        assert!(!replay.torn_tail, "later frames resync");
        assert_eq!(replay.records.len(), records.len() - 1);
        // The quarantined record is the append; everything else survives.
        assert!(replay
            .records
            .iter()
            .all(|(_, r)| !matches!(r, WalRecord::Append { .. })));
    }

    #[test]
    fn empty_and_garbage_files_never_panic() {
        assert_eq!(replay_wal(&[]).records.len(), 0);
        assert!(replay_wal(&[]).torn_tail);
        assert!(replay_wal(b"FUDJ").torn_tail, "short header is torn");
        let garbage = replay_wal(b"NOTMAGIC but quite a lot of garbage here");
        assert!(garbage.torn_tail);
        assert_eq!(garbage.quarantined, 1, "wrong magic is corruption");
        assert_eq!(garbage.records.len(), 0);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn data_types_round_trip_display() {
        for dt in [
            DataType::Null,
            DataType::Bool,
            DataType::Int64,
            DataType::Float64,
            DataType::String,
            DataType::Uuid,
            DataType::DateTime,
            DataType::Interval,
            DataType::Point,
            DataType::Polygon,
            DataType::List(Box::new(DataType::List(Box::new(DataType::Point)))),
        ] {
            assert_eq!(parse_data_type(&dt.to_string()).unwrap(), dt);
        }
        assert!(parse_data_type("varchar").is_err());
        assert!(parse_data_type("list<varchar>").is_err());
    }
}
