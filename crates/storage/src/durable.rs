//! The durable store: WAL + snapshots + crash recovery, behind one handle.
//!
//! A [`DurableStore`] owns one directory laid out as:
//!
//! ```text
//! MANIFEST                     -- checksummed pointer to the live version
//! snapshot-{v:010}.fsnap       -- atomic state image covering seqs ≤ its last_seq
//! wal-{v:010}.flog             -- records appended since snapshot v
//! ```
//!
//! [`DurableStore::open`] runs the recovery state machine:
//!
//! 1. **locate** — read the manifest; if missing/corrupt (counted), fall
//!    back to scanning the directory for the newest checksum-valid
//!    snapshot;
//! 2. **load** — decode that snapshot; corruption quarantines it (counted)
//!    and falls back to the next older valid one, else the empty state;
//! 3. **replay** — decode every WAL segment at or above the loaded
//!    version, merge records by sequence number, and apply those past the
//!    snapshot's `last_seq`; torn tails are *physically truncated*,
//!    corrupt frames and inconsistent records (duplicate DDL, appends to
//!    unknown tables, width-mismatched rows) are quarantined and counted
//!    — recovery never fails open and never panics.
//!
//! Every counter lands in [`DurabilityStats`], which the session stamps
//! into `MetricsSnapshot` so `\metrics` and the differential fingerprints
//! see durability work.

use crate::faultfs::Vfs;
use crate::snapshot::{
    decode_manifest, decode_snapshot, encode_manifest, encode_snapshot, parse_versioned,
    snapshot_name, wal_name, SnapshotState, SnapshotTable, MANIFEST_NAME,
};
use crate::wal::{encode_frame, replay_wal, JoinSpec, WalRecord, WAL_MAGIC};
use fudj_types::Result;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Lifetime durability counters for one store (plus the fault layer's
/// injection counts). Deterministic per seed and operation sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended.
    pub wal_records_appended: u64,
    /// WAL bytes appended (framing included — comparable to shuffle and
    /// checkpoint byte meters).
    pub wal_bytes_appended: u64,
    /// Fsyncs issued against the WAL.
    pub wal_fsyncs: u64,
    /// Fsyncs the (simulated) disk silently dropped.
    pub fsyncs_dropped: u64,
    /// Snapshots committed.
    pub snapshots_written: u64,
    /// Snapshot bytes written.
    pub snapshot_bytes_written: u64,
    /// WAL records replayed during recovery.
    pub wal_records_replayed: u64,
    /// Table rows restored via replayed appends.
    pub rows_replayed: u64,
    /// WAL tails physically truncated as torn.
    pub torn_tails_truncated: u64,
    /// Corrupt WAL frames skipped (checksum failure with resync).
    pub corrupt_records_quarantined: u64,
    /// Corrupt snapshot/manifest artifacts set aside during recovery.
    pub corrupt_snapshots_quarantined: u64,
    /// Replayed records dropped as inconsistent (duplicate DDL, appends
    /// to unknown tables, width-mismatched rows).
    pub replay_quarantined: u64,
    /// Query-journal records appended (`QuerySubmitted` /
    /// `StageCommitted` / `QueryFinished`).
    pub journal_records_appended: u64,
    /// Query-journal records recovered during replay.
    pub journal_records_replayed: u64,
    /// Storage faults injected by the fault layer (bit flips + dropped
    /// fsyncs + simulated crashes).
    pub faults_injected: u64,
}

impl DurabilityStats {
    /// Whether any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != DurabilityStats::default()
    }
}

/// State handed back by [`DurableStore::open`]: the committed prefix the
/// directory proves.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveredState {
    /// Tables in creation order, rows included.
    pub tables: Vec<SnapshotTable>,
    /// Registered joins in creation order.
    pub joins: Vec<JoinSpec>,
    /// Query-journal records (`QuerySubmitted` / `StageCommitted` /
    /// `QueryFinished`) in sequence order. The session folds these into
    /// pending queries and resumes the unfinished ones; journal records
    /// are never part of the table/join state above.
    pub journal: Vec<(u64, WalRecord)>,
}

impl RecoveredState {
    fn table_mut(&mut self, name: &str) -> Option<&mut SnapshotTable> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Apply one replayed record. Returns rows restored, or `Err(())` when
    /// the record is inconsistent with the state built so far (the caller
    /// quarantines it).
    fn apply(
        &mut self,
        rec: WalRecord,
        quarantined_rows: &mut u64,
    ) -> std::result::Result<u64, ()> {
        match rec {
            WalRecord::CreateTable {
                name,
                fields,
                primary_key,
                partitions,
            } => {
                if self.table_mut(&name).is_some() {
                    return Err(());
                }
                self.tables.push(SnapshotTable {
                    name,
                    fields,
                    primary_key,
                    partitions,
                    rows: Vec::new(),
                });
                Ok(0)
            }
            WalRecord::DropTable { name } => {
                let before = self.tables.len();
                self.tables.retain(|t| t.name != name);
                if self.tables.len() == before {
                    return Err(());
                }
                Ok(0)
            }
            WalRecord::Append { table, rows } => {
                let Some(t) = self.table_mut(&table) else {
                    return Err(());
                };
                let width = t.fields.len();
                let mut restored = 0;
                for row in rows {
                    if row.len() == width {
                        t.rows.push(row);
                        restored += 1;
                    } else {
                        *quarantined_rows += 1;
                    }
                }
                Ok(restored)
            }
            WalRecord::CreateJoin(spec) => {
                if self.joins.iter().any(|j| j.name == spec.name) {
                    return Err(());
                }
                self.joins.push(spec);
                Ok(0)
            }
            WalRecord::DropJoin { name } => {
                let before = self.joins.len();
                self.joins.retain(|j| j.name != name);
                if self.joins.len() == before {
                    return Err(());
                }
                Ok(0)
            }
            // Journal records are routed into `journal` before apply();
            // reaching here means a caller bug, so quarantine rather than
            // corrupt table/join state.
            WalRecord::QuerySubmitted { .. }
            | WalRecord::StageCommitted { .. }
            | WalRecord::QueryFinished { .. } => Err(()),
        }
    }
}

/// One stage boundary a pending query durably committed.
#[derive(Clone, Debug, PartialEq)]
pub struct CommittedStage {
    /// Stage name (`join:partition`, `join:combine`, `agg:shuffle`).
    pub stage: String,
    /// Flattened logical counters at the boundary.
    pub counters: Vec<(String, u64)>,
    /// Phase names completed before the boundary, in order.
    pub phases: Vec<String>,
}

/// A journaled query that never logged `QueryFinished` — the resume
/// protocol's unit of work after a crash.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingQuery {
    /// Stable statement fingerprint.
    pub fingerprint: u64,
    /// The statement text, verbatim.
    pub sql: String,
    /// `(knob, value)` pairs to re-apply before re-planning.
    pub options: Vec<(String, String)>,
    /// Committed stage boundaries in commit order (deduped by stage —
    /// a second crash during resume re-commits the same boundary).
    pub committed: Vec<CommittedStage>,
}

/// Fold replayed journal records into the set of still-pending queries:
/// `QuerySubmitted` opens one (idempotently — a resume re-submits under
/// the same fingerprint), `StageCommitted` appends a boundary (deduped by
/// stage name), `QueryFinished` closes it. Orphan records whose
/// submission was compacted away by a snapshot are dropped — a documented
/// limitation, never an error.
pub fn fold_journal(records: &[(u64, WalRecord)]) -> Vec<PendingQuery> {
    let mut pending: Vec<PendingQuery> = Vec::new();
    for (_, rec) in records {
        match rec {
            WalRecord::QuerySubmitted {
                fingerprint,
                sql,
                options,
            } if !pending.iter().any(|p| p.fingerprint == *fingerprint) => {
                pending.push(PendingQuery {
                    fingerprint: *fingerprint,
                    sql: sql.clone(),
                    options: options.clone(),
                    committed: Vec::new(),
                });
            }
            WalRecord::StageCommitted {
                fingerprint,
                stage,
                counters,
                phases,
            } => {
                if let Some(p) = pending.iter_mut().find(|p| p.fingerprint == *fingerprint) {
                    if !p.committed.iter().any(|c| &c.stage == stage) {
                        p.committed.push(CommittedStage {
                            stage: stage.clone(),
                            counters: counters.clone(),
                            phases: phases.clone(),
                        });
                    }
                }
            }
            WalRecord::QueryFinished { fingerprint } => {
                pending.retain(|p| p.fingerprint != *fingerprint);
            }
            _ => {}
        }
    }
    pending
}

struct Inner {
    version: u64,
    wal_path: PathBuf,
    next_seq: u64,
    /// Fsync after every N appended records; 0 = never (the OS decides).
    sync_every: u64,
    appends_since_sync: u64,
    stats: DurabilityStats,
}

/// Crash-consistent persistence for the engine's catalog, tables, and
/// registered joins. See the module docs for the protocol.
pub struct DurableStore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("version", &inner.version)
            .field("next_seq", &inner.next_seq)
            .finish()
    }
}

impl DurableStore {
    /// Open (or create) a durable directory and recover its committed
    /// prefix. Unwritable directories fail with a clean
    /// [`FudjError::Storage`]; corrupt artifacts are quarantined, never
    /// fatal.
    pub fn open(
        dir: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(DurableStore, RecoveredState)> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        // Writability probe: fail now with a clean error, not on the
        // first append mid-transaction.
        let probe = dir.join(".fudj-probe");
        vfs.write_file(&probe, b"probe")?;
        vfs.remove(&probe)?;

        let mut stats = DurabilityStats::default();
        let names = vfs.list(&dir)?;
        let snapshot_versions: Vec<u64> = {
            let mut v: Vec<u64> = names
                .iter()
                .filter_map(|n| parse_versioned(n, "snapshot-", ".fsnap"))
                .collect();
            v.sort_unstable();
            v
        };

        // 1. locate: manifest, else newest valid snapshot, else empty.
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest_version = if vfs.exists(&manifest_path) {
            match vfs.read(&manifest_path).and_then(|b| decode_manifest(&b)) {
                Ok(v) => Some(v),
                Err(_) => {
                    stats.corrupt_snapshots_quarantined += 1;
                    None
                }
            }
        } else {
            None
        };

        // 2. load: try the manifest's snapshot, then fall back down the
        // directory scan.
        let mut base = SnapshotState::default();
        let mut version = manifest_version.unwrap_or(0);
        let mut candidates: Vec<u64> = snapshot_versions.clone();
        if let Some(mv) = manifest_version {
            candidates.retain(|&v| v <= mv);
        }
        while let Some(v) = candidates.pop() {
            let path = dir.join(snapshot_name(v));
            match vfs.read(&path).and_then(|b| decode_snapshot(&b)) {
                Ok(state) => {
                    base = state;
                    version = version.max(v);
                    if manifest_version.is_none() {
                        version = v;
                    }
                    break;
                }
                Err(_) => stats.corrupt_snapshots_quarantined += 1,
            }
        }

        // 3. replay every segment at or above the loaded version, merged
        // by sequence number.
        let mut recovered = RecoveredState {
            tables: base.tables,
            joins: base.joins,
            journal: Vec::new(),
        };
        let mut last_seq = base.last_seq;
        let mut wal_versions: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_versioned(n, "wal-", ".flog"))
            .filter(|&v| v >= version)
            .collect();
        wal_versions.sort_unstable();
        let mut merged: Vec<(u64, WalRecord)> = Vec::new();
        for &wv in &wal_versions {
            let path = dir.join(wal_name(wv));
            let bytes = vfs.read(&path)?;
            let replay = replay_wal(&bytes);
            stats.corrupt_records_quarantined += replay.quarantined;
            if replay.torn_tail {
                stats.torn_tails_truncated += 1;
                vfs.truncate(&path, replay.valid_len)?;
                if replay.valid_len < WAL_MAGIC.len() as u64 {
                    // The header itself was torn: restart the segment.
                    vfs.truncate(&path, 0)?;
                    vfs.append(&path, WAL_MAGIC)?;
                }
            }
            merged.extend(replay.records);
        }
        merged.sort_by_key(|(seq, _)| *seq);
        let mut quarantined_rows = 0u64;
        for (seq, rec) in merged {
            if seq <= base.last_seq {
                continue;
            }
            if matches!(
                rec,
                WalRecord::QuerySubmitted { .. }
                    | WalRecord::StageCommitted { .. }
                    | WalRecord::QueryFinished { .. }
            ) {
                // Journal records bypass table/join state: the session
                // folds them into pending queries for resume.
                stats.wal_records_replayed += 1;
                stats.journal_records_replayed += 1;
                recovered.journal.push((seq, rec));
                last_seq = last_seq.max(seq);
                continue;
            }
            match recovered.apply(rec, &mut quarantined_rows) {
                Ok(rows) => {
                    stats.wal_records_replayed += 1;
                    stats.rows_replayed += rows;
                }
                Err(()) => stats.replay_quarantined += 1,
            }
            last_seq = last_seq.max(seq);
        }
        stats.replay_quarantined += quarantined_rows;

        // The live segment is the newest one; create it if the directory
        // is fresh.
        let current = wal_versions.last().copied().unwrap_or(version);
        let wal_path = dir.join(wal_name(current));
        if !vfs.exists(&wal_path) {
            vfs.write_file(&wal_path, WAL_MAGIC)?;
            vfs.sync(&wal_path)?;
        }

        let store = DurableStore {
            vfs,
            dir,
            inner: Mutex::new(Inner {
                version: current.max(version),
                wal_path,
                next_seq: last_seq + 1,
                sync_every: 1,
                appends_since_sync: 0,
                stats,
            }),
        };
        Ok((store, recovered))
    }

    /// Directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem this store writes through. The durable checkpoint
    /// tier shares it so one fault plan covers WAL and checkpoints alike.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        self.vfs.clone()
    }

    /// Current snapshot/segment version.
    pub fn version(&self) -> u64 {
        self.inner.lock().version
    }

    /// Set the fsync cadence: 1 = after every record (full durability),
    /// N = every N records, 0 = never (leave it to the OS).
    pub fn set_sync_every(&self, n: u64) {
        let mut inner = self.inner.lock();
        inner.sync_every = n;
        inner.appends_since_sync = 0;
    }

    /// Current fsync cadence.
    pub fn sync_every(&self) -> u64 {
        self.inner.lock().sync_every
    }

    /// Append one record to the WAL (log-before-apply: callers invoke
    /// this *before* mutating in-memory state).
    pub fn append(&self, record: &WalRecord) -> Result<()> {
        let mut inner = self.inner.lock();
        let frame = encode_frame(inner.next_seq, record);
        self.vfs.append(&inner.wal_path, &frame)?;
        self.vfs.crash_site("wal:append")?;
        inner.next_seq += 1;
        inner.stats.wal_records_appended += 1;
        inner.stats.wal_bytes_appended += frame.len() as u64;
        inner.appends_since_sync += 1;
        if inner.sync_every > 0 && inner.appends_since_sync >= inner.sync_every {
            self.vfs.sync(&inner.wal_path)?;
            self.vfs.crash_site("wal:sync")?;
            inner.stats.wal_fsyncs += 1;
            inner.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Append one query-journal record and force it durable regardless of
    /// the fsync cadence (a stage boundary only counts as committed once
    /// its journal record is on disk), then pass through the named crash
    /// site so the restart harness can kill the process exactly here.
    pub fn append_journal(&self, record: &WalRecord, site: &str) -> Result<()> {
        self.append(record)?;
        self.flush()?;
        self.inner.lock().stats.journal_records_appended += 1;
        self.vfs.crash_site(site)?;
        Ok(())
    }

    /// Flush any unsynced WAL bytes.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.appends_since_sync > 0 {
            self.vfs.sync(&inner.wal_path)?;
            self.vfs.crash_site("wal:sync")?;
            inner.stats.wal_fsyncs += 1;
            inner.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Commit an atomic snapshot of `state`, rotate the WAL, advance the
    /// manifest, and clean up superseded files. Crash points fire after
    /// every step (see `snapshot.rs` module docs for the protocol).
    pub fn snapshot(&self, state: &SnapshotState) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut state = state.clone();
        // The snapshot covers everything logged so far.
        state.last_seq = inner.next_seq - 1;
        let next = inner.version + 1;
        let bytes = encode_snapshot(&state);

        // 1-3: snapshot write-temp → fsync → rename.
        let tmp = self.dir.join(format!("{}.tmp", snapshot_name(next)));
        let dst = self.dir.join(snapshot_name(next));
        self.vfs.write_file(&tmp, &bytes)?;
        self.vfs.crash_site("snapshot:write")?;
        self.vfs.sync(&tmp)?;
        self.vfs.crash_site("snapshot:sync")?;
        self.vfs.rename(&tmp, &dst)?;
        self.vfs.crash_site("snapshot:rename")?;

        // 4: fresh WAL segment for records after the snapshot.
        let new_wal = self.dir.join(wal_name(next));
        self.vfs.write_file(&new_wal, WAL_MAGIC)?;
        self.vfs.sync(&new_wal)?;
        self.vfs.crash_site("wal:rotate")?;

        // 5: manifest advance — the commit point.
        let man_tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        let man = self.dir.join(MANIFEST_NAME);
        self.vfs.write_file(&man_tmp, &encode_manifest(next))?;
        self.vfs.crash_site("manifest:write")?;
        self.vfs.sync(&man_tmp)?;
        self.vfs.rename(&man_tmp, &man)?;
        self.vfs.crash_site("manifest:rename")?;

        // 6: superseded segments and snapshots are garbage now.
        let old_version = inner.version;
        let old_wal = std::mem::replace(&mut inner.wal_path, new_wal);
        inner.version = next;
        inner.appends_since_sync = 0;
        inner.stats.snapshots_written += 1;
        inner.stats.snapshot_bytes_written += bytes.len() as u64;
        self.vfs.remove(&old_wal)?;
        for name in self.vfs.list(&self.dir)? {
            let stale_snap =
                parse_versioned(&name, "snapshot-", ".fsnap").is_some_and(|v| v < next);
            let stale_wal = parse_versioned(&name, "wal-", ".flog").is_some_and(|v| v < next);
            if stale_snap || stale_wal || name == format!("{}.tmp", snapshot_name(old_version)) {
                self.vfs.remove(&self.dir.join(name))?;
            }
        }
        self.vfs.crash_site("compact:cleanup")?;
        Ok(())
    }

    /// Lifetime durability counters, with the fault layer's injection
    /// counts folded in.
    pub fn stats(&self) -> DurabilityStats {
        let mut stats = self.inner.lock().stats;
        let faults = self.vfs.fault_counters();
        stats.fsyncs_dropped = faults.fsyncs_dropped;
        stats.faults_injected = faults.bit_flips + faults.fsyncs_dropped + faults.crashes;
        stats
    }
}

/// Every named crash point the durability protocol passes through, in
/// protocol order. The crash-restart harness iterates this list; DESIGN.md
/// §13 documents each site.
pub const CRASH_POINTS: &[&str] = &[
    "wal:append",
    "wal:sync",
    "snapshot:write",
    "snapshot:sync",
    "snapshot:rename",
    "wal:rotate",
    "manifest:write",
    "manifest:rename",
    "compact:cleanup",
];

/// Crash points specific to the query journal + durable checkpoint tier,
/// in the order a journaled query passes through them. Kept separate from
/// [`CRASH_POINTS`] so the ingest/DDL crash harness stays unchanged; the
/// whole-process restart harness (`tests/restart_differential.rs`)
/// iterates both lists as `\chaos crash` sites.
pub const QUERY_CRASH_POINTS: &[&str] = &[
    "journal:submit",
    "checkpoint:write",
    "checkpoint:sync",
    "journal:stage",
    "journal:finish",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultfs::{FaultFs, StorageFaultConfig};
    use fudj_types::{FudjError, Row, Value};

    fn create(name: &str) -> WalRecord {
        WalRecord::CreateTable {
            name: name.into(),
            fields: vec![
                ("id".into(), "bigint".into()),
                ("tag".into(), "string".into()),
            ],
            primary_key: "id".into(),
            partitions: 2,
        }
    }

    fn append(table: &str, ids: std::ops::Range<i64>) -> WalRecord {
        WalRecord::Append {
            table: table.into(),
            rows: ids
                .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("r{i}"))]))
                .collect(),
        }
    }

    fn dir() -> PathBuf {
        PathBuf::from("/durable")
    }

    #[test]
    fn fresh_open_then_reopen_recovers_everything() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(1));
        let (store, recovered) = DurableStore::open(dir(), fs.clone()).unwrap();
        assert!(recovered.tables.is_empty());
        store.append(&create("t")).unwrap();
        store.append(&append("t", 0..5)).unwrap();
        drop(store);
        let (store, recovered) = DurableStore::open(dir(), fs).unwrap();
        assert_eq!(recovered.tables.len(), 1);
        assert_eq!(recovered.tables[0].rows.len(), 5);
        let stats = store.stats();
        assert_eq!(stats.wal_records_replayed, 2);
        assert_eq!(stats.rows_replayed, 5);
        assert_eq!(stats.torn_tails_truncated, 0);
    }

    #[test]
    fn snapshot_compacts_and_recovery_resumes_past_it() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(2));
        let (store, _) = DurableStore::open(dir(), fs.clone()).unwrap();
        store.append(&create("t")).unwrap();
        store.append(&append("t", 0..10)).unwrap();
        let state = SnapshotState {
            last_seq: 0, // overwritten by snapshot()
            joins: vec![],
            tables: vec![SnapshotTable {
                name: "t".into(),
                fields: vec![
                    ("id".into(), "bigint".into()),
                    ("tag".into(), "string".into()),
                ],
                primary_key: "id".into(),
                partitions: 2,
                rows: (0..10)
                    .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("r{i}"))]))
                    .collect(),
            }],
        };
        store.snapshot(&state).unwrap();
        assert_eq!(store.version(), 1);
        // Post-snapshot appends land in the rotated segment.
        store.append(&append("t", 10..12)).unwrap();
        drop(store);
        let (store, recovered) = DurableStore::open(dir(), fs.clone()).unwrap();
        assert_eq!(recovered.tables[0].rows.len(), 12);
        // Only the snapshot's two appended rows were replayed from WAL.
        assert_eq!(store.stats().rows_replayed, 2);
        // Old segment and old snapshots were compacted away.
        let names = fs.list(&dir()).unwrap();
        assert!(names.contains(&MANIFEST_NAME.to_string()));
        assert!(names.contains(&snapshot_name(1)));
        assert!(names.contains(&wal_name(1)));
        assert_eq!(names.len(), 3, "{names:?}");
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(3));
        let (store, _) = DurableStore::open(dir(), fs.clone()).unwrap();
        store.append(&create("t")).unwrap();
        store.append(&append("t", 0..4)).unwrap();
        drop(store);
        // Tear the tail by hand: chop bytes off the live segment.
        let wal = dir().join(wal_name(0));
        let len = fs.read(&wal).unwrap().len();
        fs.truncate(&wal, len as u64 - 3).unwrap();
        let (store, recovered) = DurableStore::open(dir(), fs.clone()).unwrap();
        assert_eq!(recovered.tables.len(), 1);
        assert!(recovered.tables[0].rows.is_empty(), "torn append dropped");
        assert_eq!(store.stats().torn_tails_truncated, 1);
        // The file is physically clean now: append + reopen works.
        store.append(&append("t", 0..2)).unwrap();
        drop(store);
        let (store, recovered) = DurableStore::open(dir(), fs).unwrap();
        assert_eq!(recovered.tables[0].rows.len(), 2);
        assert_eq!(store.stats().torn_tails_truncated, 0);
    }

    #[test]
    fn crash_at_every_point_recovers_a_committed_prefix() {
        for &site in CRASH_POINTS {
            let fs = FaultFs::new(StorageFaultConfig::crash_at(7, site, 1));
            let (store, _) = DurableStore::open(dir(), fs.clone()).unwrap();
            let mut crashed = store.append(&create("t")).is_err();
            if !crashed {
                crashed |= store.append(&append("t", 0..6)).is_err();
            }
            if !crashed {
                let state = SnapshotState {
                    last_seq: 0,
                    joins: vec![],
                    tables: vec![SnapshotTable {
                        name: "t".into(),
                        fields: vec![
                            ("id".into(), "bigint".into()),
                            ("tag".into(), "string".into()),
                        ],
                        primary_key: "id".into(),
                        partitions: 2,
                        rows: (0..6)
                            .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("r{i}"))]))
                            .collect(),
                    }],
                };
                crashed |= store.snapshot(&state).is_err();
            }
            assert!(crashed, "crash point {site} never fired");
            drop(store);
            fs.reopen_after_crash();
            // Reopen must succeed and recover a consistent prefix: either
            // nothing, the table alone, or the table with all 6 rows.
            let (_store, recovered) = DurableStore::open(dir(), fs).unwrap();
            match recovered.tables.len() {
                0 => {}
                1 => {
                    let n = recovered.tables[0].rows.len();
                    assert!(
                        n == 0 || n == 6,
                        "{site}: partial append visible ({n} rows)"
                    );
                }
                n => panic!("{site}: {n} tables recovered"),
            }
        }
    }

    #[test]
    fn join_specs_round_trip_through_recovery() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(4));
        let (store, _) = DurableStore::open(dir(), fs.clone()).unwrap();
        let spec = JoinSpec {
            name: "near".into(),
            library: "spatial".into(),
            class: "distance".into(),
            arg_types: vec!["point".into(), "point".into(), "double".into()],
            guard: crate::wal::GuardSpec {
                policy: "fallback".into(),
                call_budget_ms: 9,
                max_pplan_bytes: 512,
                max_buckets_per_key: 4,
                max_assign_fanout: 2,
                check_sample: 3,
            },
            memory_budget_rows: Some(100),
        };
        store.append(&WalRecord::CreateJoin(spec.clone())).unwrap();
        store
            .append(&WalRecord::CreateJoin(JoinSpec {
                name: "gone".into(),
                ..spec.clone()
            }))
            .unwrap();
        store
            .append(&WalRecord::DropJoin {
                name: "gone".into(),
            })
            .unwrap();
        drop(store);
        let (_store, recovered) = DurableStore::open(dir(), fs).unwrap();
        assert_eq!(recovered.joins, vec![spec]);
    }

    #[test]
    fn inconsistent_replay_is_quarantined_not_fatal() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(5));
        let (store, _) = DurableStore::open(dir(), fs.clone()).unwrap();
        store.append(&create("t")).unwrap();
        store.append(&create("t")).unwrap(); // duplicate DDL
        store.append(&append("ghost", 0..3)).unwrap(); // unknown table
        store
            .append(&WalRecord::Append {
                table: "t".into(),
                rows: vec![Row::new(vec![Value::Int64(1)])], // wrong width
            })
            .unwrap();
        drop(store);
        let (store, recovered) = DurableStore::open(dir(), fs).unwrap();
        assert_eq!(recovered.tables.len(), 1);
        assert!(recovered.tables[0].rows.is_empty());
        assert_eq!(store.stats().replay_quarantined, 3);
    }

    #[test]
    fn sync_cadence_batches_fsyncs() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(6));
        let (store, _) = DurableStore::open(dir(), fs).unwrap();
        store.set_sync_every(3);
        store.append(&create("t")).unwrap();
        store.append(&append("t", 0..1)).unwrap();
        assert_eq!(store.stats().wal_fsyncs, 0);
        store.append(&append("t", 1..2)).unwrap();
        assert_eq!(store.stats().wal_fsyncs, 1);
        store.append(&append("t", 2..3)).unwrap();
        store.flush().unwrap();
        assert_eq!(store.stats().wal_fsyncs, 2);
        store.flush().unwrap();
        assert_eq!(store.stats().wal_fsyncs, 2, "flush with nothing pending");
    }

    #[test]
    fn corrupt_manifest_falls_back_to_directory_scan() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(8));
        let (store, _) = DurableStore::open(dir(), fs.clone()).unwrap();
        store.append(&create("t")).unwrap();
        store.append(&append("t", 0..3)).unwrap();
        let state = SnapshotState {
            last_seq: 0,
            joins: vec![],
            tables: vec![SnapshotTable {
                name: "t".into(),
                fields: vec![
                    ("id".into(), "bigint".into()),
                    ("tag".into(), "string".into()),
                ],
                primary_key: "id".into(),
                partitions: 2,
                rows: (0..3)
                    .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("r{i}"))]))
                    .collect(),
            }],
        };
        store.snapshot(&state).unwrap();
        drop(store);
        // Corrupt the manifest in place.
        let man = dir().join(MANIFEST_NAME);
        let mut bytes = fs.read(&man).unwrap();
        bytes[10] ^= 0xFF;
        fs.write_file(&man, &bytes).unwrap();
        let (store, recovered) = DurableStore::open(dir(), fs).unwrap();
        assert_eq!(recovered.tables[0].rows.len(), 3);
        assert_eq!(store.stats().corrupt_snapshots_quarantined, 1);
    }

    #[test]
    fn unwritable_directory_is_a_clean_storage_error() {
        // A path nested under a regular *file* cannot be created — not
        // even by root (ENOTDIR), unlike a permissions-based setup.
        let blocker = std::env::temp_dir().join(format!("fudj-durable-ro-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let target = blocker.join("nested");
        let result = DurableStore::open(&target, Arc::new(crate::faultfs::DiskFs::new()));
        let _ = std::fs::remove_file(&blocker);
        match result {
            Err(FudjError::Storage(msg)) => assert!(!msg.is_empty()),
            other => panic!("expected Storage error, got {other:?}"),
        }
    }
}
