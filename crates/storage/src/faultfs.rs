//! Deterministic storage fault injection behind a small VFS seam.
//!
//! The durable store talks to disk through the [`Vfs`] trait so the same
//! WAL/snapshot protocol runs against two backends:
//!
//! * [`DiskFs`] — the real filesystem (production path for `SET wal_dir`);
//! * [`FaultFs`] — an in-memory model with the crash semantics real disks
//!   have: per file it tracks `synced_len` (bytes guaranteed by a
//!   completed fsync) next to `len`, and a simulated crash keeps the
//!   synced prefix plus a *seeded* prefix of the unsynced bytes — a torn
//!   write at byte granularity.
//!
//! Fault decisions follow the PR 2 discipline: every decision is a pure
//! hash of `(seed, salt, site, counter)` (SplitMix64 finalizer, domain
//! separated by salt), never a draw from a shared stream, so a given
//! [`StorageFaultConfig`] always yields the same torn bytes, the same
//! dropped fsyncs, the same bit flips. Named crash points
//! (`wal:append`, `snapshot:rename`, ...) fire through [`Vfs::crash_site`]
//! calls placed at every write site of the durability protocol; after a
//! crash the filesystem is poisoned until the harness calls
//! [`FaultFs::reopen_after_crash`], which plays the role of the process
//! restart.

use fudj_types::{FudjError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Domain-separation salts for the decision hash.
const SALT_BIT_FLIP: u64 = 0x5354_4F52_4249_5431; // "STORBIT1"
const SALT_FSYNC: u64 = 0x5354_4F52_5359_4E43; // "STORSYNC"
const SALT_TORN: u64 = 0x5354_4F52_544F_524E; // "STORTORN"
const SALT_FLIP_POS: u64 = 0x5354_4F52_504F_5331; // "STORPOS1"

/// SplitMix64 finalizer — the same mixing discipline `fudj_exec::fault`
/// uses for its site hashes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure decision word for `(seed, salt, a, b)`.
fn site_word(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    mix(seed ^ salt ^ mix(a).rotate_left(17) ^ mix(b).rotate_left(43))
}

/// Map a decision word to `[0, 1)` and compare against a probability.
fn happens(word: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    ((word >> 11) as f64 / (1u64 << 53) as f64) < prob
}

fn path_hash(path: &Path) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    path.hash(&mut h);
    h.finish()
}

/// Seeded fault schedule for the storage layer. Fully deterministic: two
/// runs with the same config and the same operation sequence inject the
/// same faults.
#[derive(Clone, Debug, PartialEq)]
pub struct StorageFaultConfig {
    /// Master seed for every decision hash.
    pub seed: u64,
    /// Probability an appended byte run gets one seeded bit flipped.
    pub bit_flip_prob: f64,
    /// Probability an fsync silently does nothing (the lying-disk model:
    /// it *claims* success but `synced_len` does not advance).
    pub drop_fsync_prob: f64,
    /// Crash on the `hit`-th execution (1-based) of the named site.
    pub crash_point: Option<(String, u64)>,
}

impl StorageFaultConfig {
    /// No faults at all.
    pub fn quiet(seed: u64) -> Self {
        StorageFaultConfig {
            seed,
            bit_flip_prob: 0.0,
            drop_fsync_prob: 0.0,
            crash_point: None,
        }
    }

    /// The `\chaos disk <seed>` profile: occasional bit flips and dropped
    /// fsyncs, no hard crash.
    pub fn chaos(seed: u64) -> Self {
        StorageFaultConfig {
            seed,
            bit_flip_prob: 0.02,
            drop_fsync_prob: 0.05,
            crash_point: None,
        }
    }

    /// Crash deterministically at the `hit`-th execution of `site`.
    pub fn crash_at(seed: u64, site: impl Into<String>, hit: u64) -> Self {
        StorageFaultConfig {
            seed,
            bit_flip_prob: 0.0,
            drop_fsync_prob: 0.0,
            crash_point: Some((site.into(), hit.max(1))),
        }
    }
}

/// Counters the fault layer feeds into `DurabilityStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VfsFaultCounters {
    /// Bit flips injected into appended bytes.
    pub bit_flips: u64,
    /// Fsyncs that silently did nothing.
    pub fsyncs_dropped: u64,
    /// Simulated crashes triggered.
    pub crashes: u64,
}

/// Minimal filesystem surface the durability protocol needs. Every
/// operation returns `FudjError::Storage` on real failures and
/// `FudjError::Crash` when the fault layer kills the "process".
pub trait Vfs: Send + Sync {
    /// Append bytes to a file (created if missing).
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()>;
    /// Create/overwrite a file with the given contents (no sync).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<()>;
    /// Flush a file's contents to stable storage.
    fn sync(&self, path: &Path) -> Result<()>;
    /// Atomically rename a file.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;
    /// File names (not paths) in a directory; missing directory is empty.
    fn list(&self, dir: &Path) -> Result<Vec<String>>;
    /// Truncate a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;
    /// Remove a file (missing file is not an error).
    fn remove(&self, path: &Path) -> Result<()>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Create a directory (and parents).
    fn create_dir_all(&self, dir: &Path) -> Result<()>;
    /// Named crash point: the protocol layer calls this at every write
    /// site; a real filesystem ignores it, the fault layer may kill the
    /// process here.
    fn crash_site(&self, _site: &str) -> Result<()> {
        Ok(())
    }
    /// Fault counters (zero for real filesystems).
    fn fault_counters(&self) -> VfsFaultCounters {
        VfsFaultCounters::default()
    }
}

// ---------------------------------------------------------------------------
// Real disk.
// ---------------------------------------------------------------------------

/// The real filesystem. Keeps append handles cached so WAL appends and
/// fsyncs reuse one descriptor.
#[derive(Default)]
pub struct DiskFs {
    handles: Mutex<HashMap<PathBuf, File>>,
}

impl DiskFs {
    /// A fresh real-disk backend.
    pub fn new() -> Self {
        DiskFs::default()
    }

    fn io_err(op: &str, path: &Path, e: std::io::Error) -> FudjError {
        FudjError::Storage(format!("{op} {}: {e}", path.display()))
    }

    fn with_handle<T>(
        &self,
        path: &Path,
        f: impl FnOnce(&mut File) -> std::io::Result<T>,
    ) -> Result<T> {
        let mut handles = self.handles.lock();
        if !handles.contains_key(path) {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| Self::io_err("open", path, e))?;
            handles.insert(path.to_owned(), file);
        }
        let file = handles.get_mut(path).expect("just inserted");
        f(file).map_err(|e| Self::io_err("write", path, e))
    }

    fn drop_handle(&self, path: &Path) {
        self.handles.lock().remove(path);
    }
}

impl Vfs for DiskFs {
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        self.with_handle(path, |f| f.write_all(bytes))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        self.drop_handle(path);
        std::fs::write(path, bytes).map_err(|e| Self::io_err("write", path, e))
    }

    fn sync(&self, path: &Path) -> Result<()> {
        // Sync through the cached append handle when one exists (the WAL
        // hot path); otherwise open read-only just to fsync.
        {
            let mut handles = self.handles.lock();
            if let Some(f) = handles.get_mut(path) {
                return f.sync_data().map_err(|e| Self::io_err("fsync", path, e));
            }
        }
        File::open(path)
            .and_then(|f| f.sync_data())
            .map_err(|e| Self::io_err("fsync", path, e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.drop_handle(from);
        self.drop_handle(to);
        std::fs::rename(from, to).map_err(|e| Self::io_err("rename", from, e))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        std::fs::read(path).map_err(|e| Self::io_err("read", path, e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Self::io_err("list", dir, e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Self::io_err("list", dir, e))?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        self.drop_handle(path);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| Self::io_err("open", path, e))?;
        file.set_len(len)
            .map_err(|e| Self::io_err("truncate", path, e))
    }

    fn remove(&self, path: &Path) -> Result<()> {
        self.drop_handle(path);
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io_err("remove", path, e)),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| Self::io_err("mkdir", dir, e))
    }
}

// ---------------------------------------------------------------------------
// Simulated disk with crash semantics.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct FileState {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (covered by a completed fsync).
    synced_len: usize,
}

/// In-memory filesystem with fsync-aware crash semantics and seeded fault
/// injection. See the module docs for the model.
pub struct FaultFs {
    files: Mutex<HashMap<PathBuf, FileState>>,
    cfg: Mutex<StorageFaultConfig>,
    /// Monotone operation counter feeding the probability hashes.
    ops: AtomicU64,
    /// Per-site execution counts for crash-point matching.
    site_hits: Mutex<HashMap<String, u64>>,
    crashed: AtomicBool,
    bit_flips: AtomicU64,
    fsyncs_dropped: AtomicU64,
    crashes: AtomicU64,
}

impl FaultFs {
    /// A fresh simulated disk under the given fault schedule.
    pub fn new(cfg: StorageFaultConfig) -> Arc<Self> {
        Arc::new(FaultFs {
            files: Mutex::new(HashMap::new()),
            cfg: Mutex::new(cfg),
            ops: AtomicU64::new(0),
            site_hits: Mutex::new(HashMap::new()),
            crashed: AtomicBool::new(false),
            bit_flips: AtomicU64::new(0),
            fsyncs_dropped: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
        })
    }

    /// Replace the fault schedule (takes effect for subsequent ops).
    pub fn set_config(&self, cfg: StorageFaultConfig) {
        *self.cfg.lock() = cfg;
    }

    /// Whether a simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Simulate the process restart after a crash: the poisoned flag
    /// clears, the crash point is disarmed (it already fired), and the
    /// surviving bytes are whatever the crash left behind.
    pub fn reopen_after_crash(&self) {
        self.crashed.store(false, Ordering::SeqCst);
        self.cfg.lock().crash_point = None;
    }

    fn guard(&self) -> Result<()> {
        if self.crashed() {
            return Err(FudjError::Crash("filesystem is down after crash".into()));
        }
        Ok(())
    }

    /// Kill the "process": every file keeps its synced prefix plus a
    /// seeded prefix of its unsynced bytes (the torn write).
    fn crash(&self, site: &str) -> FudjError {
        let seed = self.cfg.lock().seed;
        let crash_no = self.crashes.fetch_add(1, Ordering::SeqCst);
        let mut files = self.files.lock();
        for (path, state) in files.iter_mut() {
            let unsynced = state.data.len().saturating_sub(state.synced_len);
            let keep = if unsynced == 0 {
                0
            } else {
                (site_word(seed, SALT_TORN, path_hash(path), crash_no) % (unsynced as u64 + 1))
                    as usize
            };
            state.data.truncate(state.synced_len + keep);
        }
        self.crashed.store(true, Ordering::SeqCst);
        FudjError::Crash(format!("injected crash at {site}"))
    }

    /// Current fault counters.
    pub fn counters(&self) -> VfsFaultCounters {
        VfsFaultCounters {
            bit_flips: self.bit_flips.load(Ordering::SeqCst),
            fsyncs_dropped: self.fsyncs_dropped.load(Ordering::SeqCst),
            crashes: self.crashes.load(Ordering::SeqCst),
        }
    }
}

impl Vfs for FaultFs {
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        self.guard()?;
        let (seed, flip_prob) = {
            let cfg = self.cfg.lock();
            (cfg.seed, cfg.bit_flip_prob)
        };
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let mut written = bytes.to_vec();
        if !written.is_empty()
            && happens(
                site_word(seed, SALT_BIT_FLIP, path_hash(path), op),
                flip_prob,
            )
        {
            let pos_word = site_word(seed, SALT_FLIP_POS, path_hash(path), op);
            let bit = (pos_word % (written.len() as u64 * 8)) as usize;
            written[bit / 8] ^= 1 << (bit % 8);
            self.bit_flips.fetch_add(1, Ordering::SeqCst);
        }
        self.files
            .lock()
            .entry(path.to_owned())
            .or_default()
            .data
            .extend_from_slice(&written);
        Ok(())
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        self.guard()?;
        let mut files = self.files.lock();
        let state = files.entry(path.to_owned()).or_default();
        state.data = bytes.to_vec();
        state.synced_len = 0;
        Ok(())
    }

    fn sync(&self, path: &Path) -> Result<()> {
        self.guard()?;
        let (seed, drop_prob) = {
            let cfg = self.cfg.lock();
            (cfg.seed, cfg.drop_fsync_prob)
        };
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if happens(site_word(seed, SALT_FSYNC, path_hash(path), op), drop_prob) {
            // The lying disk: claims success, durability not advanced.
            self.fsyncs_dropped.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        if let Some(state) = self.files.lock().get_mut(path) {
            state.synced_len = state.data.len();
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.guard()?;
        let mut files = self.files.lock();
        let state = files.remove(from).ok_or_else(|| {
            FudjError::Storage(format!("rename: {} does not exist", from.display()))
        })?;
        files.insert(to.to_owned(), state);
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        self.guard()?;
        self.files
            .lock()
            .get(path)
            .map(|s| s.data.clone())
            .ok_or_else(|| FudjError::Storage(format!("read {}: not found", path.display())))
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        self.guard()?;
        let files = self.files.lock();
        let mut names: Vec<String> = files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        self.guard()?;
        if let Some(state) = self.files.lock().get_mut(path) {
            state.data.truncate(len as usize);
            state.synced_len = state.synced_len.min(len as usize);
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        self.guard()?;
        self.files.lock().remove(path);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        !self.crashed() && self.files.lock().contains_key(path)
    }

    fn create_dir_all(&self, _dir: &Path) -> Result<()> {
        self.guard()
    }

    fn crash_site(&self, site: &str) -> Result<()> {
        self.guard()?;
        let armed = {
            let mut hits = self.site_hits.lock();
            let count = hits.entry(site.to_owned()).or_insert(0);
            *count += 1;
            let cfg = self.cfg.lock();
            matches!(&cfg.crash_point, Some((s, hit)) if s == site && *count == *hit)
        };
        if armed {
            return Err(self.crash(site));
        }
        Ok(())
    }

    fn fault_counters(&self) -> VfsFaultCounters {
        self.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from("/sim").join(name)
    }

    #[test]
    fn synced_bytes_survive_a_crash_unsynced_are_torn() {
        let fs = FaultFs::new(StorageFaultConfig::crash_at(7, "boom", 1));
        fs.append(&p("wal"), b"durable!").unwrap();
        fs.sync(&p("wal")).unwrap();
        fs.append(&p("wal"), b"in-flight-bytes").unwrap();
        let err = fs.crash_site("boom").unwrap_err();
        assert!(matches!(err, FudjError::Crash(_)));
        assert!(fs.crashed());
        fs.reopen_after_crash();
        let bytes = fs.read(&p("wal")).unwrap();
        assert!(bytes.starts_with(b"durable!"), "synced prefix intact");
        assert!(bytes.len() <= b"durable!in-flight-bytes".len());
        // Same seed ⇒ same torn length.
        let fs2 = FaultFs::new(StorageFaultConfig::crash_at(7, "boom", 1));
        fs2.append(&p("wal"), b"durable!").unwrap();
        fs2.sync(&p("wal")).unwrap();
        fs2.append(&p("wal"), b"in-flight-bytes").unwrap();
        let _ = fs2.crash_site("boom");
        fs2.reopen_after_crash();
        assert_eq!(fs2.read(&p("wal")).unwrap(), bytes, "deterministic tear");
    }

    #[test]
    fn crash_point_counts_hits() {
        let fs = FaultFs::new(StorageFaultConfig::crash_at(1, "site", 3));
        assert!(fs.crash_site("site").is_ok());
        assert!(fs.crash_site("other").is_ok());
        assert!(fs.crash_site("site").is_ok());
        assert!(fs.crash_site("site").is_err(), "third hit fires");
        assert!(fs.append(&p("x"), b"y").is_err(), "poisoned after crash");
    }

    #[test]
    fn dropped_fsyncs_do_not_advance_durability() {
        let cfg = StorageFaultConfig {
            seed: 99,
            bit_flip_prob: 0.0,
            drop_fsync_prob: 1.0,
            crash_point: Some(("boom".into(), 1)),
        };
        let fs = FaultFs::new(cfg);
        fs.append(&p("wal"), b"claimed-durable").unwrap();
        fs.sync(&p("wal")).unwrap();
        assert_eq!(fs.counters().fsyncs_dropped, 1);
        let _ = fs.crash_site("boom");
        fs.reopen_after_crash();
        let bytes = fs.read(&p("wal")).unwrap();
        assert!(
            bytes.len() < b"claimed-durable".len() || bytes.is_empty() || !bytes.is_empty(),
            "nothing was guaranteed"
        );
        // Deterministically, the synced prefix is 0 so only a seeded torn
        // prefix may survive.
        assert!(bytes.len() <= b"claimed-durable".len());
    }

    #[test]
    fn bit_flips_are_seeded_and_counted() {
        let cfg = StorageFaultConfig {
            seed: 5,
            bit_flip_prob: 1.0,
            drop_fsync_prob: 0.0,
            crash_point: None,
        };
        let fs = FaultFs::new(cfg.clone());
        fs.append(&p("f"), b"aaaaaaaa").unwrap();
        assert_eq!(fs.counters().bit_flips, 1);
        let flipped = fs.read(&p("f")).unwrap();
        assert_ne!(flipped, b"aaaaaaaa".to_vec());
        // One bit differs.
        let diff: u32 = flipped
            .iter()
            .zip(b"aaaaaaaa")
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
        let fs2 = FaultFs::new(cfg);
        fs2.append(&p("f"), b"aaaaaaaa").unwrap();
        assert_eq!(fs2.read(&p("f")).unwrap(), flipped, "deterministic flip");
    }

    #[test]
    fn rename_and_list_model_a_directory() {
        let fs = FaultFs::new(StorageFaultConfig::quiet(1));
        fs.write_file(&p("a.tmp"), b"x").unwrap();
        fs.rename(&p("a.tmp"), &p("a")).unwrap();
        assert!(fs.exists(&p("a")));
        assert!(!fs.exists(&p("a.tmp")));
        assert_eq!(fs.list(Path::new("/sim")).unwrap(), vec!["a".to_string()]);
        fs.remove(&p("a")).unwrap();
        assert!(fs.list(Path::new("/sim")).unwrap().is_empty());
        assert!(fs.rename(&p("missing"), &p("b")).is_err());
    }

    #[test]
    fn disk_fs_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("fudj-faultfs-test-{}", std::process::id()));
        let fs = DiskFs::new();
        fs.create_dir_all(&dir).unwrap();
        let f = dir.join("seg");
        fs.append(&f, b"hello ").unwrap();
        fs.append(&f, b"world").unwrap();
        fs.sync(&f).unwrap();
        assert_eq!(fs.read(&f).unwrap(), b"hello world".to_vec());
        fs.truncate(&f, 5).unwrap();
        assert_eq!(fs.read(&f).unwrap(), b"hello".to_vec());
        fs.append(&f, b"!").unwrap();
        assert_eq!(fs.read(&f).unwrap(), b"hello!".to_vec());
        fs.write_file(&dir.join("t.tmp"), b"snap").unwrap();
        fs.rename(&dir.join("t.tmp"), &dir.join("t")).unwrap();
        assert_eq!(
            fs.list(&dir).unwrap(),
            vec!["seg".to_string(), "t".to_string()]
        );
        fs.remove(&f).unwrap();
        fs.remove(&dir.join("t")).unwrap();
        assert!(fs.list(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
