//! Atomic snapshots and the versioned manifest.
//!
//! A snapshot is one self-contained, checksummed image of the engine's
//! durable state — every table (schema + rows, rows via the
//! [`fudj_types::wire`] codec) and every registered join spec — tagged
//! with the WAL sequence number it covers. Snapshots compact the log:
//! after `snapshot-{v}.fsnap` commits, every WAL segment below version
//! `v` is garbage.
//!
//! The write protocol is the classic atomic dance, with a named crash
//! point after every step (exercised by the crash-restart harness):
//!
//! 1. write `snapshot-{v}.fsnap.tmp`           (`snapshot:write`)
//! 2. fsync it                                 (`snapshot:sync`)
//! 3. rename to `snapshot-{v}.fsnap`           (`snapshot:rename`)
//! 4. start `wal-{v}.flog` (magic header)      (`wal:rotate`)
//! 5. write + fsync + rename `MANIFEST`        (`manifest:write` / `manifest:rename`)
//! 6. delete stale segments and snapshots      (`compact:cleanup`)
//!
//! The manifest rename at step 5 is the commit point; a crash anywhere
//! earlier leaves the previous version fully recoverable, a crash after
//! leaves only removable garbage. A corrupt or missing manifest falls
//! back to a directory scan for the newest *checksum-valid* snapshot.

use crate::wal::{crc32, GuardSpec, JoinSpec, MAX_FRAME};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fudj_types::{wire, FudjError, Result, Row};

/// First eight bytes of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"FUDJSNP1";
/// First eight bytes of the manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"FUDJMAN1";
/// Manifest file name.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// File name of the snapshot at `version`.
pub fn snapshot_name(version: u64) -> String {
    format!("snapshot-{version:010}.fsnap")
}

/// File name of the WAL segment at `version`.
pub fn wal_name(version: u64) -> String {
    format!("wal-{version:010}.flog")
}

/// Parse a `snapshot-NNN.fsnap` / `wal-NNN.flog` name back to its version.
pub fn parse_versioned(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// One table image inside a snapshot (schema as display strings, like the
/// WAL's `CreateTable`).
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotTable {
    /// Dataset name.
    pub name: String,
    /// `(field name, data type display string)` per column.
    pub fields: Vec<(String, String)>,
    /// Primary-key column name.
    pub primary_key: String,
    /// Partition count.
    pub partitions: u32,
    /// All rows (insertion-order within the image is irrelevant — the
    /// partitioner re-derives placement deterministically on load).
    pub rows: Vec<Row>,
}

/// The full durable state captured by one snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotState {
    /// Highest WAL sequence number the snapshot covers; replay resumes
    /// after it.
    pub last_seq: u64,
    /// Registered join specs.
    pub joins: Vec<JoinSpec>,
    /// Table images.
    pub tables: Vec<SnapshotTable>,
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(FudjError::Wire(format!(
            "snapshot truncated reading {what}: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

fn get_str(buf: &mut Bytes, what: &str) -> Result<String> {
    need(buf, 4, what)?;
    let len = buf.get_u32_le() as usize;
    if len > MAX_FRAME {
        return Err(FudjError::Wire(format!("implausible {what} length {len}")));
    }
    need(buf, len, what)?;
    let raw = buf.chunk()[..len].to_vec();
    buf.advance(len);
    String::from_utf8(raw).map_err(|_| FudjError::Wire(format!("{what} is not valid UTF-8")))
}

/// Encode a snapshot file: magic + body + trailing CRC32 over the body.
pub fn encode_snapshot(state: &SnapshotState) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(256);
    body.put_u64_le(state.last_seq);
    body.put_u32_le(state.joins.len() as u32);
    for spec in &state.joins {
        put_str(&mut body, &spec.name);
        put_str(&mut body, &spec.library);
        put_str(&mut body, &spec.class);
        body.put_u32_le(spec.arg_types.len() as u32);
        for t in &spec.arg_types {
            put_str(&mut body, t);
        }
        put_str(&mut body, &spec.guard.policy);
        body.put_u64_le(spec.guard.call_budget_ms);
        body.put_u64_le(spec.guard.max_pplan_bytes);
        body.put_u64_le(spec.guard.max_buckets_per_key);
        body.put_u64_le(spec.guard.max_assign_fanout);
        body.put_u64_le(spec.guard.check_sample);
        match spec.memory_budget_rows {
            Some(b) => {
                body.put_u8(1);
                body.put_u64_le(b);
            }
            None => body.put_u8(0),
        }
    }
    body.put_u32_le(state.tables.len() as u32);
    for table in &state.tables {
        put_str(&mut body, &table.name);
        body.put_u32_le(table.fields.len() as u32);
        for (fname, ftype) in &table.fields {
            put_str(&mut body, fname);
            put_str(&mut body, ftype);
        }
        put_str(&mut body, &table.primary_key);
        body.put_u32_le(table.partitions);
        body.put_u32_le(table.rows.len() as u32);
        for row in &table.rows {
            wire::encode_row(row, &mut body);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Decode and checksum-verify a snapshot file. Any corruption — torn
/// write, bit flip, truncation — fails the CRC and returns a clean error
/// (the recovery layer quarantines it and falls back).
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotState> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(FudjError::Storage("snapshot header missing or torn".into()));
    }
    let body_bytes = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(
        bytes[bytes.len() - 4..]
            .try_into()
            .expect("slice is 4 bytes"),
    );
    if crc32(body_bytes) != stored {
        return Err(FudjError::Storage("snapshot checksum mismatch".into()));
    }
    let mut buf = Bytes::from(body_bytes);
    need(&buf, 8 + 4, "snapshot header")?;
    let last_seq = buf.get_u64_le();
    let njoins = buf.get_u32_le() as usize;
    let mut joins = Vec::with_capacity(njoins.min(1024));
    for _ in 0..njoins {
        let name = get_str(&mut buf, "join name")?;
        let library = get_str(&mut buf, "library")?;
        let class = get_str(&mut buf, "class")?;
        need(&buf, 4, "arg count")?;
        let nargs = buf.get_u32_le() as usize;
        let mut arg_types = Vec::with_capacity(nargs.min(64));
        for _ in 0..nargs {
            arg_types.push(get_str(&mut buf, "arg type")?);
        }
        let policy = get_str(&mut buf, "guard policy")?;
        need(&buf, 8 * 5 + 1, "guard limits")?;
        let guard = GuardSpec {
            policy,
            call_budget_ms: buf.get_u64_le(),
            max_pplan_bytes: buf.get_u64_le(),
            max_buckets_per_key: buf.get_u64_le(),
            max_assign_fanout: buf.get_u64_le(),
            check_sample: buf.get_u64_le(),
        };
        let memory_budget_rows = match buf.get_u8() {
            0 => None,
            1 => {
                need(&buf, 8, "memory budget")?;
                Some(buf.get_u64_le())
            }
            other => {
                return Err(FudjError::Wire(format!(
                    "bad memory-budget tag {other} in snapshot"
                )))
            }
        };
        joins.push(JoinSpec {
            name,
            library,
            class,
            arg_types,
            guard,
            memory_budget_rows,
        });
    }
    need(&buf, 4, "table count")?;
    let ntables = buf.get_u32_le() as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let name = get_str(&mut buf, "table name")?;
        need(&buf, 4, "field count")?;
        let nfields = buf.get_u32_le() as usize;
        let mut fields = Vec::with_capacity(nfields.min(1024));
        for _ in 0..nfields {
            let fname = get_str(&mut buf, "field name")?;
            let ftype = get_str(&mut buf, "field type")?;
            fields.push((fname, ftype));
        }
        let primary_key = get_str(&mut buf, "primary key")?;
        need(&buf, 8, "table header")?;
        let partitions = buf.get_u32_le();
        let nrows = buf.get_u32_le() as usize;
        let mut rows = Vec::with_capacity(nrows.min(65_536));
        for _ in 0..nrows {
            rows.push(wire::decode_row(&mut buf)?);
        }
        tables.push(SnapshotTable {
            name,
            fields,
            primary_key,
            partitions,
            rows,
        });
    }
    Ok(SnapshotState {
        last_seq,
        joins,
        tables,
    })
}

/// Encode the manifest: magic + version + CRC32 over the version bytes.
pub fn encode_manifest(version: u64) -> Vec<u8> {
    let body = version.to_le_bytes();
    let mut out = Vec::with_capacity(20);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Decode and verify the manifest, returning the current version.
pub fn decode_manifest(bytes: &[u8]) -> Result<u64> {
    if bytes.len() != 20 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(FudjError::Storage("manifest missing or torn".into()));
    }
    let body: [u8; 8] = bytes[8..16].try_into().expect("slice is 8 bytes");
    let stored = u32::from_le_bytes(bytes[16..20].try_into().expect("slice is 4 bytes"));
    if crc32(&body) != stored {
        return Err(FudjError::Storage("manifest checksum mismatch".into()));
    }
    Ok(u64::from_le_bytes(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Value;

    fn state() -> SnapshotState {
        SnapshotState {
            last_seq: 42,
            joins: vec![JoinSpec {
                name: "overlap".into(),
                library: "temporal".into(),
                class: "interval".into(),
                arg_types: vec!["interval".into(), "interval".into()],
                guard: GuardSpec {
                    policy: "failfast".into(),
                    call_budget_ms: 50,
                    max_pplan_bytes: 4096,
                    max_buckets_per_key: 16,
                    max_assign_fanout: 8,
                    check_sample: 1,
                },
                memory_budget_rows: None,
            }],
            tables: vec![SnapshotTable {
                name: "events".into(),
                fields: vec![
                    ("id".into(), "bigint".into()),
                    ("tag".into(), "string".into()),
                ],
                primary_key: "id".into(),
                partitions: 3,
                rows: vec![
                    Row::new(vec![Value::Int64(1), Value::str("x")]),
                    Row::new(vec![Value::Int64(2), Value::Null]),
                ],
            }],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = state();
        let bytes = encode_snapshot(&s);
        assert_eq!(decode_snapshot(&bytes).unwrap(), s);
        // Empty state round-trips too.
        let empty = SnapshotState::default();
        assert_eq!(decode_snapshot(&encode_snapshot(&empty)).unwrap(), empty);
    }

    #[test]
    fn any_corruption_is_detected() {
        let bytes = encode_snapshot(&state());
        for pos in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(decode_snapshot(&bad).is_err(), "flip at {pos} undetected");
        }
        for cut in [0, 7, bytes.len() - 1] {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut}"
            );
        }
    }

    #[test]
    fn manifest_round_trips_and_detects_corruption() {
        let bytes = encode_manifest(7);
        assert_eq!(decode_manifest(&bytes).unwrap(), 7);
        let mut bad = bytes.clone();
        bad[12] ^= 0x80;
        assert!(decode_manifest(&bad).is_err());
        assert!(decode_manifest(&bytes[..10]).is_err());
        assert!(decode_manifest(b"").is_err());
    }

    #[test]
    fn versioned_names_parse_back() {
        assert_eq!(snapshot_name(7), "snapshot-0000000007.fsnap");
        assert_eq!(wal_name(12), "wal-0000000012.flog");
        assert_eq!(
            parse_versioned(&snapshot_name(7), "snapshot-", ".fsnap"),
            Some(7)
        );
        assert_eq!(parse_versioned(&wal_name(12), "wal-", ".flog"), Some(12));
        assert_eq!(parse_versioned("junk.fsnap", "snapshot-", ".fsnap"), None);
        assert_eq!(
            parse_versioned("snapshot-x.fsnap", "snapshot-", ".fsnap"),
            None
        );
    }
}
