//! In-memory partitioned storage and the catalog.
//!
//! The paper runs on a 12-node shared-nothing cluster: every dataset is
//! horizontally partitioned across the nodes, and the engine's exchanges
//! move rows between them. This crate models that storage layer on one
//! machine: a [`Dataset`] owns one row vector per storage partition
//! (hash-partitioned by primary key, as AsterixDB does), and the
//! [`Catalog`] names datasets for the planner and the SQL front end.

pub mod catalog;
pub mod checkpoint;
pub mod csv;
pub mod dataset;
pub mod durable;
pub mod faultfs;
pub mod snapshot;
pub mod wal;

pub use catalog::{Catalog, CatalogSink};
pub use checkpoint::{
    CheckpointPolicy, CheckpointStore, CheckpointStoreStats, PutOutcome, CHECKPOINT_DIR,
};
pub use csv::{read_csv, write_csv};
pub use dataset::{AppendSink, Dataset, DatasetBuilder};
pub use durable::{
    fold_journal, CommittedStage, DurabilityStats, DurableStore, PendingQuery, RecoveredState,
    CRASH_POINTS, QUERY_CRASH_POINTS,
};
pub use faultfs::{DiskFs, FaultFs, StorageFaultConfig, Vfs, VfsFaultCounters};
pub use snapshot::{SnapshotState, SnapshotTable};
pub use wal::{parse_data_type, replay_wal, GuardSpec, JoinSpec, WalRecord};
