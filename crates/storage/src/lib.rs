//! In-memory partitioned storage and the catalog.
//!
//! The paper runs on a 12-node shared-nothing cluster: every dataset is
//! horizontally partitioned across the nodes, and the engine's exchanges
//! move rows between them. This crate models that storage layer on one
//! machine: a [`Dataset`] owns one row vector per storage partition
//! (hash-partitioned by primary key, as AsterixDB does), and the
//! [`Catalog`] names datasets for the planner and the SQL front end.

pub mod catalog;
pub mod checkpoint;
pub mod csv;
pub mod dataset;

pub use catalog::Catalog;
pub use checkpoint::{CheckpointPolicy, CheckpointStore, CheckpointStoreStats, PutOutcome};
pub use csv::{read_csv, write_csv};
pub use dataset::{Dataset, DatasetBuilder};
