//! Stage-output checkpoints for lineage-scoped recovery.
//!
//! The engine's flexible-join pipeline is staged (summarize → divide →
//! partition → combine → dedup), and each exchange-producing stage
//! materializes one row vector per worker. A [`CheckpointStore`] keeps an
//! optional serialized copy of those per-partition outputs, keyed by
//! `(query fingerprint, stage, partition)`, so that a worker that dies
//! *permanently* at a later boundary only costs the recovery layer a
//! deserialize of the partitions it held — not a replay of every upstream
//! stage. Rows are serialized through the same `wire` protocol the
//! exchanges use, so checkpoint bytes are directly comparable to the
//! shuffle byte counters.
//!
//! The store is shared by every query on a cluster (clones of a
//! `Cluster` share one store) and bounded by a byte budget: inserting past
//! the budget evicts the oldest checkpoints first, FIFO over insertion
//! order. An evicted checkpoint is not an error — recovery simply falls
//! back to full-stage replay for losses it no longer covers.

use bytes::{Buf, Bytes, BytesMut};
use fudj_types::{wire, Result, Row};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Which stage outputs the engine checkpoints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// No checkpoints are written (the default).
    #[default]
    Off,
    /// Every checkpointable stage boundary is snapshotted.
    All,
    /// Only stages whose base name (the part before any `/` dataset
    /// suffix, e.g. `join:partition`) appears in the list.
    Stages(Vec<String>),
}

impl CheckpointPolicy {
    /// Whether `stage` (possibly suffixed, e.g. `join:partition/left`)
    /// should be checkpointed under this policy.
    pub fn covers(&self, stage: &str) -> bool {
        let base = stage.split('/').next().unwrap_or(stage);
        match self {
            CheckpointPolicy::Off => false,
            CheckpointPolicy::All => true,
            CheckpointPolicy::Stages(names) => names.iter().any(|n| n == base),
        }
    }

    /// Whether any stage can be checkpointed at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, CheckpointPolicy::Off)
    }
}

/// Identity of one checkpointed partition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    query: u64,
    stage: String,
    partition: usize,
}

/// Outcome of one [`CheckpointStore::put`]: how many serialized bytes the
/// checkpoint occupies and how many older checkpoints were evicted to
/// make room for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PutOutcome {
    /// Serialized size of the stored partition.
    pub bytes: u64,
    /// Checkpoints evicted (FIFO) to fit the byte budget.
    pub evicted: u64,
}

/// Lifetime counters for one store (across all queries that used it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStoreStats {
    /// Partitions written.
    pub written: u64,
    /// Serialized bytes written.
    pub bytes_written: u64,
    /// Partitions read back.
    pub read: u64,
    /// Partitions evicted under byte-budget pressure.
    pub evicted: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<Key, Vec<u8>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
    total_bytes: u64,
    budget_bytes: Option<u64>,
    stats: CheckpointStoreStats,
}

/// Byte-budgeted, shared store of serialized stage-partition outputs.
#[derive(Default)]
pub struct CheckpointStore {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CheckpointStore")
            .field("entries", &inner.entries.len())
            .field("total_bytes", &inner.total_bytes)
            .field("budget_bytes", &inner.budget_bytes)
            .finish()
    }
}

impl CheckpointStore {
    /// An empty store with no byte budget (unlimited).
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// An empty store that evicts past `budget_bytes` serialized bytes.
    pub fn with_budget(budget_bytes: u64) -> Self {
        let store = CheckpointStore::default();
        store.inner.lock().budget_bytes = Some(budget_bytes);
        store
    }

    /// Replace the byte budget (`None` = unlimited). Shrinking the budget
    /// evicts immediately until the store fits.
    pub fn set_budget(&self, budget_bytes: Option<u64>) {
        let mut inner = self.inner.lock();
        inner.budget_bytes = budget_bytes;
        evict_to_budget(&mut inner);
    }

    /// The current byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.inner.lock().budget_bytes
    }

    /// Serialize and store one partition of one stage's output,
    /// overwriting any previous checkpoint with the same key. Returns the
    /// serialized size and how many older checkpoints were evicted.
    pub fn put(&self, query: u64, stage: &str, partition: usize, rows: &[Row]) -> PutOutcome {
        let mut buf = BytesMut::with_capacity(16 + rows.len() * 32);
        for row in rows {
            wire::encode_row(row, &mut buf);
        }
        let bytes = buf.len() as u64;
        let key = Key {
            query,
            stage: stage.to_owned(),
            partition,
        };
        let mut inner = self.inner.lock();
        match inner.entries.insert(key.clone(), buf.to_vec()) {
            // Overwrite: the key keeps its place in the eviction order and
            // the byte total swaps the old size for the new one.
            Some(old) => inner.total_bytes = inner.total_bytes - old.len() as u64 + bytes,
            None => {
                inner.order.push_back(key);
                inner.total_bytes += bytes;
            }
        }
        inner.stats.written += 1;
        inner.stats.bytes_written += bytes;
        let evicted = evict_to_budget(&mut inner);
        PutOutcome { bytes, evicted }
    }

    /// Decode and return one checkpointed partition, or `None` when no
    /// checkpoint covers `(query, stage, partition)` (never written, or
    /// already evicted).
    pub fn get(&self, query: u64, stage: &str, partition: usize) -> Option<Result<Vec<Row>>> {
        let key = Key {
            query,
            stage: stage.to_owned(),
            partition,
        };
        let bytes = {
            let mut inner = self.inner.lock();
            let bytes = inner.entries.get(&key)?.clone();
            inner.stats.read += 1;
            bytes
        };
        let mut rows = Vec::new();
        let mut cursor = Bytes::from(bytes);
        while cursor.has_remaining() {
            match wire::decode_row(&mut cursor) {
                Ok(row) => rows.push(row),
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok(rows))
    }

    /// Whether a checkpoint covers `(query, stage, partition)`.
    pub fn covers(&self, query: u64, stage: &str, partition: usize) -> bool {
        let key = Key {
            query,
            stage: stage.to_owned(),
            partition,
        };
        self.inner.lock().entries.contains_key(&key)
    }

    /// Drop every checkpoint belonging to `query` (called when the query
    /// finishes — its lineage can no longer need them).
    pub fn remove_query(&self, query: u64) {
        let mut inner = self.inner.lock();
        let removed: Vec<Key> = inner
            .order
            .iter()
            .filter(|k| k.query == query)
            .cloned()
            .collect();
        for key in removed {
            if let Some(bytes) = inner.entries.remove(&key) {
                inner.total_bytes -= bytes.len() as u64;
            }
        }
        inner.order.retain(|k| k.query != query);
    }

    /// Number of live checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialized bytes currently held.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().total_bytes
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CheckpointStoreStats {
        self.inner.lock().stats
    }
}

/// Evict FIFO until the store fits its budget; returns how many
/// checkpoints were dropped.
fn evict_to_budget(inner: &mut Inner) -> u64 {
    let Some(budget) = inner.budget_bytes else {
        return 0;
    };
    let mut evicted = 0;
    while inner.total_bytes > budget {
        let Some(key) = inner.order.pop_front() else {
            break;
        };
        if let Some(bytes) = inner.entries.remove(&key) {
            inner.total_bytes -= bytes.len() as u64;
            inner.stats.evicted += 1;
            evicted += 1;
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int64(i), Value::str("payload")])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(row).collect()
    }

    #[test]
    fn put_get_round_trips_rows() {
        let store = CheckpointStore::new();
        let original = rows(5);
        let outcome = store.put(1, "join:partition", 0, &original);
        assert!(outcome.bytes > 0);
        assert_eq!(outcome.evicted, 0);
        let back = store.get(1, "join:partition", 0).unwrap().unwrap();
        assert_eq!(back, original);
        assert!(store.covers(1, "join:partition", 0));
        assert!(!store.covers(1, "join:partition", 1));
        assert!(!store.covers(2, "join:partition", 0));
        assert_eq!(store.stats().written, 1);
        assert_eq!(store.stats().read, 1);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let store = CheckpointStore::new();
        assert!(store.get(9, "join:combine", 3).is_none());
        assert_eq!(store.stats().read, 0);
    }

    #[test]
    fn rewrite_replaces_without_double_counting_bytes() {
        let store = CheckpointStore::new();
        store.put(1, "s", 0, &rows(10));
        let total_after_first = store.total_bytes();
        store.put(1, "s", 0, &rows(2));
        assert!(store.total_bytes() < total_after_first);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(1, "s", 0).unwrap().unwrap(), rows(2));
    }

    #[test]
    fn budget_evicts_oldest_first() {
        let store = CheckpointStore::new();
        let one = store.put(1, "s", 0, &rows(4)).bytes;
        // Budget fits exactly two checkpoints of this shape.
        store.set_budget(Some(one * 2));
        store.put(1, "s", 1, &rows(4));
        let outcome = store.put(1, "s", 2, &rows(4));
        assert_eq!(outcome.evicted, 1, "third insert evicts the first");
        assert!(!store.covers(1, "s", 0), "oldest evicted");
        assert!(store.covers(1, "s", 1));
        assert!(store.covers(1, "s", 2));
        assert_eq!(store.stats().evicted, 1);
        assert!(store.total_bytes() <= one * 2);
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let store = CheckpointStore::new();
        for p in 0..6 {
            store.put(1, "s", p, &rows(8));
        }
        let per = store.total_bytes() / 6;
        store.set_budget(Some(per * 2));
        assert!(store.total_bytes() <= per * 2);
        assert!(store.len() <= 2);
        assert!(store.stats().evicted >= 4);
    }

    #[test]
    fn remove_query_drops_only_that_query() {
        let store = CheckpointStore::new();
        store.put(1, "s", 0, &rows(3));
        store.put(2, "s", 0, &rows(3));
        store.remove_query(1);
        assert!(!store.covers(1, "s", 0));
        assert!(store.covers(2, "s", 0));
        assert_eq!(store.len(), 1);
        store.remove_query(2);
        assert!(store.is_empty());
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn policy_matches_base_stage_names() {
        assert!(!CheckpointPolicy::Off.covers("join:partition"));
        assert!(!CheckpointPolicy::Off.enabled());
        assert!(CheckpointPolicy::All.covers("join:partition/left"));
        let some = CheckpointPolicy::Stages(vec!["join:partition".into()]);
        assert!(some.covers("join:partition"));
        assert!(some.covers("join:partition/right"), "suffix stripped");
        assert!(!some.covers("join:combine"));
        assert!(some.enabled());
    }

    #[test]
    fn empty_partition_checkpoints_as_empty() {
        let store = CheckpointStore::new();
        let outcome = store.put(1, "s", 0, &[]);
        assert_eq!(outcome.bytes, 0);
        assert_eq!(store.get(1, "s", 0).unwrap().unwrap(), Vec::<Row>::new());
    }
}
