//! Stage-output checkpoints for lineage-scoped recovery.
//!
//! The engine's flexible-join pipeline is staged (summarize → divide →
//! partition → combine → dedup), and each exchange-producing stage
//! materializes one row vector per worker. A [`CheckpointStore`] keeps an
//! optional serialized copy of those per-partition outputs, keyed by
//! `(query fingerprint, stage, partition)`, so that a worker that dies
//! *permanently* at a later boundary only costs the recovery layer a
//! deserialize of the partitions it held — not a replay of every upstream
//! stage. Rows are serialized through the same `wire` protocol the
//! exchanges use, so checkpoint bytes are directly comparable to the
//! shuffle byte counters.
//!
//! The store is shared by every query on a cluster (clones of a
//! `Cluster` share one store) and bounded by a byte budget: inserting past
//! the budget evicts the oldest checkpoints first, FIFO over insertion
//! order. An evicted checkpoint is not an error — recovery simply falls
//! back to full-stage replay for losses it no longer covers.

use crate::faultfs::Vfs;
use crate::wal::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fudj_types::{wire, Result, Row};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

/// First eight bytes of every durable checkpoint frame file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"FUDJCKP1";

/// Sub-directory of the WAL dir holding durable checkpoint frames.
pub const CHECKPOINT_DIR: &str = "checkpoints";

/// Which stage outputs the engine checkpoints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// No checkpoints are written (the default).
    #[default]
    Off,
    /// Every checkpointable stage boundary is snapshotted.
    All,
    /// Only stages whose base name (the part before any `/` dataset
    /// suffix, e.g. `join:partition`) appears in the list.
    Stages(Vec<String>),
}

impl CheckpointPolicy {
    /// Whether `stage` (possibly suffixed, e.g. `join:partition/left`)
    /// should be checkpointed under this policy.
    pub fn covers(&self, stage: &str) -> bool {
        let base = stage.split('/').next().unwrap_or(stage);
        match self {
            CheckpointPolicy::Off => false,
            CheckpointPolicy::All => true,
            CheckpointPolicy::Stages(names) => names.iter().any(|n| n == base),
        }
    }

    /// Whether any stage can be checkpointed at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, CheckpointPolicy::Off)
    }
}

/// Identity of one checkpointed partition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    query: u64,
    stage: String,
    partition: usize,
}

/// Outcome of one [`CheckpointStore::put`]: how many serialized bytes the
/// checkpoint occupies and how many older checkpoints were evicted to
/// make room for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PutOutcome {
    /// Serialized size of the stored partition.
    pub bytes: u64,
    /// Checkpoints evicted (FIFO) to fit the byte budget.
    pub evicted: u64,
}

/// Lifetime counters for one store (across all queries that used it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStoreStats {
    /// Partitions written.
    pub written: u64,
    /// Serialized bytes written.
    pub bytes_written: u64,
    /// Partitions read back.
    pub read: u64,
    /// Partitions evicted under byte-budget pressure.
    pub evicted: u64,
    /// Durable checkpoint frames written through the Vfs.
    pub durable_frames_written: u64,
    /// Durable checkpoint frame bytes written (framing included).
    pub durable_frame_bytes_written: u64,
    /// Durable frames read back from disk (resume restores).
    pub durable_frames_read: u64,
    /// Durable frames rejected as corrupt (bad magic, framing, checksum,
    /// identity, or row payload) — never mis-decoded, counted and skipped.
    pub durable_frames_quarantined: u64,
}

/// Where durable checkpoint frames land: the same Vfs as the WAL, so the
/// fault injector's torn writes / bit flips / dropped fsyncs / crash
/// sites apply to checkpoints exactly like every other durable byte.
struct DurableTier {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
}

/// `ckpt-{query:016x}-{stage}-{partition}.fckpt`, stage sanitized to
/// filename-safe characters (identity is re-verified from the frame body
/// on read, so sanitization collisions cannot alias checkpoints).
fn frame_name(query: u64, stage: &str, partition: usize) -> String {
    let safe: String = stage
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("ckpt-{query:016x}-{safe}-{partition}.fckpt")
}

/// Frame-file prefix of every checkpoint belonging to `query`.
fn query_prefix(query: u64) -> String {
    format!("ckpt-{query:016x}-")
}

/// Encode one durable frame: magic, then `len | body | crc32(body)` with
/// body = query ++ stage ++ partition ++ row count ++ wire rows.
fn encode_frame(query: u64, stage: &str, partition: usize, rows: &[Row]) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(32 + rows.len() * 32);
    body.put_u64_le(query);
    body.put_u32_le(stage.len() as u32);
    body.put_slice(stage.as_bytes());
    body.put_u32_le(partition as u32);
    body.put_u32_le(rows.len() as u32);
    for row in rows {
        wire::encode_row(row, &mut body);
    }
    let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + body.len() + 8);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Decode one durable frame, verifying framing, checksum, and identity.
/// Any mismatch is `None` — corrupt frames are never mis-decoded.
fn decode_frame(bytes: &[u8], query: u64, stage: &str, partition: usize) -> Option<Vec<Row>> {
    let rest = bytes.strip_prefix(CHECKPOINT_MAGIC.as_slice())?;
    if rest.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if rest.len() != 4 + len + 4 {
        return None;
    }
    let body = &rest[4..4 + len];
    let stored = u32::from_le_bytes([
        rest[4 + len],
        rest[4 + len + 1],
        rest[4 + len + 2],
        rest[4 + len + 3],
    ]);
    if crc32(body) != stored {
        return None;
    }
    let mut buf = Bytes::from(body.to_vec());
    if buf.remaining() < 8 + 4 || buf.get_u64_le() != query {
        return None;
    }
    let stage_len = buf.get_u32_le() as usize;
    if buf.remaining() < stage_len {
        return None;
    }
    let stage_bytes = buf.chunk()[..stage_len].to_vec();
    buf.advance(stage_len);
    if stage_bytes != stage.as_bytes() {
        return None;
    }
    if buf.remaining() < 8 || buf.get_u32_le() as usize != partition {
        return None;
    }
    let nrows = buf.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(nrows.min(1 << 20));
    for _ in 0..nrows {
        rows.push(wire::decode_row(&mut buf).ok()?);
    }
    if buf.has_remaining() {
        return None;
    }
    Some(rows)
}

#[derive(Default)]
struct Inner {
    entries: HashMap<Key, Vec<u8>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
    total_bytes: u64,
    budget_bytes: Option<u64>,
    stats: CheckpointStoreStats,
}

/// Byte-budgeted, shared store of serialized stage-partition outputs,
/// with an optional durable tier that mirrors every put to checksummed
/// frame files on the WAL's filesystem.
#[derive(Default)]
pub struct CheckpointStore {
    inner: Mutex<Inner>,
    durable: Mutex<Option<DurableTier>>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CheckpointStore")
            .field("entries", &inner.entries.len())
            .field("total_bytes", &inner.total_bytes)
            .field("budget_bytes", &inner.budget_bytes)
            .finish()
    }
}

impl CheckpointStore {
    /// An empty store with no byte budget (unlimited).
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// An empty store that evicts past `budget_bytes` serialized bytes.
    pub fn with_budget(budget_bytes: u64) -> Self {
        let store = CheckpointStore::default();
        store.inner.lock().budget_bytes = Some(budget_bytes);
        store
    }

    /// Replace the byte budget (`None` = unlimited). Shrinking the budget
    /// evicts immediately until the store fits.
    pub fn set_budget(&self, budget_bytes: Option<u64>) {
        let mut inner = self.inner.lock();
        inner.budget_bytes = budget_bytes;
        evict_to_budget(&mut inner);
    }

    /// The current byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.inner.lock().budget_bytes
    }

    /// Attach the durable tier: every subsequent put is mirrored to a
    /// checksummed frame file under `dir` on `vfs` (the WAL's filesystem,
    /// so its fault plan applies to checkpoints too).
    pub fn attach_durable(&self, vfs: Arc<dyn Vfs>, dir: impl Into<PathBuf>) -> Result<()> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        *self.durable.lock() = Some(DurableTier { vfs, dir });
        Ok(())
    }

    /// Detach the durable tier (frames already on disk stay there).
    pub fn detach_durable(&self) {
        *self.durable.lock() = None;
    }

    /// Whether the durable tier is attached.
    pub fn durable_enabled(&self) -> bool {
        self.durable.lock().is_some()
    }

    /// Serialize and store one partition of one stage's output,
    /// overwriting any previous checkpoint with the same key. Returns the
    /// serialized size and how many older checkpoints were evicted. With
    /// the durable tier attached the frame is also written and fsynced to
    /// disk (passing the `checkpoint:write` / `checkpoint:sync` crash
    /// sites), and disk failures — including injected crashes — surface
    /// as the error.
    pub fn put(
        &self,
        query: u64,
        stage: &str,
        partition: usize,
        rows: &[Row],
    ) -> Result<PutOutcome> {
        let mut buf = BytesMut::with_capacity(16 + rows.len() * 32);
        for row in rows {
            wire::encode_row(row, &mut buf);
        }
        let bytes = buf.len() as u64;
        let key = Key {
            query,
            stage: stage.to_owned(),
            partition,
        };
        let outcome = {
            let mut inner = self.inner.lock();
            match inner.entries.insert(key, buf.to_vec()) {
                // Overwrite: the key keeps its place in the eviction order
                // and the byte total swaps the old size for the new one.
                Some(old) => inner.total_bytes = inner.total_bytes - old.len() as u64 + bytes,
                None => {
                    inner.order.push_back(Key {
                        query,
                        stage: stage.to_owned(),
                        partition,
                    });
                    inner.total_bytes += bytes;
                }
            }
            inner.stats.written += 1;
            inner.stats.bytes_written += bytes;
            let evicted = evict_to_budget(&mut inner);
            PutOutcome { bytes, evicted }
        };
        let tier = self.durable.lock();
        if let Some(tier) = tier.as_ref() {
            let frame = encode_frame(query, stage, partition, rows);
            let path = tier.dir.join(frame_name(query, stage, partition));
            tier.vfs.write_file(&path, &frame)?;
            tier.vfs.crash_site("checkpoint:write")?;
            tier.vfs.sync(&path)?;
            tier.vfs.crash_site("checkpoint:sync")?;
            let mut inner = self.inner.lock();
            inner.stats.durable_frames_written += 1;
            inner.stats.durable_frame_bytes_written += frame.len() as u64;
        }
        Ok(outcome)
    }

    /// Decode and return one checkpointed partition, or `None` when no
    /// checkpoint covers `(query, stage, partition)` (never written,
    /// evicted, or — on the durable fallback path — corrupt on disk).
    pub fn get(&self, query: u64, stage: &str, partition: usize) -> Option<Result<Vec<Row>>> {
        let key = Key {
            query,
            stage: stage.to_owned(),
            partition,
        };
        let bytes = {
            let mut inner = self.inner.lock();
            match inner.entries.get(&key) {
                Some(bytes) => {
                    let bytes = bytes.clone();
                    inner.stats.read += 1;
                    Some(bytes)
                }
                None => None,
            }
        };
        if let Some(bytes) = bytes {
            let mut rows = Vec::new();
            let mut cursor = Bytes::from(bytes);
            while cursor.has_remaining() {
                match wire::decode_row(&mut cursor) {
                    Ok(row) => rows.push(row),
                    Err(e) => return Some(Err(e)),
                }
            }
            return Some(Ok(rows));
        }
        // Memory miss: fall back to the durable tier. A frame that fails
        // any check (magic, framing, checksum, identity, row payload) is
        // quarantined — uncovered, never mis-decoded.
        let tier = self.durable.lock();
        let tier = tier.as_ref()?;
        let path = tier.dir.join(frame_name(query, stage, partition));
        let raw = tier.vfs.read(&path).ok()?;
        match decode_frame(&raw, query, stage, partition) {
            Some(rows) => {
                let mut inner = self.inner.lock();
                inner.stats.read += 1;
                inner.stats.durable_frames_read += 1;
                Some(Ok(rows))
            }
            None => {
                self.inner.lock().stats.durable_frames_quarantined += 1;
                None
            }
        }
    }

    /// Whether a checkpoint covers `(query, stage, partition)` — in
    /// memory, or (durable tier attached) as a frame file on disk.
    pub fn covers(&self, query: u64, stage: &str, partition: usize) -> bool {
        let key = Key {
            query,
            stage: stage.to_owned(),
            partition,
        };
        if self.inner.lock().entries.contains_key(&key) {
            return true;
        }
        let tier = self.durable.lock();
        match tier.as_ref() {
            Some(tier) => tier
                .vfs
                .exists(&tier.dir.join(frame_name(query, stage, partition))),
            None => false,
        }
    }

    /// Drop every checkpoint belonging to `query` (called when the query
    /// finishes — its lineage can no longer need them). Durable frames
    /// are removed best-effort: a disk that is failing (or has simulated-
    /// crashed) must not turn query completion into an error, and frames
    /// that survive an actual crash are exactly what resume reads.
    pub fn remove_query(&self, query: u64) {
        {
            let mut inner = self.inner.lock();
            let removed: Vec<Key> = inner
                .order
                .iter()
                .filter(|k| k.query == query)
                .cloned()
                .collect();
            for key in removed {
                if let Some(bytes) = inner.entries.remove(&key) {
                    inner.total_bytes -= bytes.len() as u64;
                }
            }
            inner.order.retain(|k| k.query != query);
        }
        let tier = self.durable.lock();
        if let Some(tier) = tier.as_ref() {
            let prefix = query_prefix(query);
            if let Ok(names) = tier.vfs.list(&tier.dir) {
                for name in names {
                    if name.starts_with(&prefix) {
                        let _ = tier.vfs.remove(&tier.dir.join(name));
                    }
                }
            }
        }
    }

    /// Names of durable frame files currently on disk (the crash-resume
    /// litter scan), empty when no durable tier is attached.
    pub fn durable_frames(&self) -> Vec<String> {
        let tier = self.durable.lock();
        match tier.as_ref() {
            Some(tier) => tier.vfs.list(&tier.dir).unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Number of live checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialized bytes currently held.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().total_bytes
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CheckpointStoreStats {
        self.inner.lock().stats
    }
}

/// Evict FIFO until the store fits its budget; returns how many
/// checkpoints were dropped.
fn evict_to_budget(inner: &mut Inner) -> u64 {
    let Some(budget) = inner.budget_bytes else {
        return 0;
    };
    let mut evicted = 0;
    while inner.total_bytes > budget {
        let Some(key) = inner.order.pop_front() else {
            break;
        };
        if let Some(bytes) = inner.entries.remove(&key) {
            inner.total_bytes -= bytes.len() as u64;
            inner.stats.evicted += 1;
            evicted += 1;
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int64(i), Value::str("payload")])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(row).collect()
    }

    #[test]
    fn put_get_round_trips_rows() {
        let store = CheckpointStore::new();
        let original = rows(5);
        let outcome = store.put(1, "join:partition", 0, &original).unwrap();
        assert!(outcome.bytes > 0);
        assert_eq!(outcome.evicted, 0);
        let back = store.get(1, "join:partition", 0).unwrap().unwrap();
        assert_eq!(back, original);
        assert!(store.covers(1, "join:partition", 0));
        assert!(!store.covers(1, "join:partition", 1));
        assert!(!store.covers(2, "join:partition", 0));
        assert_eq!(store.stats().written, 1);
        assert_eq!(store.stats().read, 1);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let store = CheckpointStore::new();
        assert!(store.get(9, "join:combine", 3).is_none());
        assert_eq!(store.stats().read, 0);
    }

    #[test]
    fn rewrite_replaces_without_double_counting_bytes() {
        let store = CheckpointStore::new();
        store.put(1, "s", 0, &rows(10)).unwrap();
        let total_after_first = store.total_bytes();
        store.put(1, "s", 0, &rows(2)).unwrap();
        assert!(store.total_bytes() < total_after_first);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(1, "s", 0).unwrap().unwrap(), rows(2));
    }

    #[test]
    fn budget_evicts_oldest_first() {
        let store = CheckpointStore::new();
        let one = store.put(1, "s", 0, &rows(4)).unwrap().bytes;
        // Budget fits exactly two checkpoints of this shape.
        store.set_budget(Some(one * 2));
        store.put(1, "s", 1, &rows(4)).unwrap();
        let outcome = store.put(1, "s", 2, &rows(4)).unwrap();
        assert_eq!(outcome.evicted, 1, "third insert evicts the first");
        assert!(!store.covers(1, "s", 0), "oldest evicted");
        assert!(store.covers(1, "s", 1));
        assert!(store.covers(1, "s", 2));
        assert_eq!(store.stats().evicted, 1);
        assert!(store.total_bytes() <= one * 2);
    }

    #[test]
    fn shrinking_budget_evicts_immediately() {
        let store = CheckpointStore::new();
        for p in 0..6 {
            store.put(1, "s", p, &rows(8)).unwrap();
        }
        let per = store.total_bytes() / 6;
        store.set_budget(Some(per * 2));
        assert!(store.total_bytes() <= per * 2);
        assert!(store.len() <= 2);
        assert!(store.stats().evicted >= 4);
    }

    #[test]
    fn remove_query_drops_only_that_query() {
        let store = CheckpointStore::new();
        store.put(1, "s", 0, &rows(3)).unwrap();
        store.put(2, "s", 0, &rows(3)).unwrap();
        store.remove_query(1);
        assert!(!store.covers(1, "s", 0));
        assert!(store.covers(2, "s", 0));
        assert_eq!(store.len(), 1);
        store.remove_query(2);
        assert!(store.is_empty());
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn policy_matches_base_stage_names() {
        assert!(!CheckpointPolicy::Off.covers("join:partition"));
        assert!(!CheckpointPolicy::Off.enabled());
        assert!(CheckpointPolicy::All.covers("join:partition/left"));
        let some = CheckpointPolicy::Stages(vec!["join:partition".into()]);
        assert!(some.covers("join:partition"));
        assert!(some.covers("join:partition/right"), "suffix stripped");
        assert!(!some.covers("join:combine"));
        assert!(some.enabled());
    }

    #[test]
    fn empty_partition_checkpoints_as_empty() {
        let store = CheckpointStore::new();
        let outcome = store.put(1, "s", 0, &[]).unwrap();
        assert_eq!(outcome.bytes, 0);
        assert_eq!(store.get(1, "s", 0).unwrap().unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn finished_query_checkpoints_never_evict_live_coverage() {
        // Regression: a completed long query's checkpoints are dropped
        // eagerly at finish (remove_query), so they cannot sit in the
        // FIFO and push a live query's recovery coverage out of budget.
        let store = CheckpointStore::new();
        let one = store.put(1, "s", 0, &rows(4)).unwrap().bytes;
        store.set_budget(Some(one * 3));
        for p in 1..3 {
            store.put(1, "s", p, &rows(4)).unwrap();
        }
        // Query 1 finishes: eager drop frees the whole budget.
        store.remove_query(1);
        assert_eq!(store.total_bytes(), 0);
        // Query 2 now fits entirely — zero evictions under the same
        // budget that query 1 had filled.
        let mut evicted = 0;
        for p in 0..3 {
            evicted += store.put(2, "s", p, &rows(4)).unwrap().evicted;
        }
        assert_eq!(evicted, 0, "finished query must not pressure live one");
        assert!((0..3).all(|p| store.covers(2, "s", p)));
    }

    #[test]
    fn durable_tier_round_trips_and_survives_memory_loss() {
        use crate::faultfs::{FaultFs, StorageFaultConfig};
        let fs = FaultFs::new(StorageFaultConfig::quiet(11));
        let store = CheckpointStore::new();
        store
            .attach_durable(fs.clone(), "/wal/checkpoints")
            .unwrap();
        let original = rows(6);
        store.put(7, "join:combine/joined", 2, &original).unwrap();
        let stats = store.stats();
        assert_eq!(stats.durable_frames_written, 1);
        assert!(stats.durable_frame_bytes_written > 0);

        // A fresh store over the same filesystem (the post-crash process)
        // has no memory tier but reads the frame back from disk.
        let fresh = CheckpointStore::new();
        fresh.attach_durable(fs, "/wal/checkpoints").unwrap();
        assert!(fresh.covers(7, "join:combine/joined", 2));
        let back = fresh.get(7, "join:combine/joined", 2).unwrap().unwrap();
        assert_eq!(back, original);
        assert_eq!(fresh.stats().durable_frames_read, 1);

        // Identity is verified: the same file never answers for another
        // key, and remove_query deletes the frames.
        assert!(!fresh.covers(7, "join:combine/joined", 0));
        assert!(fresh.get(8, "join:combine/joined", 2).is_none());
        fresh.remove_query(7);
        assert!(!fresh.covers(7, "join:combine/joined", 2));
        assert!(fresh.durable_frames().is_empty());
    }

    #[test]
    fn corrupt_durable_frames_are_quarantined_not_decoded() {
        use crate::faultfs::{FaultFs, StorageFaultConfig};
        let fs = FaultFs::new(StorageFaultConfig::quiet(12));
        let store = CheckpointStore::new();
        store
            .attach_durable(fs.clone(), "/wal/checkpoints")
            .unwrap();
        store.put(3, "agg:shuffle/partials", 1, &rows(5)).unwrap();
        let name = store.durable_frames().pop().unwrap();
        let path = std::path::Path::new("/wal/checkpoints").join(&name);
        let mut bytes = fs.read(&path).unwrap();
        // Flip one payload bit: the checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs.write_file(&path, &bytes).unwrap();
        let fresh = CheckpointStore::new();
        fresh
            .attach_durable(fs.clone(), "/wal/checkpoints")
            .unwrap();
        assert!(fresh.get(3, "agg:shuffle/partials", 1).is_none());
        assert_eq!(fresh.stats().durable_frames_quarantined, 1);
        // Truncation is detected the same way.
        fs.truncate(&path, 9).unwrap();
        assert!(fresh.get(3, "agg:shuffle/partials", 1).is_none());
        assert_eq!(fresh.stats().durable_frames_quarantined, 2);
    }
}
