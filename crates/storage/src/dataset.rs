//! Horizontally partitioned in-memory datasets.

use fudj_types::{FudjError, Result, Row, SchemaRef, Value};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Observer of row appends, called *before* the in-memory partitions
/// change (log-before-apply). The durability layer attaches one per
/// dataset; an error aborts the insert so the WAL never lags the state.
pub trait AppendSink: Send + Sync {
    /// Called with the validated rows about to be appended to `table`.
    fn on_append(&self, table: &str, rows: &[Row]) -> Result<()>;
}

/// A named dataset hash-partitioned by primary key across storage
/// partitions, one partition per (simulated) cluster node.
pub struct Dataset {
    name: String,
    schema: SchemaRef,
    primary_key: usize,
    partitions: RwLock<Vec<Vec<Row>>>,
    sink: RwLock<Option<Arc<dyn AppendSink>>>,
    /// Monotonic ingest version: bumped once per successful insert (single
    /// or batch). Result caches key on it, so an append — however small —
    /// makes every cached result over this table unreachable.
    epoch: AtomicU64,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dataset({:?}, {} rows, {} partitions)",
            self.name,
            self.len(),
            self.partition_count()
        )
    }
}

impl Dataset {
    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Column index of the primary key.
    pub fn primary_key(&self) -> usize {
        self.primary_key
    }

    /// Number of storage partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.read().len()
    }

    /// Total row count across partitions.
    pub fn len(&self) -> usize {
        self.partitions.read().iter().map(Vec::len).sum()
    }

    /// Whether the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ingest epoch: starts at 0 and advances on every successful
    /// `insert`/`insert_all` (after the sink accepted the rows). Reading
    /// the epoch before running a query and comparing afterwards detects
    /// concurrent ingest; caches use it as part of their keys.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Attach an append observer (the durability layer's WAL hook).
    pub fn attach_sink(&self, sink: Arc<dyn AppendSink>) {
        *self.sink.write() = Some(sink);
    }

    /// Detach the append observer, if any.
    pub fn detach_sink(&self) {
        *self.sink.write() = None;
    }

    fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(FudjError::Execution(format!(
                "row width {} does not match schema of dataset {:?}",
                row.len(),
                self.name
            )));
        }
        Ok(())
    }

    /// Route one validated row to its partition.
    fn apply(&self, row: Row) {
        let mut parts = self.partitions.write();
        let idx = partition_of(row.get(self.primary_key), parts.len());
        parts[idx].push(row);
    }

    /// Insert a row, routed by the hash of its primary key — the storage
    /// partitioning AsterixDB applies on ingestion. When a sink is
    /// attached the row is logged first; a sink error aborts the insert.
    pub fn insert(&self, row: Row) -> Result<()> {
        self.validate(&row)?;
        if let Some(sink) = self.sink.read().clone() {
            sink.on_append(&self.name, std::slice::from_ref(&row))?;
        }
        self.apply(row);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Bulk insert: validated and logged as one batch (one WAL record),
    /// then applied. A sink error aborts the whole batch before any row
    /// lands.
    pub fn insert_all(&self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        let rows: Vec<Row> = rows.into_iter().collect();
        for row in &rows {
            self.validate(row)?;
        }
        if let Some(sink) = self.sink.read().clone() {
            sink.on_append(&self.name, &rows)?;
        }
        let applied = !rows.is_empty();
        for row in rows {
            self.apply(row);
        }
        if applied {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Run `f` over one partition's rows without copying them out. An
    /// out-of-range partition index sees an empty slice (the panic-free
    /// contract of the storage audit — no partition simply has no rows).
    pub fn with_partition<R>(&self, partition: usize, f: impl FnOnce(&[Row]) -> R) -> R {
        let parts = self.partitions.read();
        f(parts.get(partition).map_or(&[][..], Vec::as_slice))
    }

    /// Rows of one partition, cloned (cheap: values are `Arc`-backed).
    /// Out-of-range partitions are empty, never a panic.
    pub fn partition_rows(&self, partition: usize) -> Vec<Row> {
        self.partitions
            .read()
            .get(partition)
            .cloned()
            .unwrap_or_default()
    }

    /// All rows in partition order — test/debug convenience.
    pub fn all_rows(&self) -> Vec<Row> {
        let parts = self.partitions.read();
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts.iter() {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Rows per partition — the skew diagnostics used by the experiments.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.read().iter().map(Vec::len).collect()
    }
}

/// Which storage partition a primary-key value routes to.
fn partition_of(key: &Value, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Builder for [`Dataset`].
pub struct DatasetBuilder {
    name: String,
    schema: SchemaRef,
    primary_key: String,
    partitions: usize,
}

impl DatasetBuilder {
    /// Start building a dataset with the given name and schema.
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> Self {
        DatasetBuilder {
            name: name.into(),
            schema,
            primary_key: String::new(),
            partitions: 1,
        }
    }

    /// Set the primary-key column (defaults to the first column).
    pub fn primary_key(mut self, column: impl Into<String>) -> Self {
        self.primary_key = column.into();
        self
    }

    /// Set the number of storage partitions (defaults to 1).
    pub fn partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Build the (empty) dataset.
    pub fn build(self) -> Result<Dataset> {
        if self.partitions == 0 {
            return Err(FudjError::Catalog(
                "dataset needs at least one partition".into(),
            ));
        }
        let pk_name = if self.primary_key.is_empty() {
            self.schema
                .fields()
                .first()
                .ok_or_else(|| FudjError::Catalog("dataset schema has no columns".into()))?
                .name
                .clone()
        } else {
            self.primary_key
        };
        let primary_key = self.schema.index_of(&pk_name)?;
        Ok(Dataset {
            name: self.name,
            schema: self.schema,
            primary_key,
            partitions: RwLock::new(vec![Vec::new(); self.partitions]),
            sink: RwLock::new(None),
            epoch: AtomicU64::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::{DataType, Field, Schema};

    fn make(parts: usize) -> Dataset {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Uuid),
            Field::new("v", DataType::Int64),
        ]);
        DatasetBuilder::new("t", schema)
            .primary_key("id")
            .partitions(parts)
            .build()
            .unwrap()
    }

    fn row(id: u128, v: i64) -> Row {
        Row::new(vec![Value::Uuid(id), Value::Int64(v)])
    }

    #[test]
    fn insert_and_scan() {
        let d = make(4);
        for i in 0..100 {
            d.insert(row(i, i as i64)).unwrap();
        }
        assert_eq!(d.len(), 100);
        assert_eq!(d.partition_count(), 4);
        assert_eq!(d.all_rows().len(), 100);
        let total: usize = d.partition_sizes().iter().sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn same_key_routes_to_same_partition() {
        let d = make(8);
        d.insert(row(42, 1)).unwrap();
        d.insert(row(42, 2)).unwrap();
        let nonempty: Vec<usize> = d
            .partition_sizes()
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nonempty.len(), 1, "both rows in one partition");
        d.with_partition(nonempty[0], |rows| assert_eq!(rows.len(), 2));
    }

    #[test]
    fn hash_partitioning_spreads_keys() {
        let d = make(4);
        for i in 0..1000 {
            d.insert(row(i, 0)).unwrap();
        }
        for (i, s) in d.partition_sizes().into_iter().enumerate() {
            assert!(s > 100, "partition {i} only got {s} of 1000 rows");
        }
    }

    #[test]
    fn rejects_wrong_width() {
        let d = make(1);
        assert!(d.insert(Row::new(vec![Value::Uuid(1)])).is_err());
    }

    #[test]
    fn out_of_range_partition_is_empty_not_a_panic() {
        let d = make(2);
        d.insert(row(1, 1)).unwrap();
        assert!(d.partition_rows(99).is_empty());
        d.with_partition(99, |rows| assert!(rows.is_empty()));
    }

    #[test]
    fn sink_sees_rows_before_apply_and_can_abort() {
        struct Recorder(parking_lot::Mutex<Vec<(String, usize)>>, bool);
        impl AppendSink for Recorder {
            fn on_append(&self, table: &str, rows: &[Row]) -> Result<()> {
                self.0.lock().push((table.to_owned(), rows.len()));
                if self.1 {
                    return Err(FudjError::Storage("log full".into()));
                }
                Ok(())
            }
        }
        let d = make(2);
        let ok = Arc::new(Recorder(parking_lot::Mutex::new(Vec::new()), false));
        d.attach_sink(ok.clone());
        d.insert(row(1, 1)).unwrap();
        d.insert_all((2..5).map(|i| row(i, 0))).unwrap();
        assert_eq!(*ok.0.lock(), vec![("t".to_owned(), 1), ("t".to_owned(), 3)]);
        assert_eq!(d.len(), 4);
        // A failing sink aborts before any row lands.
        let bad = Arc::new(Recorder(parking_lot::Mutex::new(Vec::new()), true));
        d.attach_sink(bad);
        assert!(d.insert_all((5..8).map(|i| row(i, 0))).is_err());
        assert_eq!(d.len(), 4, "failed batch left no rows behind");
        d.detach_sink();
        d.insert(row(9, 9)).unwrap();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn epoch_advances_on_ingest_only() {
        let d = make(2);
        assert_eq!(d.epoch(), 0);
        d.insert(row(1, 1)).unwrap();
        assert_eq!(d.epoch(), 1);
        d.insert_all((2..5).map(|i| row(i, 0))).unwrap();
        assert_eq!(d.epoch(), 2, "a batch bumps the epoch once");
        d.insert_all(std::iter::empty()).unwrap();
        assert_eq!(d.epoch(), 2, "an empty batch changes nothing");
        // Reads never bump.
        let _ = d.all_rows();
        let _ = d.partition_sizes();
        assert_eq!(d.epoch(), 2);
        // A failed insert (sink veto) leaves the epoch alone.
        struct Veto;
        impl AppendSink for Veto {
            fn on_append(&self, _: &str, _: &[Row]) -> Result<()> {
                Err(FudjError::Storage("no".into()))
            }
        }
        d.attach_sink(Arc::new(Veto));
        assert!(d.insert(row(9, 9)).is_err());
        assert_eq!(d.epoch(), 2, "vetoed insert must not look like ingest");
    }

    #[test]
    fn builder_validation() {
        let schema = Schema::shared(vec![Field::new("id", DataType::Uuid)]);
        assert!(DatasetBuilder::new("t", schema.clone())
            .partitions(0)
            .build()
            .is_err());
        assert!(DatasetBuilder::new("t", schema.clone())
            .primary_key("nope")
            .build()
            .is_err());
        // Default pk is the first column.
        let d = DatasetBuilder::new("t", schema).build().unwrap();
        assert_eq!(d.primary_key(), 0);
    }
}
