//! Multi-tenant serving tier over the FUDJ engine.
//!
//! The paper's §VII-B measures the translation overhead of flexible
//! user-defined joins and argues it is amortized by plan caching in a
//! serving deployment. This crate builds that deployment shape:
//! thousands of logical tenant sessions multiplexed over one engine
//! ([`fudj_sql::Session`] + the `fudj-sched` scheduler), with
//!
//! * a **plan cache** — parse→bind→plan runs once per distinct statement
//!   shape (normalized via [`fudj_sql::fingerprint`]);
//! * a **result cache** with epoch-based ingest invalidation — every
//!   `Dataset` append and every catalog/registry DDL bumps an epoch, and
//!   cached entries are only served while their recorded epoch vector
//!   still matches, so a stale read is structurally impossible;
//! * **latency observability** — fixed-bucket log-scale histograms
//!   (p50/p95/p99/max on the simulated clock) per tenant and global,
//!   plus [`fudj_exec::ServingStats`] counters stamped into every
//!   response's `MetricsSnapshot`;
//! * a **deterministic workload generator** (seeded tenant mixes with
//!   Zipf-skewed shape popularity) that drives both the differential
//!   tests and the `BENCH_PR9.json` latency benchmark.
//!
//! Entry point: [`ServingTier::serve`] — SQL text in, cached-or-computed
//! rows out, bit-identical to what an uncached session would return.

pub mod cache;
pub mod histogram;
pub mod sample;
pub mod tier;
pub mod workload;

pub use cache::{CacheCounters, LruCache};
pub use histogram::LatencyHistogram;
pub use sample::sample_session;
pub use tier::ServingTier;
pub use workload::{generate, MixProfile, Op, QueryClass, WorkloadConfig, Zipf, SHAPES};
