//! Deterministic multi-tenant workload generation.
//!
//! A workload is a seeded sequence of (tenant, priority, SQL) operations
//! drawn from a fixed pool of query *shapes* over the standard sample
//! datasets (see [`crate::sample`]): point lookups, FUDJ joins across the
//! paper's four classes (spatial, interval, text similarity, equality),
//! and aggregates. Shape popularity follows a Zipf distribution in the
//! skewed profile — the regime where plan/result caching pays — and is
//! uniform otherwise. The same seed always yields the same op sequence,
//! which is what lets the serving differential replay one workload
//! through both the cached tier and the cache-off oracle.

use rand::{rngs::SmallRng, Rng, SeedableRng};

/// The paper-aligned class of one query shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    PointLookup,
    SpatialJoin,
    IntervalJoin,
    TextJoin,
    EqualityJoin,
    Aggregate,
}

impl QueryClass {
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::PointLookup => "point_lookup",
            QueryClass::SpatialJoin => "spatial_join",
            QueryClass::IntervalJoin => "interval_join",
            QueryClass::TextJoin => "text_join",
            QueryClass::EqualityJoin => "equality_join",
            QueryClass::Aggregate => "aggregate",
        }
    }
}

/// One shape: a SQL template with a small integer parameter domain.
/// Small domains are deliberate — repeated (shape, parameter) pairs are
/// what exercises the result cache.
pub struct ShapeSpec {
    pub name: &'static str,
    pub class: QueryClass,
    /// Parameter domain: the template is instantiated with `1..=domain`.
    pub domain: i64,
    pub sql: fn(i64) -> String,
}

/// The full shape pool over the sample datasets.
pub const SHAPES: &[ShapeSpec] = &[
    ShapeSpec {
        name: "taxi_by_vendor",
        class: QueryClass::PointLookup,
        domain: 2,
        sql: |p| format!("SELECT n.id, n.Vendor FROM NYCTaxi n WHERE n.Vendor = {p} LIMIT 3"),
    },
    ShapeSpec {
        name: "reviews_by_stars",
        class: QueryClass::PointLookup,
        domain: 5,
        sql: |p| format!("SELECT r.id FROM AmazonReview r WHERE r.overall = {p} LIMIT 3"),
    },
    ShapeSpec {
        name: "vendor_counts",
        class: QueryClass::Aggregate,
        domain: 1,
        sql: |_| {
            "SELECT n.Vendor, COUNT(*) AS c FROM NYCTaxi n \
             GROUP BY n.Vendor ORDER BY n.Vendor"
                .to_owned()
        },
    },
    ShapeSpec {
        name: "temp_histogram",
        class: QueryClass::Aggregate,
        domain: 3,
        sql: |p| {
            format!(
                "SELECT w.temp, COUNT(*) AS c FROM Weather w WHERE w.temp >= {p} \
                 GROUP BY w.temp ORDER BY w.temp LIMIT 10"
            )
        },
    },
    ShapeSpec {
        name: "fires_in_parks",
        class: QueryClass::SpatialJoin,
        domain: 1,
        sql: |_| {
            "SELECT COUNT(*) FROM Parks p, Wildfires w \
             WHERE st_contains(p.boundary, w.location)"
                .to_owned()
        },
    },
    ShapeSpec {
        name: "overlapping_rides",
        class: QueryClass::IntervalJoin,
        domain: 2,
        sql: |p| {
            format!(
                "SELECT COUNT(*) FROM NYCTaxi n1, NYCTaxi n2 \
                 WHERE n1.Vendor = 1 AND n2.Vendor = {p} \
                   AND overlapping_interval(n1.ride_interval, n2.ride_interval)"
            )
        },
    },
    ShapeSpec {
        name: "near_duplicate_reviews",
        class: QueryClass::TextJoin,
        domain: 2,
        sql: |p| {
            format!(
                "SELECT COUNT(*) FROM AmazonReview r1, AmazonReview r2 \
                 WHERE r1.overall = 5 AND r2.overall = {p} \
                   AND similarity_jaccard(r1.review, r2.review) >= 0.9"
            )
        },
    },
    ShapeSpec {
        name: "stars_join_vendors",
        class: QueryClass::EqualityJoin,
        domain: 1,
        sql: |_| {
            "SELECT r.overall, COUNT(*) AS c FROM AmazonReview r, NYCTaxi n \
             WHERE r.overall = n.Vendor GROUP BY r.overall ORDER BY r.overall"
                .to_owned()
        },
    },
];

/// How shape popularity is distributed across the pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MixProfile {
    /// Every shape equally likely — the cache-hostile baseline.
    Uniform,
    /// Zipf-distributed shape popularity with the given exponent
    /// (`s ≈ 1.1` matches the repeated-dashboard-query regime).
    ShapeSkewed(f64),
}

/// Workload parameters. Priorities cycle through `1..=priority_classes`
/// by tenant, so a 3-class mix exercises the scheduler's fair-share
/// weights.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    pub tenants: u32,
    pub ops: usize,
    pub seed: u64,
    pub profile: MixProfile,
    pub priority_classes: u32,
}

/// One generated operation.
#[derive(Clone, Debug)]
pub struct Op {
    pub tenant: u32,
    pub priority: u32,
    pub shape: &'static str,
    pub class: QueryClass,
    pub sql: String,
}

/// Zipf(s) sampler over ranks `0..n` via a precomputed CDF (the vendored
/// `rand` has no Zipf distribution). Rank 0 is the most popular.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against accumulated rounding keeping the last bound < 1.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.iter().position(|&c| u < c).unwrap_or(0)
    }
}

/// Generate the op sequence for `config`. Deterministic in the seed.
pub fn generate(config: &WorkloadConfig) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = match config.profile {
        MixProfile::ShapeSkewed(s) => Some(Zipf::new(SHAPES.len(), s)),
        MixProfile::Uniform => None,
    };
    let classes = config.priority_classes.max(1);
    (0..config.ops)
        .map(|_| {
            let shape = match &zipf {
                Some(z) => &SHAPES[z.sample(&mut rng)],
                None => &SHAPES[rng.gen_range(0..SHAPES.len())],
            };
            let tenant = rng.gen_range(0..config.tenants.max(1));
            let param = rng.gen_range(1..=shape.domain);
            Op {
                tenant,
                priority: 1 + tenant % classes,
                shape: shape.name,
                class: shape.class,
                sql: (shape.sql)(param),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn counts(ops: &[Op]) -> HashMap<&'static str, usize> {
        let mut m = HashMap::new();
        for op in ops {
            *m.entry(op.shape).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = WorkloadConfig {
            tenants: 100,
            ops: 200,
            seed: 42,
            profile: MixProfile::ShapeSkewed(1.1),
            priority_classes: 3,
        };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!((x.tenant, &x.sql), (y.tenant, &y.sql));
        }
        let c = generate(&WorkloadConfig { seed: 43, ..config });
        assert!(
            a.iter().zip(c.iter()).any(|(x, y)| x.sql != y.sql),
            "different seeds must diverge"
        );
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = SmallRng::seed_from_u64(7);
        let z = Zipf::new(8, 1.1);
        let mut hist = [0usize; 8];
        for _ in 0..4000 {
            hist[z.sample(&mut rng)] += 1;
        }
        assert!(
            hist[0] > 3 * hist[7],
            "rank 0 must dominate rank 7: {hist:?}"
        );
        assert!(
            hist[0] > hist[1] && hist[1] > hist[3],
            "monotone-ish decay: {hist:?}"
        );
    }

    #[test]
    fn skewed_profile_repeats_shapes_more_than_uniform() {
        let base = WorkloadConfig {
            tenants: 50,
            ops: 400,
            seed: 11,
            profile: MixProfile::Uniform,
            priority_classes: 3,
        };
        let uniform = counts(&generate(&base));
        let skewed = counts(&generate(&WorkloadConfig {
            profile: MixProfile::ShapeSkewed(1.2),
            ..base
        }));
        let top_uniform = uniform.values().max().copied().unwrap_or(0);
        let top_skewed = skewed.values().max().copied().unwrap_or(0);
        assert!(
            top_skewed > top_uniform,
            "skew concentrates repetitions: {top_skewed} vs {top_uniform}"
        );
        // Priorities cycle 1..=3 by tenant.
        for op in generate(&base) {
            assert!((1..=3).contains(&op.priority));
            assert_eq!(op.priority, 1 + op.tenant % 3);
        }
    }

    #[test]
    fn every_query_class_appears() {
        let ops = generate(&WorkloadConfig {
            tenants: 20,
            ops: 300,
            seed: 5,
            profile: MixProfile::Uniform,
            priority_classes: 2,
        });
        for class in [
            QueryClass::PointLookup,
            QueryClass::SpatialJoin,
            QueryClass::IntervalJoin,
            QueryClass::TextJoin,
            QueryClass::EqualityJoin,
            QueryClass::Aggregate,
        ] {
            assert!(
                ops.iter().any(|op| op.class == class),
                "class {} missing from a 300-op uniform mix",
                class.name()
            );
        }
    }
}
