//! Fixed-bucket log-scale latency histograms.
//!
//! Serving latencies (simulated-clock milliseconds) span five orders of
//! magnitude — a result-cache hit is 0 ms, a cold three-way FUDJ join can
//! be tens of seconds — so the buckets are powers of two: bucket *i*
//! holds values whose bit length is *i* (bucket 0 = exactly 0, bucket 1 =
//! 1, bucket 2 = 2..=3, …). 64 buckets cover the whole `u64` range with a
//! fixed footprint and no allocation, and quantiles are a prefix walk.
//! Quantile answers are the upper bound of the chosen bucket (≤ 2×
//! overestimate), with the exact observed maximum tracked separately.

/// Number of buckets: one per possible bit length of a `u64`, plus zero.
const BUCKETS: usize = 65;

/// A latency histogram with power-of-two buckets.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (the largest value it can hold).
    fn bucket_top(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value_ms: u64) {
        self.buckets[Self::bucket_of(value_ms)] += 1;
        self.count += 1;
        self.max = self.max.max(value_ms);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the exact max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_top(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LatencyHistogram::bucket_top(2), 3);
    }

    #[test]
    fn quantiles_walk_the_prefix() {
        let mut h = LatencyHistogram::new();
        for v in [0, 0, 1, 2, 3, 6, 7, 120, 130, 900] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 900);
        // rank 5 (p50) lands in bucket 2 (values 2..=3) → top = 3.
        assert_eq!(h.p50(), 3);
        // p99 → rank 10 → last bucket, capped at the exact max.
        assert_eq!(h.p99(), 900);
        assert_eq!(h.quantile(0.0), 0);
        // All-zero latencies (pure cache hits) report 0 everywhere.
        let mut zeros = LatencyHistogram::new();
        zeros.record(0);
        assert_eq!(zeros.p99(), 0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 300);
        assert!(a.p99() >= 300 - 45); // within the bucket top, capped at max
    }
}
