//! Sample-universe session setup shared by the serving tests, the
//! `\serve` REPL command, and the PR 9 benchmark.

use fudj_datagen::GeneratorConfig;
use fudj_joins::standard_library;
use fudj_sql::Session;
use fudj_types::Result;

/// A session over the five sample datasets with the paper's joins
/// registered — the universe every [`crate::workload`] shape targets.
/// `records` scales the base table size (Wildfires gets 2×).
pub fn sample_session(records: usize, workers: usize) -> Result<Session> {
    let parts = workers.max(1);
    let session = Session::new(workers);
    session.install_library(standard_library());
    session.register_dataset(fudj_datagen::parks(GeneratorConfig::new(
        records, 1, parts,
    ))?)?;
    session.register_dataset(fudj_datagen::wildfires(GeneratorConfig::new(
        2 * records,
        2,
        parts,
    ))?)?;
    session.register_dataset(fudj_datagen::nyctaxi(GeneratorConfig::new(
        records, 3, parts,
    ))?)?;
    session.register_dataset(fudj_datagen::amazon_reviews(GeneratorConfig::new(
        records, 4, parts,
    ))?)?;
    session.register_dataset(fudj_datagen::weather(GeneratorConfig::new(
        records, 5, parts,
    ))?)?;
    for ddl in [
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
        r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
           RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
        r#"CREATE JOIN similarity_jaccard(a: string, b: string, t: double)
           RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#,
    ] {
        session.execute(ddl)?;
    }
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_session_answers_every_workload_shape() {
        let session = sample_session(40, 2).unwrap();
        for shape in crate::workload::SHAPES {
            let sql = (shape.sql)(1);
            session
                .query(&sql)
                .unwrap_or_else(|e| panic!("shape {} failed: {e}\n{sql}", shape.name));
        }
    }
}
