//! A small counting LRU cache.
//!
//! Both serving caches (plans and results) need the same three things:
//! bounded capacity with least-recently-used eviction, exact hit/miss/
//! eviction counters for [`fudj_exec::ServingStats`], and deterministic
//! behavior (no wall-clock timestamps — recency is a logical tick).
//!
//! Capacities are small (hundreds to a million entries with `SET`-capped
//! bounds), so eviction does an O(n) scan for the minimum tick instead of
//! maintaining an intrusive list; the scan is trivially correct and the
//! differential tests lean on that.

use std::collections::HashMap;
use std::hash::Hash;

/// Hit/miss/eviction counters of one cache, monotonically increasing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A bounded map with least-recently-used eviction. Capacity 0 is a
/// disabled cache: every `get` misses and `insert` is a no-op.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
    counters: CacheCounters,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> Default for LruCache<K, V> {
    /// A disabled cache (capacity 0); size it with
    /// [`LruCache::set_capacity`].
    fn default() -> Self {
        LruCache::new(0)
    }
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Change the capacity (a live `SET`), evicting LRU entries until the
    /// cache fits.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Look up and touch. Counts a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.counters.hits += 1;
                Some(&entry.value)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency or counters (used to distinguish
    /// "absent" from "present but invalidated" before deciding what the
    /// access counts as).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|e| &e.value)
    }

    /// Insert or replace. Replacement does not evict; growth past the
    /// capacity evicts the least-recently-used entry first.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Remove one entry (invalidation — not counted as an eviction).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|e| e.value)
    }

    /// Drop everything, keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.map.remove(&k);
            self.counters.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // 1 is now most recent
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        let n = c.counters();
        assert_eq!((n.hits, n.misses, n.evictions), (3, 1, 1));
    }

    #[test]
    fn replacement_does_not_evict() {
        let mut c: LruCache<u32, u64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: LruCache<u32, u64> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.counters().misses, 1);
    }

    #[test]
    fn shrinking_capacity_evicts_lru_first() {
        let mut c: LruCache<u32, u64> = LruCache::new(4);
        for k in 0..4 {
            c.insert(k, k as u64);
        }
        assert_eq!(c.get(&0), Some(&0)); // 0 most recent
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&0).is_some(), "recent entry survives the shrink");
        assert_eq!(c.counters().evictions, 2);
    }
}
