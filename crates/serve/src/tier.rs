//! The serving tier: many logical tenants multiplexed over one engine.
//!
//! [`ServingTier`] sits between untrusted statement streams and a shared
//! [`Session`], adding the §VII-B amortization the paper argues for: the
//! translation work (parse → bind → plan) runs once per distinct query
//! shape, and repeated reads are answered from a result cache that is
//! *provably* never stale — every cached entry carries the epoch vector
//! of the tables (and DDL state) it was computed from, and ingest bumps
//! those epochs, so a lookup whose epochs moved recomputes instead of
//! serving the old answer.
//!
//! ## Cache keys
//!
//! Both caches key on `(canonical shape text, literal parameter values)`
//! — see [`fudj_sql::fingerprint`]. The full canonical text (not just its
//! 64-bit hash) is the key, so hash collisions cannot alias two shapes.
//! Result entries additionally store the epoch vector; equality of the
//! stored and current vectors is the freshness proof.
//!
//! ## Concurrency
//!
//! The tier's mutable state lives behind one mutex, released around
//! planning and execution (the expensive parts), so concurrent tenants
//! overlap in the scheduler. Epochs are read *before* execution: if
//! ingest lands mid-query the entry is tagged with the older vector and
//! the next lookup conservatively recomputes — over-invalidation is
//! possible, stale reads are not.

use crate::cache::LruCache;
use crate::histogram::LatencyHistogram;
use fudj_exec::{MetricsSnapshot, PhysicalPlan, ServingStats};
use fudj_sched::{JobState, QuerySpec};
use fudj_sql::ast::{SelectStatement, Statement};
use fudj_sql::{parse, QueryOutput, Session};
use fudj_types::{Batch, FudjError, Result, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: canonical shape text plus the literal parameter values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    text: String,
    params: Vec<Value>,
}

/// The versions a cached result was computed from. Equality with the
/// current vector proves freshness.
#[derive(Clone, Debug, PartialEq, Eq)]
struct EpochVec {
    /// (dataset, ingest epoch) for every referenced table, in first-use
    /// order with duplicates removed.
    tables: Vec<(String, u64)>,
    /// Catalog DDL epoch (dataset register/drop).
    catalog_ddl: u64,
    /// Join-registry DDL epoch (CREATE/DROP JOIN).
    registry_ddl: u64,
}

struct CachedResult {
    batch: Batch,
    snapshot: MetricsSnapshot,
    epochs: EpochVec,
}

#[derive(Default)]
struct TierState {
    plans: LruCache<CacheKey, Arc<PhysicalPlan>>,
    results: LruCache<CacheKey, CachedResult>,
    invalidations: u64,
    admissions: u64,
    rejections: u64,
    queue_depth_high_water: u64,
    global: LatencyHistogram,
    tenants: HashMap<u32, LatencyHistogram>,
}

impl TierState {
    fn stats(&self) -> ServingStats {
        let p = self.plans.counters();
        let r = self.results.counters();
        ServingStats {
            admissions: self.admissions,
            rejections: self.rejections,
            plan_cache_hits: p.hits,
            plan_cache_misses: p.misses,
            plan_cache_evictions: p.evictions,
            result_cache_hits: r.hits,
            result_cache_misses: r.misses,
            result_cache_invalidations: self.invalidations,
            result_cache_evictions: r.evictions,
            queue_depth_high_water: self.queue_depth_high_water,
        }
    }

    fn record_latency(&mut self, tenant: u32, ms: u64) {
        self.global.record(ms);
        self.tenants.entry(tenant).or_default().record(ms);
    }
}

/// A multi-tenant serving front over one [`Session`].
pub struct ServingTier {
    session: Arc<Session>,
    state: Mutex<TierState>,
}

impl ServingTier {
    pub fn new(session: Arc<Session>) -> Self {
        let config = session.serving_config();
        let mut state = TierState::default();
        state.plans.set_capacity(config.plan_cache_entries);
        state.results.set_capacity(config.result_cache_entries);
        ServingTier {
            session,
            state: Mutex::new(state),
        }
    }

    /// The underlying session (catalog, registry, scheduler).
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServingStats {
        self.lock().stats()
    }

    /// The all-tenants latency histogram.
    pub fn global_latency(&self) -> LatencyHistogram {
        self.lock().global.clone()
    }

    /// One tenant's latency histogram, if it has issued statements.
    pub fn tenant_latency(&self, tenant: u32) -> Option<LatencyHistogram> {
        self.lock().tenants.get(&tenant).cloned()
    }

    /// Tenants with recorded latencies.
    pub fn tenant_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.lock().tenants.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Serve one statement for `tenant` at scheduler priority 1.
    pub fn serve(&self, tenant: u32, sql: &str) -> Result<QueryOutput> {
        self.serve_with_priority(tenant, 1, sql)
    }

    /// Serve one statement for `tenant` with an explicit fair-share
    /// priority. SELECT and EXECUTE go through the caches and the
    /// scheduler; PREPARE registers a template; everything else (SET,
    /// DDL, EXPLAIN) passes through to the session.
    pub fn serve_with_priority(
        &self,
        tenant: u32,
        priority: u32,
        sql: &str,
    ) -> Result<QueryOutput> {
        match parse(sql)? {
            Statement::Select(sel) => self.serve_select(tenant, priority, &sel, sql),
            Statement::Execute { name, params } => {
                let template = self.session.prepared_statement(&name).ok_or_else(|| {
                    FudjError::Execution(format!(
                        "no prepared statement {name:?} (PREPARE it first)"
                    ))
                })?;
                let values = params
                    .iter()
                    .map(fudj_sql::fingerprint::literal_value)
                    .collect::<Result<Vec<_>>>()?;
                let bound = fudj_sql::substitute_params(&template, &values)?;
                self.serve_select(tenant, priority, &bound, sql)
            }
            Statement::Prepare { name, select } => {
                self.session.prepare_statement(&name, select);
                Ok(QueryOutput::Ack(format!("prepared {name}")))
            }
            _ => self.session.execute(sql),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TierState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current epoch vector for `tables` (first-use order, deduped).
    /// `None` when a table is unknown — the planner will produce the
    /// proper error on the uncached path.
    fn current_epochs(&self, tables: &[String]) -> Option<EpochVec> {
        let catalog = self.session.catalog();
        let mut seen: Vec<(String, u64)> = Vec::with_capacity(tables.len());
        for name in tables {
            if seen.iter().any(|(n, _)| n == name) {
                continue;
            }
            let dataset = catalog.get(name).ok()?;
            seen.push((name.clone(), dataset.epoch()));
        }
        Some(EpochVec {
            tables: seen,
            catalog_ddl: catalog.ddl_epoch(),
            registry_ddl: self.session.registry().ddl_epoch(),
        })
    }

    /// Drain the session's journal-driven resume results: queries (SELECT
    /// or EXECUTE) that were in flight when the previous process died,
    /// re-executed exactly once by the reopening `SET wal_dir`. A serving
    /// deployment calls this after restart to deliver the recovered
    /// results; the tier's caches start cold, so nothing stale survives.
    pub fn take_resumed(&self) -> Vec<fudj_sql::ResumedQuery> {
        self.session.take_resumed()
    }

    fn serve_select(
        &self,
        tenant: u32,
        priority: u32,
        sel: &SelectStatement,
        sql: &str,
    ) -> Result<QueryOutput> {
        let config = self.session.serving_config();
        let shape = fudj_sql::shape_of(sel);
        let key = CacheKey {
            text: shape.text,
            params: shape.params,
        };
        let epochs = self.current_epochs(&shape.tables);
        let results_on = config.result_cache_enabled && config.result_cache_entries > 0;

        {
            let mut state = self.lock();
            // Live `SET plan_cache_entries` / `result_cache_entries`.
            state.plans.set_capacity(config.plan_cache_entries);
            if results_on {
                state.results.set_capacity(config.result_cache_entries);
            }

            if results_on {
                if let Some(now) = &epochs {
                    let fresh = match state.results.peek(&key) {
                        Some(hit) if &hit.epochs == now => true,
                        Some(_) => {
                            // Present but computed from older epochs:
                            // ingest or DDL happened in between. Count the
                            // invalidation, drop the entry, recompute.
                            state.invalidations += 1;
                            state.results.remove(&key);
                            false
                        }
                        None => false,
                    };
                    if fresh {
                        // Count the hit (and touch recency) now that we
                        // know the entry is servable.
                        let hit = state.results.get(&key).expect("peeked fresh entry");
                        let batch = hit.batch.clone();
                        let mut snapshot = hit.snapshot.clone();
                        state.record_latency(tenant, 0);
                        snapshot.serving = state.stats();
                        return Ok(QueryOutput::Rows(batch, Box::new(snapshot)));
                    }
                    // Not servable: count the miss on the cache itself.
                    let _ = state.results.get(&key);
                }
            }
        }

        // Plan-cache lookup; on a miss, plan outside the lock.
        let plans_on = config.plan_cache_entries > 0;
        let cached_plan = if plans_on {
            self.lock().plans.get(&key).cloned()
        } else {
            None
        };
        let plan = match cached_plan {
            Some(plan) => plan,
            None => {
                let plan = Arc::new(self.session.plan_select(sel)?);
                if plans_on {
                    self.lock().plans.insert(key.clone(), plan.clone());
                }
                plan
            }
        };

        // Execute through the scheduler under the tenant's priority.
        let label = format!("tenant {tenant}: {}", key.text);
        let options = self.session.effective_options();
        let mut spec = QuerySpec::new(plan, label).with_priority(priority.max(1));
        if let Some(mode) = options.exec_mode {
            spec = spec.with_exec_mode(mode);
        }
        if let Some(budget) = options.memory_budget_rows {
            spec = spec.with_memory_budget_rows(budget as u64);
        }
        // Journal the statement (verbatim text) when `checkpoint_durable`
        // is armed: a crash mid-execution leaves it in-flight in the WAL,
        // and the next restart re-executes it exactly once.
        let tag = self.session.journal_submit(sql)?;
        if let Some(tag) = &tag {
            spec = spec.with_query_tag(tag.clone());
        }
        let handle = match self.session.scheduler().submit(spec) {
            Ok(handle) => {
                let queued = self
                    .session
                    .scheduler()
                    .jobs()
                    .iter()
                    .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
                    .count() as u64;
                let mut state = self.lock();
                state.admissions += 1;
                state.queue_depth_high_water = state.queue_depth_high_water.max(queued);
                handle
            }
            Err(err) => {
                self.lock().rejections += 1;
                return Err(err);
            }
        };
        let (batch, mut snapshot) = handle.wait()?;
        if let Some(tag) = &tag {
            self.session.journal_finish(tag)?;
        }

        let mut state = self.lock();
        state.record_latency(tenant, snapshot.sim_clock_ms);
        if results_on {
            if let Some(epochs) = epochs {
                state.results.insert(
                    key,
                    CachedResult {
                        batch: batch.clone(),
                        snapshot: snapshot.clone(),
                        epochs,
                    },
                );
            }
        }
        snapshot.serving = state.stats();
        Ok(QueryOutput::Rows(batch, Box::new(snapshot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_session;
    use fudj_types::Row;

    fn tier() -> ServingTier {
        ServingTier::new(Arc::new(sample_session(40, 2).unwrap()))
    }

    fn rows(out: &QueryOutput) -> Vec<Row> {
        out.batch().rows().to_vec()
    }

    #[test]
    fn repeated_query_hits_both_caches_with_identical_rows() {
        let t = tier();
        let sql = "SELECT n.Vendor, COUNT(*) AS c FROM NYCTaxi n \
                   GROUP BY n.Vendor ORDER BY n.Vendor";
        let first = t.serve(1, sql).unwrap();
        let again = t.serve(2, sql).unwrap();
        assert_eq!(rows(&first), rows(&again));
        let stats = t.stats();
        assert_eq!(stats.result_cache_hits, 1);
        assert_eq!(stats.result_cache_misses, 1);
        assert_eq!(stats.plan_cache_misses, 1);
        assert_eq!(stats.admissions, 1, "the hit never reached the engine");
        // The hit is free on the simulated clock.
        assert_eq!(t.tenant_latency(2).unwrap().max(), 0);
        assert!(t.tenant_latency(1).unwrap().max() > 0);
        // Fingerprints match modulo the tier-scoped serving counters.
        let mut a = first.metrics().fingerprint();
        let mut b = again.metrics().fingerprint();
        a.serving = Default::default();
        b.serving = Default::default();
        assert_eq!(a, b);
    }

    #[test]
    fn literal_changes_share_the_plan_shape_not_the_result() {
        let t = tier();
        let a = t
            .serve(1, "SELECT n.id FROM NYCTaxi n WHERE n.Vendor = 1 LIMIT 3")
            .unwrap();
        let b = t
            .serve(1, "SELECT n.id FROM NYCTaxi n WHERE n.Vendor = 2 LIMIT 3")
            .unwrap();
        assert_ne!(rows(&a), rows(&b));
        let stats = t.stats();
        // Same shape, different parameter: both plan-cache keys include
        // the literal values, so no false sharing of either cache.
        assert_eq!(stats.result_cache_hits, 0);
        assert_eq!(stats.plan_cache_hits, 0);
        assert_eq!(stats.admissions, 2);
        // Re-running the first literal is a double hit.
        t.serve(1, "SELECT n.id FROM NYCTaxi n  WHERE n.Vendor = 1 LIMIT 3")
            .unwrap();
        assert_eq!(t.stats().result_cache_hits, 1);
    }

    #[test]
    fn ingest_between_identical_queries_forces_recompute() {
        let t = tier();
        let sql = "SELECT COUNT(*) AS c FROM NYCTaxi n";
        let before = t.serve(7, sql).unwrap();
        t.serve(7, sql).unwrap();
        assert_eq!(t.stats().result_cache_hits, 1, "warm hit before ingest");

        // Append one row directly to the dataset (the serving tier must
        // see the epoch move no matter who ingests).
        let taxi = t.session().catalog().get("NYCTaxi").unwrap();
        let mut values = taxi.all_rows()[0].clone().into_values();
        values[0] = Value::Uuid(0xfeed_beef);
        taxi.insert(Row::new(values)).unwrap();

        let after = t.serve(7, sql).unwrap();
        let stats = t.stats();
        assert_eq!(stats.result_cache_invalidations, 1, "epoch moved");
        assert_eq!(stats.result_cache_hits, 1, "stale entry must not hit");
        let n0 = rows(&before)[0].get(0).as_i64().unwrap();
        let n1 = rows(&after)[0].get(0).as_i64().unwrap();
        assert_eq!(n1, n0 + 1, "recomputed answer sees the new row");

        // And the refreshed entry serves hits again.
        t.serve(7, sql).unwrap();
        assert_eq!(t.stats().result_cache_hits, 2);
    }

    #[test]
    fn ddl_bumps_invalidate_without_table_writes() {
        let t = tier();
        let sql = "SELECT COUNT(*) FROM Parks p, Wildfires w \
                   WHERE st_contains(p.boundary, w.location)";
        t.serve(1, sql).unwrap();
        t.serve(1, sql).unwrap();
        assert_eq!(t.stats().result_cache_hits, 1);
        // CREATE JOIN bumps the registry DDL epoch: cached results may
        // have been planned against the old registry.
        t.serve(
            1,
            r#"CREATE JOIN jaccard_sim2(a: string, b: string, t: double)
               RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#,
        )
        .unwrap();
        t.serve(1, sql).unwrap();
        assert_eq!(t.stats().result_cache_invalidations, 1);
    }

    #[test]
    fn set_result_cache_off_bypasses_without_stale_risk() {
        let t = tier();
        let sql = "SELECT r.overall, COUNT(*) AS c FROM AmazonReview r \
                   GROUP BY r.overall ORDER BY r.overall";
        t.serve(1, sql).unwrap();
        t.session().execute("SET result_cache = off").unwrap();
        let a = t.serve(1, sql).unwrap();
        let b = t.serve(1, sql).unwrap();
        assert_eq!(rows(&a), rows(&b));
        let stats = t.stats();
        assert_eq!(stats.result_cache_hits, 0, "off means every run executes");
        assert_eq!(stats.admissions, 3);
        // Re-enabling serves the surviving (still-fresh) entry again.
        t.session().execute("SET result_cache = on").unwrap();
        t.serve(1, sql).unwrap();
        t.serve(1, sql).unwrap();
        assert_eq!(t.stats().result_cache_hits, 2, "re-enabled and warm");
    }

    #[test]
    fn prepared_statements_serve_through_the_caches() {
        let t = tier();
        t.serve(
            3,
            "PREPARE by_vendor AS SELECT COUNT(*) AS c FROM NYCTaxi n WHERE n.Vendor = $1",
        )
        .unwrap();
        let a = t.serve(3, "EXECUTE by_vendor(1)").unwrap();
        let b = t.serve(4, "EXECUTE by_vendor(1)").unwrap();
        assert_eq!(rows(&a), rows(&b));
        assert_eq!(t.stats().result_cache_hits, 1);
        // EXECUTE and the equivalent literal SELECT share one shape.
        t.serve(5, "SELECT COUNT(*) AS c FROM NYCTaxi n WHERE n.Vendor = 1")
            .unwrap();
        assert_eq!(t.stats().result_cache_hits, 2);
    }

    #[test]
    fn admission_rejections_are_counted() {
        let t = tier();
        t.session().execute("SET memory_quota_rows = 10").unwrap();
        t.session().execute("SET memory_budget_rows = 100").unwrap();
        let err = t
            .serve(1, "SELECT n.id FROM NYCTaxi n LIMIT 2")
            .unwrap_err();
        assert!(matches!(err, FudjError::Admission(_)), "{err}");
        assert_eq!(t.stats().rejections, 1);
        assert_eq!(t.stats().admissions, 0);
    }

    #[test]
    fn plan_cache_evicts_at_capacity() {
        let t = tier();
        t.session().execute("SET plan_cache_entries = 2").unwrap();
        t.session().execute("SET result_cache = off").unwrap();
        for vendor in [1, 2, 1, 2] {
            t.serve(
                1,
                &format!("SELECT n.id FROM NYCTaxi n WHERE n.Vendor = {vendor} LIMIT 2"),
            )
            .unwrap();
        }
        assert_eq!(t.stats().plan_cache_hits, 2, "both keys fit");
        // A third distinct key evicts the LRU one.
        t.serve(
            1,
            "SELECT r.id FROM AmazonReview r WHERE r.overall = 5 LIMIT 2",
        )
        .unwrap();
        assert_eq!(t.stats().plan_cache_evictions, 1);
    }
}
