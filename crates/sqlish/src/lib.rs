//! SQL front end: lexer, parser, binder, and a session façade.
//!
//! The supported subset is exactly what the paper's statements need:
//!
//! * `CREATE JOIN name(arg: type, ...) RETURNS boolean AS "class" AT lib`
//!   and `DROP JOIN name(...)` — the §VI-A lifecycle (Query 4);
//! * `SELECT ... FROM ds1 a [, ds2 b [, ds3 c]] WHERE ... [GROUP BY ...]
//!   [ORDER BY ... [DESC]] [LIMIT n]` — the shape of Queries 1–3 and 5,
//!   with scalar built-ins and aggregate functions;
//! * `EXPLAIN SELECT ...` — renders the optimized physical plan, which is
//!   how the tests (and a curious user) confirm a FUDJ operator was chosen;
//! * `PREPARE name AS SELECT ... $1 ...` / `EXECUTE name(values...)` —
//!   parse once, run many times; the serving tier keys its plan and result
//!   caches on the [`fingerprint`] of the normalized statement.
//!
//! [`Session`] wires the catalog, the join registry, the planner, and a
//! cluster together: `session.execute(sql)` goes from text to a result
//! batch.

pub mod ast;
pub mod binder;
mod durability;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod session;

pub use fingerprint::{
    param_count, shape_of, statement_fingerprint, substitute_params, StatementShape,
};
pub use parser::parse;
pub use session::{QueryOutput, ResumedQuery, ServingConfig, Session};
