//! Session-level durability wiring.
//!
//! Bridges the storage crate's crash-consistent [`DurableStore`] into the
//! live session objects: sink adapters WAL every catalog/registry mutation
//! and dataset append *before* it takes effect (log-before-apply), and
//! [`replay_into`] rebuilds catalog + registry from a [`RecoveredState`]
//! on `SET wal_dir`. The session attaches the sinks only *after* replay,
//! so recovered state is never re-logged.

use fudj_core::{
    GuardConfig, JoinDefinition, JoinRegistry, RegistryEvent, RegistrySink, UdfPolicy,
};
use fudj_storage::wal::{parse_data_type, GuardSpec, JoinSpec, WalRecord};
use fudj_storage::{
    AppendSink, Catalog, CatalogSink, Dataset, DatasetBuilder, DurableStore, RecoveredState,
    SnapshotState, SnapshotTable,
};
use fudj_types::{Field, FudjError, Result, Row, Schema};
use std::sync::Arc;

/// The one sink adapter: logs every mutation it observes to the WAL and
/// vetoes the mutation when the log write fails (so a full disk or an
/// injected crash aborts the DDL/insert with state untouched).
pub(crate) struct WalHook {
    store: Arc<DurableStore>,
}

impl WalHook {
    pub(crate) fn new(store: Arc<DurableStore>) -> Arc<Self> {
        Arc::new(WalHook { store })
    }
}

impl AppendSink for WalHook {
    fn on_append(&self, table: &str, rows: &[Row]) -> Result<()> {
        self.store.append(&WalRecord::Append {
            table: table.to_owned(),
            rows: rows.to_vec(),
        })
    }
}

impl CatalogSink for WalHook {
    fn on_register(&self, dataset: &Arc<Dataset>) -> Result<()> {
        self.store.append(&create_table_record(dataset))?;
        let rows = dataset.all_rows();
        if !rows.is_empty() {
            self.store.append(&WalRecord::Append {
                table: dataset.name().to_owned(),
                rows,
            })?;
        }
        // Future inserts into this dataset go through the WAL too.
        dataset.attach_sink(WalHook::new(self.store.clone()));
        Ok(())
    }

    fn on_drop(&self, name: &str) -> Result<()> {
        self.store.append(&WalRecord::DropTable {
            name: name.to_owned(),
        })
    }
}

/// Journal sink handed to the executor through a
/// [`fudj_exec::QueryTag`]: each resumable stage boundary of a journaled
/// query logs a `StageCommitted` record *after* its checkpoint frames
/// are durable, through the `journal:stage` crash site.
pub(crate) struct JournalHook {
    store: Arc<DurableStore>,
}

impl JournalHook {
    pub(crate) fn new(store: Arc<DurableStore>) -> Arc<Self> {
        Arc::new(JournalHook { store })
    }
}

impl fudj_exec::QueryJournal for JournalHook {
    fn stage_committed(
        &self,
        fingerprint: u64,
        stage: &str,
        counters: &[(String, u64)],
        phases: &[String],
    ) -> Result<()> {
        self.store.append_journal(
            &WalRecord::StageCommitted {
                fingerprint,
                stage: stage.to_owned(),
                counters: counters.to_vec(),
                phases: phases.to_vec(),
            },
            "journal:stage",
        )
    }
}

impl RegistrySink for WalHook {
    fn on_event(&self, event: RegistryEvent<'_>) -> Result<()> {
        let record = match event {
            RegistryEvent::Created(def) => WalRecord::CreateJoin(join_spec_of(def)),
            RegistryEvent::Dropped(name) => WalRecord::DropJoin {
                name: name.to_owned(),
            },
        };
        self.store.append(&record)
    }
}

/// A [`JoinDefinition`] flattened into its WAL form.
pub(crate) fn join_spec_of(def: &JoinDefinition) -> JoinSpec {
    let guard = def.guard();
    JoinSpec {
        name: def.name().to_owned(),
        library: def.library().to_owned(),
        class: def.class().to_owned(),
        arg_types: def.arg_types().iter().map(|t| t.to_string()).collect(),
        guard: GuardSpec {
            policy: guard.policy.to_string(),
            call_budget_ms: guard.limits.call_budget_ms,
            max_pplan_bytes: guard.limits.max_pplan_bytes as u64,
            max_buckets_per_key: guard.limits.max_buckets_per_key as u64,
            max_assign_fanout: guard.limits.max_assign_fanout,
            check_sample: guard.limits.check_sample,
        },
        memory_budget_rows: def.memory_budget_rows().map(|n| n as u64),
    }
}

/// Inverse of [`join_spec_of`]: re-create the join in `registry`.
fn recreate_join(registry: &JoinRegistry, spec: &JoinSpec) -> Result<()> {
    let arg_types = spec
        .arg_types
        .iter()
        .map(|t| parse_data_type(t))
        .collect::<Result<Vec<_>>>()?;
    let mut guard = GuardConfig::default();
    guard.policy = UdfPolicy::parse(&spec.guard.policy).ok_or_else(|| {
        FudjError::Storage(format!(
            "recovered join {:?} has unknown guard policy {:?}",
            spec.name, spec.guard.policy
        ))
    })?;
    guard.limits.call_budget_ms = spec.guard.call_budget_ms;
    guard.limits.max_pplan_bytes = spec.guard.max_pplan_bytes as usize;
    guard.limits.max_buckets_per_key = spec.guard.max_buckets_per_key as usize;
    guard.limits.max_assign_fanout = spec.guard.max_assign_fanout;
    guard.limits.check_sample = spec.guard.check_sample;
    registry.create_join_full(
        &spec.name,
        arg_types,
        &spec.class,
        &spec.library,
        guard,
        spec.memory_budget_rows.map(|n| n as usize),
    )?;
    Ok(())
}

/// The `CREATE TABLE` WAL record for a live dataset.
fn create_table_record(dataset: &Dataset) -> WalRecord {
    let schema = dataset.schema();
    WalRecord::CreateTable {
        name: dataset.name().to_owned(),
        fields: schema
            .fields()
            .iter()
            .map(|f| (f.name.clone(), f.data_type.to_string()))
            .collect(),
        primary_key: schema.fields()[dataset.primary_key()].name.clone(),
        partitions: dataset.partition_count() as u32,
    }
}

/// Rebuild a live [`Dataset`] from its snapshot/replay image.
fn rebuild_dataset(table: &SnapshotTable) -> Result<Dataset> {
    let fields = table
        .fields
        .iter()
        .map(|(name, ty)| parse_data_type(ty).map(|t| Field::new(name.clone(), t)))
        .collect::<Result<Vec<_>>>()?;
    let dataset = DatasetBuilder::new(&table.name, Schema::shared(fields))
        .primary_key(&table.primary_key)
        .partitions(table.partitions as usize)
        .build()?;
    dataset.insert_all(table.rows.iter().cloned())?;
    Ok(dataset)
}

/// Apply a recovered state to the live catalog and registry. Durable state
/// is the source of truth: a recovered table or join whose name is already
/// live (e.g. re-registered fixture data before `SET wal_dir`) replaces
/// the in-memory version.
pub(crate) fn replay_into(
    state: &RecoveredState,
    catalog: &Catalog,
    registry: &JoinRegistry,
) -> Result<()> {
    for table in &state.tables {
        if catalog.get(&table.name).is_ok() {
            catalog.drop_dataset(&table.name)?;
        }
        catalog.register(rebuild_dataset(table)?)?;
    }
    for spec in &state.joins {
        if registry.get(&spec.name).is_some() {
            registry.drop_join(&spec.name)?;
        }
        recreate_join(registry, spec)?;
    }
    Ok(())
}

/// WAL the live objects that predate the store (registered before `SET
/// wal_dir` and absent from the recovered state), so the log is a complete
/// image of the session.
pub(crate) fn seed_existing(
    store: &DurableStore,
    recovered: &RecoveredState,
    catalog: &Catalog,
    registry: &JoinRegistry,
) -> Result<()> {
    for name in catalog.names() {
        if recovered.tables.iter().any(|t| t.name == name) {
            continue;
        }
        let dataset = catalog.get(&name)?;
        store.append(&create_table_record(&dataset))?;
        let rows = dataset.all_rows();
        if !rows.is_empty() {
            store.append(&WalRecord::Append { table: name, rows })?;
        }
    }
    for name in registry.join_names() {
        if recovered.joins.iter().any(|j| j.name == name) {
            continue;
        }
        if let Some(def) = registry.get(&name) {
            store.append(&WalRecord::CreateJoin(join_spec_of(&def)))?;
        }
    }
    Ok(())
}

/// A point-in-time snapshot image of the live catalog + registry (the
/// store stamps `last_seq` itself when it writes the snapshot).
pub(crate) fn snapshot_state(catalog: &Catalog, registry: &JoinRegistry) -> Result<SnapshotState> {
    let mut tables = Vec::new();
    for name in catalog.names() {
        let dataset = catalog.get(&name)?;
        let schema = dataset.schema();
        tables.push(SnapshotTable {
            name,
            fields: schema
                .fields()
                .iter()
                .map(|f| (f.name.clone(), f.data_type.to_string()))
                .collect(),
            primary_key: schema.fields()[dataset.primary_key()].name.clone(),
            partitions: dataset.partition_count() as u32,
            rows: dataset.all_rows(),
        });
    }
    let joins = registry
        .join_names()
        .iter()
        .filter_map(|n| registry.get(n))
        .map(|def| join_spec_of(&def))
        .collect();
    Ok(SnapshotState {
        last_seq: 0,
        joins,
        tables,
    })
}
