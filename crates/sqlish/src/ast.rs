//! Abstract syntax for the SQL subset.

use fudj_types::DataType;

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE JOIN name(a: t, ...) RETURNS boolean AS "class" AT library
    /// [WITH (key = value, ...)]` — options configure the guardrail layer
    /// (policy, budgets) and are interpreted by the session.
    CreateJoin {
        name: String,
        args: Vec<(String, DataType)>,
        class: String,
        library: String,
        options: Vec<(String, String)>,
    },
    /// `DROP JOIN name(a: t, ...)`
    DropJoin { name: String },
    /// `SET key = value` — session/scheduler knobs (admission limits,
    /// priorities, deadlines, spill budgets), interpreted by the session.
    Set { key: String, value: String },
    /// `SELECT ...`
    Select(SelectStatement),
    /// `EXPLAIN [ANALYZE] SELECT ...`
    Explain {
        select: SelectStatement,
        analyze: bool,
    },
    /// `PREPARE name AS SELECT ...` — parse once, run many times with
    /// `EXECUTE`. The SELECT may reference positional parameters `$1…$n`.
    Prepare {
        name: String,
        select: SelectStatement,
    },
    /// `EXECUTE name [(value, ...)]` — run a prepared statement with the
    /// given literal parameter values substituted for `$1…$n`.
    Execute { name: String, params: Vec<AstExpr> },
}

/// A `SELECT` query.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStatement {
    pub items: Vec<SelectItem>,
    /// `FROM dataset alias` entries (comma join, like the paper's queries).
    pub from: Vec<TableRef>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub order_by: Vec<(AstExpr, bool)>, // (expr, descending)
    pub limit: Option<usize>,
}

/// One select-list item.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    pub expr: AstExpr,
    pub alias: Option<String>,
}

/// A `FROM` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    pub dataset: String,
    pub alias: String,
}

/// Comparison / logical / arithmetic operators (mirrors the planner's
/// `BinOp`, kept separate so the AST has no planner dependency direction
/// issues).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstBinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified column (`p.id`) or bare identifier.
    Column(String),
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    BoolLit(bool),
    /// Positional parameter `$n` (1-based) of a prepared statement;
    /// substituted with a literal before binding.
    Param(u32),
    Binary {
        op: AstBinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    /// Function call; aggregates (`count`, `sum`, `avg`, `min`, `max`) are
    /// recognized during binding. `count(*)` / `count(1)` parse to
    /// `CountStar`.
    Call {
        name: String,
        args: Vec<AstExpr>,
    },
    /// `COUNT(*)` / `COUNT(1)`.
    CountStar,
    /// `SELECT *` (select-list only; expanded by the binder).
    Wildcard,
}

impl AstExpr {
    /// `a AND b` helper.
    pub fn and(self, other: AstExpr) -> AstExpr {
        AstExpr::Binary {
            op: AstBinOp::And,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Whether the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::CountStar => true,
            AstExpr::Call { name, args } => {
                is_aggregate_name(name) || args.iter().any(AstExpr::contains_aggregate)
            }
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            AstExpr::Not(inner) => inner.contains_aggregate(),
            _ => false,
        }
    }
}

/// Whether `name` is an aggregate function.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "count" | "sum" | "avg" | "min" | "max"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        assert!(AstExpr::CountStar.contains_aggregate());
        assert!(AstExpr::Call {
            name: "AVG".into(),
            args: vec![AstExpr::Column("x".into())]
        }
        .contains_aggregate());
        assert!(!AstExpr::Call {
            name: "st_contains".into(),
            args: vec![AstExpr::Column("x".into())]
        }
        .contains_aggregate());
        let nested = AstExpr::Binary {
            op: AstBinOp::Add,
            left: Box::new(AstExpr::IntLit(1)),
            right: Box::new(AstExpr::CountStar),
        };
        assert!(nested.contains_aggregate());
    }
}
