//! Statement fingerprinting: normalized query shapes for the serving tier.
//!
//! Two SELECTs that differ only in literal values (or whitespace, or
//! comment noise) share one *shape*: a canonical rendering of the AST with
//! every literal replaced by an ordinal placeholder. The serving tier keys
//! its plan cache on `(shape, parameter values)` and its result cache on
//! `(shape, parameter values, table epochs)` — so "the same query again"
//! is recognized structurally, not textually.

use crate::ast::{AstBinOp, AstExpr, SelectStatement};
use fudj_types::{FudjError, Result, Value};

/// The normalized shape of a SELECT: a stable hash plus the canonical
/// text it was computed from, the literal values that were parameterized
/// out (in traversal order), and the referenced dataset names.
#[derive(Clone, Debug, PartialEq)]
pub struct StatementShape {
    /// FNV-1a hash of [`Self::text`] — the plan/result cache key stem.
    pub shape: u64,
    /// Canonical rendering with literals replaced by `?1`, `?2`, ….
    pub text: String,
    /// The literal values in placeholder order (`?1` first).
    pub params: Vec<Value>,
    /// Dataset names referenced in FROM, in query order (duplicates kept:
    /// a self-join reads the table once per reference, but the epoch set
    /// dedups naturally through the catalog).
    pub tables: Vec<String>,
}

/// Compute the normalized shape of a SELECT. Literals become ordered
/// placeholders; identifiers, aliases, and clause structure are preserved
/// (they change the result schema, so they are part of the shape).
pub fn shape_of(sel: &SelectStatement) -> StatementShape {
    let mut w = ShapeWriter::default();
    w.select(sel);
    let shape = fnv1a(w.text.as_bytes());
    StatementShape {
        shape,
        text: w.text,
        params: w.params,
        tables: sel.from.iter().map(|t| t.dataset.clone()).collect(),
    }
}

/// Highest `$n` referenced anywhere in the statement (0 = none).
pub fn param_count(sel: &SelectStatement) -> u32 {
    fn walk(e: &AstExpr, max: &mut u32) {
        match e {
            AstExpr::Param(n) => *max = (*max).max(*n),
            AstExpr::Binary { left, right, .. } => {
                walk(left, max);
                walk(right, max);
            }
            AstExpr::Not(inner) => walk(inner, max),
            AstExpr::Call { args, .. } => args.iter().for_each(|a| walk(a, max)),
            _ => {}
        }
    }
    let mut max = 0;
    for_each_expr(sel, &mut |e| walk(e, &mut max));
    max
}

/// Substitute positional parameters `$1…$n` with literal values,
/// producing a parameter-free SELECT ready for binding. Errors on arity
/// mismatch and on value types that have no literal spelling.
pub fn substitute_params(sel: &SelectStatement, params: &[Value]) -> Result<SelectStatement> {
    let needed = param_count(sel);
    if needed as usize != params.len() {
        return Err(FudjError::Execution(format!(
            "prepared statement takes {needed} parameter{}, got {}",
            if needed == 1 { "" } else { "s" },
            params.len()
        )));
    }
    let mut out = sel.clone();
    let mut err = None;
    let subst = &mut |e: &mut AstExpr| {
        if let AstExpr::Param(n) = e {
            match literal_of(&params[(*n - 1) as usize]) {
                Ok(lit) => *e = lit,
                Err(problem) => err = err.take().or(Some(problem)),
            }
        }
    };
    for_each_expr_mut(&mut out, &mut |top| visit_mut(top, subst));
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Convert a literal expression (an `EXECUTE` argument, by parser
/// guarantee) into a parameter value.
pub fn literal_value(e: &AstExpr) -> Result<Value> {
    Ok(match e {
        AstExpr::IntLit(v) => Value::Int64(*v),
        AstExpr::FloatLit(v) => Value::Float64(*v),
        AstExpr::StrLit(s) => Value::str(s),
        AstExpr::BoolLit(b) => Value::Bool(*b),
        other => {
            return Err(FudjError::Execution(format!(
                "EXECUTE parameters must be literals, got {other:?}"
            )))
        }
    })
}

fn literal_of(v: &Value) -> Result<AstExpr> {
    Ok(match v {
        Value::Int64(n) => AstExpr::IntLit(*n),
        Value::Float64(f) => AstExpr::FloatLit(*f),
        Value::Str(s) => AstExpr::StrLit(s.to_string()),
        Value::Bool(b) => AstExpr::BoolLit(*b),
        other => {
            return Err(FudjError::Execution(format!(
                "parameter value {other} has no literal form"
            )))
        }
    })
}

fn visit_mut(e: &mut AstExpr, f: &mut impl FnMut(&mut AstExpr)) {
    f(e);
    match e {
        AstExpr::Binary { left, right, .. } => {
            visit_mut(left, f);
            visit_mut(right, f);
        }
        AstExpr::Not(inner) => visit_mut(inner, f),
        AstExpr::Call { args, .. } => args.iter_mut().for_each(|a| visit_mut(a, f)),
        _ => {}
    }
}

fn for_each_expr(sel: &SelectStatement, f: &mut impl FnMut(&AstExpr)) {
    for item in &sel.items {
        f(&item.expr);
    }
    if let Some(w) = &sel.where_clause {
        f(w);
    }
    for g in &sel.group_by {
        f(g);
    }
    for (e, _) in &sel.order_by {
        f(e);
    }
}

fn for_each_expr_mut(sel: &mut SelectStatement, f: &mut impl FnMut(&mut AstExpr)) {
    for item in &mut sel.items {
        f(&mut item.expr);
    }
    if let Some(w) = &mut sel.where_clause {
        f(w);
    }
    for g in &mut sel.group_by {
        f(g);
    }
    for (e, _) in &mut sel.order_by {
        f(e);
    }
}

/// Canonical-text writer: literals become `?k` (collected into `params`),
/// function names lowercase, everything else rendered structurally.
#[derive(Default)]
struct ShapeWriter {
    text: String,
    params: Vec<Value>,
}

impl ShapeWriter {
    fn push(&mut self, s: &str) {
        self.text.push_str(s);
    }

    fn select(&mut self, sel: &SelectStatement) {
        self.push("SELECT ");
        for (i, item) in sel.items.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.expr(&item.expr);
            if let Some(alias) = &item.alias {
                self.push(" AS ");
                self.push(alias);
            }
        }
        self.push(" FROM ");
        for (i, t) in sel.from.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.push(&t.dataset);
            self.push(" ");
            self.push(&t.alias);
        }
        if let Some(w) = &sel.where_clause {
            self.push(" WHERE ");
            self.expr(w);
        }
        if !sel.group_by.is_empty() {
            self.push(" GROUP BY ");
            for (i, g) in sel.group_by.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.expr(g);
            }
        }
        if !sel.order_by.is_empty() {
            self.push(" ORDER BY ");
            for (i, (e, desc)) in sel.order_by.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.expr(e);
                self.push(if *desc { " DESC" } else { " ASC" });
            }
        }
        if let Some(n) = sel.limit {
            // LIMIT shapes the result, so it stays literal in the shape:
            // `LIMIT 5` and `LIMIT 500` are different statements.
            self.push(&format!(" LIMIT {n}"));
        }
    }

    fn literal(&mut self, v: Value) {
        self.params.push(v);
        self.push(&format!("?{}", self.params.len()));
    }

    fn expr(&mut self, e: &AstExpr) {
        match e {
            AstExpr::Column(name) => self.push(name),
            AstExpr::IntLit(v) => self.literal(Value::Int64(*v)),
            AstExpr::FloatLit(v) => self.literal(Value::Float64(*v)),
            AstExpr::StrLit(s) => self.literal(Value::str(s)),
            AstExpr::BoolLit(b) => self.literal(Value::Bool(*b)),
            AstExpr::Param(n) => self.push(&format!("${n}")),
            AstExpr::Binary { op, left, right } => {
                self.push("(");
                self.expr(left);
                self.push(op_text(*op));
                self.expr(right);
                self.push(")");
            }
            AstExpr::Not(inner) => {
                self.push("NOT (");
                self.expr(inner);
                self.push(")");
            }
            AstExpr::Call { name, args } => {
                self.push(&name.to_ascii_lowercase());
                self.push("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(a);
                }
                self.push(")");
            }
            AstExpr::CountStar => self.push("COUNT(*)"),
            AstExpr::Wildcard => self.push("*"),
        }
    }
}

fn op_text(op: AstBinOp) -> &'static str {
    match op {
        AstBinOp::Eq => " = ",
        AstBinOp::NotEq => " <> ",
        AstBinOp::Lt => " < ",
        AstBinOp::LtEq => " <= ",
        AstBinOp::Gt => " > ",
        AstBinOp::GtEq => " >= ",
        AstBinOp::And => " AND ",
        AstBinOp::Or => " OR ",
        AstBinOp::Add => " + ",
        AstBinOp::Sub => " - ",
        AstBinOp::Mul => " * ",
        AstBinOp::Div => " / ",
    }
}

/// Stable fingerprint of a statement's verbatim text. Keys the query
/// journal across restarts: the resuming process recomputes the same
/// value from the journaled SQL, so durable checkpoints written under
/// this fingerprint are found again after a crash.
pub fn statement_fingerprint(sql: &str) -> u64 {
    fnv1a(sql.as_bytes())
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across runs and
/// platforms (unlike `DefaultHasher`, whose seed is unspecified).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;

    fn sel(sql: &str) -> SelectStatement {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            Statement::Prepare { select, .. } => select,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn literals_parameterize_to_the_same_shape() {
        let a = shape_of(&sel("SELECT w.id FROM Wildfires w WHERE w.acres >= 100"));
        let b = shape_of(&sel(
            "select   w.id from Wildfires w /* c */ where w.acres >= 250",
        ));
        assert_eq!(a.shape, b.shape, "{} vs {}", a.text, b.text);
        assert_eq!(a.params, vec![Value::Int64(100)]);
        assert_eq!(b.params, vec![Value::Int64(250)]);
        assert_eq!(a.tables, vec!["Wildfires"]);
    }

    #[test]
    fn different_structure_means_different_shape() {
        let a = shape_of(&sel("SELECT w.id FROM Wildfires w WHERE w.acres >= 100"));
        let b = shape_of(&sel("SELECT w.id FROM Wildfires w WHERE w.acres > 100"));
        let c = shape_of(&sel("SELECT w.id FROM Wildfires w"));
        let d = shape_of(&sel(
            "SELECT w.id AS fire FROM Wildfires w WHERE w.acres >= 100",
        ));
        let e = shape_of(&sel(
            "SELECT w.id FROM Wildfires w WHERE w.acres >= 100 LIMIT 3",
        ));
        assert_ne!(a.shape, b.shape, "operator is structural");
        assert_ne!(a.shape, c.shape, "WHERE presence is structural");
        assert_ne!(a.shape, d.shape, "aliases change the output schema");
        assert_ne!(a.shape, e.shape, "LIMIT is structural");
    }

    #[test]
    fn params_count_and_substitute() {
        let s = sel("SELECT w.id FROM Wildfires w WHERE w.acres >= $1 AND w.name = $2");
        assert_eq!(param_count(&s), 2);
        let bound = substitute_params(&s, &[Value::Float64(2.5), Value::str("creek")]).unwrap();
        assert_eq!(param_count(&bound), 0);
        let shape = shape_of(&bound);
        assert_eq!(shape.params, vec![Value::Float64(2.5), Value::str("creek")]);
        // Substituted form matches the same query written with literals.
        let direct = sel("SELECT w.id FROM Wildfires w WHERE w.acres >= 2.5 AND w.name = 'creek'");
        assert_eq!(shape.shape, shape_of(&direct).shape);

        // Arity mismatches are clean errors.
        let err = substitute_params(&s, &[Value::Int64(1)]).unwrap_err();
        assert!(err.to_string().contains("takes 2 parameters"), "{err}");
        let none = sel("SELECT w.id FROM Wildfires w");
        assert!(substitute_params(&none, &[Value::Int64(1)]).is_err());
    }

    #[test]
    fn unsubstituted_shape_keeps_placeholders_distinct_from_literals() {
        let with_param = shape_of(&sel("SELECT w.id FROM Wildfires w WHERE w.acres >= $1"));
        let with_lit = shape_of(&sel("SELECT w.id FROM Wildfires w WHERE w.acres >= 5"));
        assert_ne!(with_param.shape, with_lit.shape);
        assert!(with_param.params.is_empty());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
