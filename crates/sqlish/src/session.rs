//! The session façade: SQL text in, results out.

use crate::ast::{SelectStatement, Statement};
use crate::binder::bind_select;
use crate::durability::{self, JournalHook, WalHook};
use crate::fingerprint;
use crate::parser::parse;
use fudj_core::{GuardConfig, GuardMode, JoinLibrary, JoinRegistry, UdfPolicy};
use fudj_exec::{
    Cluster, CounterSeed, ExecMode, MetricsSnapshot, NetworkModel, PhysicalPlan, QueryTag,
    ResumeSpec, WorkerInfo,
};
use fudj_planner::PlanOptions;
use fudj_sched::{JobHandle, QuerySpec, Scheduler};
use fudj_storage::wal::WalRecord;
use fudj_storage::CheckpointPolicy;
use fudj_storage::{
    fold_journal, Catalog, Dataset, DiskFs, DurableStore, FaultFs, PendingQuery,
    StorageFaultConfig, Vfs, CHECKPOINT_DIR,
};
use fudj_types::{Batch, FudjError, Result};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Interpret the `WITH (key = value, ...)` options of `CREATE JOIN` into a
/// [`GuardConfig`] plus the join's default spill budget. Unknown keys and
/// malformed values are catalog errors so typos fail the DDL instead of
/// silently running unguarded.
fn join_options(options: &[(String, String)]) -> Result<(GuardConfig, Option<usize>)> {
    let mut config = GuardConfig::default();
    let mut budget = None;
    for (key, value) in options {
        let numeric = |what: &str| {
            value.parse::<u64>().map_err(|_| {
                FudjError::Catalog(format!("join option {key} expects {what}, got {value:?}"))
            })
        };
        match key.as_str() {
            "policy" => {
                config.policy = UdfPolicy::parse(value).ok_or_else(|| {
                    FudjError::Catalog(format!(
                        "unknown UDF policy {value:?} (expected failfast, quarantine, \
                         or fallback)"
                    ))
                })?;
            }
            "budget_ms" | "call_budget_ms" => config.limits.call_budget_ms = numeric("ms")?,
            "max_pplan_bytes" => config.limits.max_pplan_bytes = numeric("bytes")? as usize,
            "max_buckets_per_key" => {
                config.limits.max_buckets_per_key = numeric("a count")? as usize
            }
            "max_assign_fanout" => config.limits.max_assign_fanout = numeric("a count")?,
            "check_sample" => config.limits.check_sample = numeric("a count")?,
            "memory_budget_rows" => {
                let rows = numeric("a row count")? as usize;
                budget = (rows > 0).then_some(rows);
            }
            other => {
                return Err(FudjError::Catalog(format!(
                    "unknown join option {other:?} (expected policy, budget_ms, \
                     max_pplan_bytes, max_buckets_per_key, max_assign_fanout, \
                     check_sample, or memory_budget_rows)"
                )))
            }
        }
    }
    Ok((config, budget))
}

/// Per-session variables set with `SET key = value`; applied to queries
/// planned after the `SET`.
#[derive(Clone, Copy, Debug, Default)]
struct SessionVars {
    /// Fair-share weight for submitted queries (0 = scheduler default).
    priority: u32,
    /// Simulated-clock deadline for submitted queries.
    deadline_ms: Option<u64>,
    /// Per-worker spill budget, overriding planner options and any
    /// per-join default.
    memory_budget_rows: Option<usize>,
    /// Hybrid-hash spill fan-out (sub-partitions per pass).
    spill_fanout: Option<usize>,
    /// Hybrid-hash recursive-repartition depth cap.
    spill_recursion_limit: Option<usize>,
    /// Execution mode (row vs columnar); the executor default applies
    /// when unset.
    exec_mode: Option<ExecMode>,
    /// WAL fsync cadence (`SET durability`): 1 = every record, N = every
    /// N records, 0 = never. Remembered here so it also applies to a
    /// store opened *after* the `SET`.
    durability_sync_every: Option<u64>,
    /// Serving-tier plan-cache capacity (`SET plan_cache_entries`).
    plan_cache_entries: Option<usize>,
    /// Serving-tier result-cache capacity (`SET result_cache_entries`).
    result_cache_entries: Option<usize>,
    /// Serving-tier result cache switch (`SET result_cache = on|off`).
    result_cache_enabled: Option<bool>,
    /// Whether stage checkpoints of journaled queries write through to
    /// the durable store (`SET checkpoint_durable = on|off`). Remembered
    /// here so it also arms a store opened *after* the `SET`.
    checkpoint_durable: bool,
}

/// Stages a crashed query can resume from: their checkpoints carry the
/// complete post-boundary input (`join:combine` holds the joined rows
/// before duplicate handling, `agg:shuffle` the shuffled partials before
/// the final merge). Earlier boundaries need in-memory state a restart
/// cannot reconstruct, so they fall back to full replay.
const RESUMABLE_STAGES: &[&str] = &["join:combine", "agg:shuffle"];

/// Outcome of one journal-driven resume performed while reopening a WAL:
/// a query that was submitted but not finished when the process died,
/// re-executed to completion (exactly-once — its `QueryFinished` record
/// is logged before the result is handed over).
#[derive(Debug)]
pub struct ResumedQuery {
    /// Stable statement fingerprint from the journal.
    pub fingerprint: u64,
    /// The journaled SQL text, verbatim.
    pub sql: String,
    /// Stage boundary the re-execution restarted from; `None` means no
    /// resumable boundary had committed (full replay). The executor may
    /// still fall back to full replay when the checkpoints under this
    /// boundary turn out lost or corrupt — `RecoveryStats` counts that.
    pub resumed_from: Option<String>,
    /// The re-executed result (rows + metrics — the snapshot carries the
    /// journal's counter seed, so it equals an uninterrupted run's), or
    /// why the resume failed.
    pub result: Result<(Batch, Box<MetricsSnapshot>)>,
}

/// Largest accepted cache capacity: caches are per-tier in-memory maps,
/// so an absurd `SET` is a knob typo, not a provisioning request.
pub const MAX_CACHE_ENTRIES: usize = 1 << 20;

/// Serving-tier cache configuration, assembled from the session's `SET`
/// variables (engine defaults where unset). Read by `fudj-serve` before
/// each statement so live `SET` changes take effect immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServingConfig {
    /// Plan-cache LRU capacity (entries).
    pub plan_cache_entries: usize,
    /// Result-cache LRU capacity (entries).
    pub result_cache_entries: usize,
    /// Whether result caching is enabled at all.
    pub result_cache_enabled: bool,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            plan_cache_entries: 256,
            result_cache_entries: 1024,
            result_cache_enabled: true,
        }
    }
}

/// Result of executing one statement.
#[derive(Debug)]
pub enum QueryOutput {
    /// SELECT result with its execution metrics (boxed: the snapshot is
    /// an order of magnitude larger than the other variants).
    Rows(Batch, Box<MetricsSnapshot>),
    /// DDL acknowledgement.
    Ack(String),
    /// EXPLAIN output.
    Plan(String),
}

impl QueryOutput {
    /// The batch of a `Rows` output.
    ///
    /// # Panics
    /// Panics when the statement did not produce rows.
    pub fn batch(&self) -> &Batch {
        match self {
            QueryOutput::Rows(batch, _) => batch,
            other => panic!("statement produced {other:?}, not rows"),
        }
    }

    /// The metrics of a `Rows` output.
    ///
    /// # Panics
    /// Panics when the statement did not produce rows.
    pub fn metrics(&self) -> &MetricsSnapshot {
        match self {
            QueryOutput::Rows(_, m) => m,
            other => panic!("statement produced {other:?}, not rows"),
        }
    }
}

/// A database session: catalog + join registry + cluster + planner options
/// + the concurrent query scheduler behind `\submit`.
pub struct Session {
    catalog: Catalog,
    registry: JoinRegistry,
    cluster: Cluster,
    options: PlanOptions,
    scheduler: Scheduler,
    /// `SET`-table knobs; a `Mutex` because [`Session::execute`] takes
    /// `&self` (sessions are shared with in-flight jobs).
    vars: Mutex<SessionVars>,
    /// The crash-consistent store behind `SET wal_dir`, when open.
    durable: Mutex<Option<Arc<DurableStore>>>,
    /// Armed storage-fault plan (`\chaos disk`): the *next* `SET wal_dir`
    /// opens its store over a fault-injecting in-memory filesystem.
    disk_faults: Mutex<Option<StorageFaultConfig>>,
    /// The simulated disk behind the last fault-armed `SET wal_dir`, keyed
    /// by dir. Reopening the same dir reuses it — that reopen *is* the
    /// process restart, so the surviving bytes (and the query journal)
    /// must still be there for resume.
    fault_disk: Mutex<Option<(String, Arc<FaultFs>)>>,
    /// Named templates from `PREPARE`, consumed by `EXECUTE`.
    prepared: Mutex<HashMap<String, SelectStatement>>,
    /// Results of journal-driven resumes from the last `SET wal_dir`,
    /// drained by [`Session::take_resumed`].
    resumed: Mutex<Vec<ResumedQuery>>,
}

impl Session {
    /// Session over a fresh catalog/registry and a cluster of `workers`.
    pub fn new(workers: usize) -> Self {
        let cluster = Cluster::new(workers);
        Session {
            catalog: Catalog::new(),
            registry: JoinRegistry::new(),
            scheduler: Scheduler::new(cluster.clone()),
            cluster,
            options: PlanOptions::default(),
            vars: Mutex::new(SessionVars::default()),
            durable: Mutex::new(None),
            disk_faults: Mutex::new(None),
            fault_disk: Mutex::new(None),
            prepared: Mutex::new(HashMap::new()),
            resumed: Mutex::new(Vec::new()),
        }
    }

    /// The catalog (register datasets here).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The join registry.
    pub fn registry(&self) -> &JoinRegistry {
        &self.registry
    }

    /// Register a dataset (convenience over `catalog()`).
    pub fn register_dataset(&self, dataset: Dataset) -> Result<Arc<Dataset>> {
        self.catalog.register(dataset)
    }

    /// Upload a join library (the paper's out-of-band JAR upload; `CREATE
    /// JOIN` statements then reference it by name).
    pub fn install_library(&self, library: JoinLibrary) {
        self.registry.install_library(library);
    }

    /// Planner options (on-top forcing, parameter injection, overrides).
    pub fn options(&self) -> &PlanOptions {
        &self.options
    }

    /// Replace the planner options.
    pub fn set_options(&mut self, options: PlanOptions) {
        self.options = options;
    }

    /// How subsequent queries guard user-defined joins: per-join config
    /// (the default), a session-wide override, or no guarding at all.
    pub fn set_guard(&mut self, guard: GuardMode) {
        self.options.guard = guard;
    }

    /// The active guard mode.
    pub fn guard(&self) -> &GuardMode {
        &self.options.guard
    }

    /// Attach a simulated network: subsequent queries charge wall-clock
    /// time for every byte their exchanges move between workers. The
    /// cluster's worker pool (and thus worker thread identity) is kept.
    pub fn set_network(&mut self, network: Option<NetworkModel>) {
        self.cluster.set_network(network);
        self.scheduler.set_cluster(self.cluster.clone());
    }

    /// Arm (or disarm, with `None`) a seeded fault plan: subsequent
    /// queries run under deterministic fault injection and recovery. The
    /// cluster's worker pool is kept, like [`Session::set_network`].
    pub fn set_faults(&mut self, faults: Option<fudj_exec::FaultConfig>) {
        self.cluster.set_faults(faults);
        self.scheduler.set_cluster(self.cluster.clone());
    }

    /// The armed fault plan, if any.
    pub fn faults(&self) -> Option<fudj_exec::FaultConfig> {
        self.cluster.faults()
    }

    /// The cluster this session executes on (a clone shares the same
    /// worker pool — it is the same simulated cluster).
    pub fn cluster(&self) -> Cluster {
        self.cluster.clone()
    }

    /// The concurrent query scheduler (`\submit` / `\jobs` / `\cancel`).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Per-worker membership state and failure counts (`\workers`).
    pub fn workers_status(&self) -> Vec<WorkerInfo> {
        self.cluster.workers_status()
    }

    /// Permanently remove worker `w` from the routing set. Its partitions
    /// deterministically rendezvous-rehash onto the survivors; removing
    /// the last active worker is an error.
    pub fn decommission_worker(&self, w: usize) -> Result<()> {
        self.cluster.decommission_worker(w)
    }

    /// Re-activate a previously decommissioned/dead/quarantined worker
    /// slot (the replacement node adopts the slot's identity). Errors
    /// when the cluster is already at full strength.
    pub fn add_worker(&self) -> Result<usize> {
        self.cluster.add_worker()
    }

    fn vars(&self) -> SessionVars {
        *self.vars.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The serving-tier cache configuration under the current `SET`
    /// variables (engine defaults where unset).
    pub fn serving_config(&self) -> ServingConfig {
        let vars = self.vars();
        let defaults = ServingConfig::default();
        ServingConfig {
            plan_cache_entries: vars
                .plan_cache_entries
                .unwrap_or(defaults.plan_cache_entries),
            result_cache_entries: vars
                .result_cache_entries
                .unwrap_or(defaults.result_cache_entries),
            result_cache_enabled: vars
                .result_cache_enabled
                .unwrap_or(defaults.result_cache_enabled),
        }
    }

    /// Store a `PREPARE`d SELECT template under `name` (replacing any
    /// previous statement of that name, like PostgreSQL's `DEALLOCATE` +
    /// re-`PREPARE` shorthand).
    pub fn prepare_statement(&self, name: &str, select: SelectStatement) {
        self.prepared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_owned(), select);
    }

    /// Look up a `PREPARE`d template by name.
    pub fn prepared_statement(&self, name: &str) -> Option<SelectStatement> {
        self.prepared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// The open durable store, if `SET wal_dir` is active.
    pub fn durable(&self) -> Option<Arc<DurableStore>> {
        self.durable
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drain the results of journal-driven resumes performed by the last
    /// `SET wal_dir`: each entry is a query the previous process had
    /// submitted but not finished, now re-executed exactly once.
    pub fn take_resumed(&self) -> Vec<ResumedQuery> {
        std::mem::take(&mut *self.resumed.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Arm (or with `None`, disarm) deterministic storage faults. Takes
    /// effect at the *next* `SET wal_dir`, which then opens its store over
    /// a fault-injecting in-memory filesystem instead of the real disk.
    pub fn set_disk_faults(&self, faults: Option<StorageFaultConfig>) {
        *self.disk_faults.lock().unwrap_or_else(|e| e.into_inner()) = faults;
    }

    /// The armed storage-fault plan, if any.
    pub fn disk_faults(&self) -> Option<StorageFaultConfig> {
        self.disk_faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Open (or re-open) a crash-consistent store at `dir`: replay its
    /// committed state into the catalog/registry, then WAL every
    /// subsequent catalog, registry, and append mutation. Equivalent to
    /// `SET wal_dir = <dir>`.
    pub fn open_wal(&self, dir: &str) -> Result<()> {
        let armed = self.disk_faults();
        let vfs: Arc<dyn Vfs> = {
            let mut disk = self.fault_disk.lock().unwrap_or_else(|e| e.into_inner());
            match (disk.as_ref(), armed) {
                // Reopening the dir whose simulated disk we already hold:
                // this reopen *is* the process restart. Keep the surviving
                // bytes, clear the crash poison, disarm the fired crash
                // point — `open_wal_with` then journal-resumes whatever
                // the previous incarnation left unfinished. A freshly
                // armed plan still applies (a resume can crash again).
                (Some((d, fs)), cfg) if d == dir => {
                    let fs = fs.clone();
                    fs.reopen_after_crash();
                    fs.set_config(cfg.unwrap_or_else(|| StorageFaultConfig::quiet(0)));
                    fs
                }
                (_, Some(cfg)) => {
                    let fs = FaultFs::new(cfg);
                    *disk = Some((dir.to_owned(), fs.clone()));
                    fs
                }
                (_, None) => Arc::new(DiskFs::new()),
            }
        };
        // A crash plan is one-shot: it poisons the store this open
        // creates, and the reopen that follows plays the restart — so
        // consume it now rather than crash the resume at the same site.
        if self.disk_faults().is_some_and(|c| c.crash_point.is_some()) {
            self.set_disk_faults(None);
        }
        self.open_wal_with(dir, vfs)
    }

    /// [`Session::open_wal`] over a caller-supplied filesystem — the
    /// crash-restart harness passes the same [`FaultFs`] across simulated
    /// process restarts.
    pub fn open_wal_with(&self, dir: &str, vfs: Arc<dyn Vfs>) -> Result<()> {
        self.close_wal();
        let (store, recovered) = DurableStore::open(dir, vfs)?;
        let store = Arc::new(store);
        if let Some(n) = self.vars().durability_sync_every {
            store.set_sync_every(n);
        }
        // Replay first, attach sinks after: recovered state must not be
        // re-logged.
        durability::replay_into(&recovered, &self.catalog, &self.registry)?;
        durability::seed_existing(&store, &recovered, &self.catalog, &self.registry)?;
        let hook = WalHook::new(store.clone());
        for name in self.catalog.names() {
            if let Ok(dataset) = self.catalog.get(&name) {
                dataset.attach_sink(hook.clone());
            }
        }
        self.catalog.set_sink(Some(hook.clone()));
        self.registry.set_sink(Some(hook));
        *self.durable.lock().unwrap_or_else(|e| e.into_inner()) = Some(store.clone());

        // Crash-restart resumption: fold the recovered query journal into
        // pending queries and re-execute each from its last durably
        // committed stage boundary. The durable checkpoint tier attaches
        // first (resume reads its frames); when only the resume needed it
        // — `checkpoint_durable` is off this session — it detaches again
        // and the checkpoint policy reverts.
        let pending = fold_journal(&recovered.journal);
        let durable_vars = self.vars().checkpoint_durable;
        let prior_policy = self.cluster.checkpoint_policy();
        if durable_vars || !pending.is_empty() {
            self.attach_checkpoint_tier(&store)?;
        }
        if !pending.is_empty() {
            let results: Vec<ResumedQuery> = pending
                .into_iter()
                .map(|query| self.resume_pending(&store, query))
                .collect();
            self.resumed
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(results);
            if !durable_vars {
                self.cluster.checkpoints().detach_durable();
                self.cluster.set_checkpoint_policy(prior_policy);
            }
        }
        Ok(())
    }

    /// Route the cluster's checkpoint store through the durable store's
    /// filesystem (same fault plan covers WAL and checkpoints), enabling
    /// checkpointing when it was off — a durable tier with no boundaries
    /// to persist would be inert.
    fn attach_checkpoint_tier(&self, store: &DurableStore) -> Result<()> {
        let dir = store.dir().join(CHECKPOINT_DIR);
        self.cluster
            .checkpoints()
            .attach_durable(store.vfs(), dir)?;
        if matches!(self.cluster.checkpoint_policy(), CheckpointPolicy::Off) {
            self.cluster.set_checkpoint_policy(CheckpointPolicy::All);
        }
        Ok(())
    }

    /// Re-execute one unfinished journaled query during WAL reopen.
    fn resume_pending(&self, store: &Arc<DurableStore>, query: PendingQuery) -> ResumedQuery {
        let resumed_from = query
            .committed
            .iter()
            .rev()
            .find(|c| RESUMABLE_STAGES.contains(&c.stage.as_str()))
            .map(|c| c.stage.clone());
        let result = self.resume_execute(store, &query);
        ResumedQuery {
            fingerprint: query.fingerprint,
            sql: query.sql,
            resumed_from,
            result,
        }
    }

    /// Plan the journaled SQL under its journaled options and execute it
    /// with a resume spec pointing at the last committed resumable stage
    /// (none committed → full replay). Logs `QueryFinished` *before*
    /// returning the rows: a crash in between re-runs the query on the
    /// next reopen, but a delivered result is never re-delivered.
    fn resume_execute(
        &self,
        store: &Arc<DurableStore>,
        query: &PendingQuery,
    ) -> Result<(Batch, Box<MetricsSnapshot>)> {
        let sel = match parse(&query.sql)? {
            Statement::Select(sel) => sel,
            // In-flight EXECUTEs journal their verbatim text; the serving
            // deployment re-PREPAREs its templates at boot (before `SET
            // wal_dir`), so the name resolves again here.
            Statement::Execute { name, params } => {
                let template = self.prepared_statement(&name).ok_or_else(|| {
                    FudjError::Storage(format!(
                        "journaled EXECUTE references unprepared statement {name:?} \
                         (re-PREPARE it before SET wal_dir)"
                    ))
                })?;
                let values = params
                    .iter()
                    .map(fingerprint::literal_value)
                    .collect::<Result<Vec<_>>>()?;
                fingerprint::substitute_params(&template, &values)?
            }
            other => {
                return Err(FudjError::Storage(format!(
                    "query journal replayed a non-SELECT statement: {other:?}"
                )))
            }
        };
        let options = self.options_from_journal(&query.options);
        let logical = bind_select(&sel, &self.catalog)?;
        let physical = fudj_planner::plan(logical, &self.registry, &options)?;
        let resume = query
            .committed
            .iter()
            .rev()
            .find(|c| RESUMABLE_STAGES.contains(&c.stage.as_str()))
            .map(|c| ResumeSpec {
                stage: c.stage.clone(),
                seed: CounterSeed {
                    counters: c.counters.clone(),
                    phases: c.phases.clone(),
                },
            });
        let tag = QueryTag {
            fingerprint: query.fingerprint,
            journal: Some(JournalHook::new(store.clone())),
            resume,
        };
        let (batch, snapshot) =
            self.execute_physical_tagged(&physical, options.exec_mode, Some(tag))?;
        store.append_journal(
            &WalRecord::QueryFinished {
                fingerprint: query.fingerprint,
            },
            "journal:finish",
        )?;
        Ok((batch, Box::new(snapshot)))
    }

    /// The session knobs a resumed query must be re-planned under,
    /// serialized into the `QuerySubmitted` journal record.
    fn journal_options(&self) -> Vec<(String, String)> {
        let options = self.effective_options();
        let mut pairs = Vec::new();
        if let Some(mode) = options.exec_mode {
            let name = match mode {
                ExecMode::Row => "row",
                ExecMode::Columnar => "columnar",
            };
            pairs.push(("exec_mode".to_owned(), name.to_owned()));
        }
        if let Some(n) = options.memory_budget_rows {
            pairs.push(("memory_budget_rows".to_owned(), n.to_string()));
        }
        if let Some(n) = options.spill_fanout {
            pairs.push(("spill_fanout".to_owned(), n.to_string()));
        }
        if let Some(n) = options.spill_recursion_limit {
            pairs.push(("spill_recursion_limit".to_owned(), n.to_string()));
        }
        pairs
    }

    /// Invert [`Session::journal_options`]: the session's base planner
    /// options with the journaled knobs re-applied. Unknown keys are
    /// ignored (a newer process replaying an older journal).
    fn options_from_journal(&self, pairs: &[(String, String)]) -> PlanOptions {
        let mut options = self.options.clone();
        for (key, value) in pairs {
            match key.as_str() {
                "exec_mode" => options.exec_mode = ExecMode::parse(value),
                "memory_budget_rows" => options.memory_budget_rows = value.parse().ok(),
                "spill_fanout" => options.spill_fanout = value.parse().ok(),
                "spill_recursion_limit" => options.spill_recursion_limit = value.parse().ok(),
                _ => {}
            }
        }
        options
    }

    /// Detach the durable store (`SET wal_dir = off`). Already-logged
    /// state stays on disk; subsequent mutations are in-memory only.
    pub fn close_wal(&self) {
        let mut durable = self.durable.lock().unwrap_or_else(|e| e.into_inner());
        if durable.take().is_some() {
            self.catalog.set_sink(None);
            self.registry.set_sink(None);
            for name in self.catalog.names() {
                if let Ok(dataset) = self.catalog.get(&name) {
                    dataset.detach_sink();
                }
            }
        }
    }

    /// Write an atomic snapshot of the current catalog + registry and
    /// compact the WAL behind it (`\persist` in the REPL).
    pub fn persist(&self) -> Result<()> {
        let store = self.durable().ok_or_else(|| {
            FudjError::Storage("no wal_dir open (SET wal_dir = <path> first)".into())
        })?;
        let state = durability::snapshot_state(&self.catalog, &self.registry)?;
        store.snapshot(&state)
    }

    /// Planner options with the session's `SET` variables merged in.
    pub fn effective_options(&self) -> PlanOptions {
        let vars = self.vars();
        let mut options = self.options.clone();
        if vars.memory_budget_rows.is_some() {
            options.memory_budget_rows = vars.memory_budget_rows;
        }
        if vars.spill_fanout.is_some() {
            options.spill_fanout = vars.spill_fanout;
        }
        if vars.spill_recursion_limit.is_some() {
            options.spill_recursion_limit = vars.spill_recursion_limit;
        }
        if vars.exec_mode.is_some() {
            options.exec_mode = vars.exec_mode;
        }
        options
    }

    /// Bind and optimize a SELECT under the current `SET` variables —
    /// the parse→bind→plan work the serving tier's plan cache amortizes.
    pub fn plan_select(&self, sel: &SelectStatement) -> Result<PhysicalPlan> {
        let logical = bind_select(sel, &self.catalog)?;
        fudj_planner::plan(logical, &self.registry, &self.effective_options())
    }

    /// Execute an already-planned query on the session's cluster, with
    /// durability counters stamped in (the path `execute` and the serving
    /// tier's cache-miss recompute share).
    pub fn execute_physical(
        &self,
        physical: &PhysicalPlan,
        exec_mode: Option<ExecMode>,
    ) -> Result<(Batch, MetricsSnapshot)> {
        self.execute_physical_tagged(physical, exec_mode, None)
    }

    /// [`Session::execute_physical`] plus a crash-tolerance [`QueryTag`]:
    /// the tag pins the checkpoint namespace to the statement fingerprint,
    /// routes stage commits into the query journal, and — when resuming —
    /// carries the journal's resume point.
    pub fn execute_physical_tagged(
        &self,
        physical: &PhysicalPlan,
        exec_mode: Option<ExecMode>,
        tag: Option<QueryTag>,
    ) -> Result<(Batch, MetricsSnapshot)> {
        let mode = exec_mode.unwrap_or_else(ExecMode::from_env);
        let (batch, metrics) = self
            .cluster
            .execute_with_opts(physical, None, None, mode, tag)?;
        let mut snapshot = metrics.snapshot();
        if let Some(store) = self.durable() {
            // Durability is session-scoped (one WAL outlives many
            // queries), so the session stamps the store's counters
            // into each snapshot rather than the executor.
            snapshot.durability = store.stats();
        }
        Ok((batch, snapshot))
    }

    fn run_select(&self, sel: &SelectStatement) -> Result<QueryOutput> {
        let physical = self.plan_select(sel)?;
        let exec_mode = self.effective_options().exec_mode;
        let (batch, snapshot) = self.execute_physical(&physical, exec_mode)?;
        Ok(QueryOutput::Rows(batch, Box::new(snapshot)))
    }

    /// [`Session::run_select`] with the query journal armed when `SET
    /// checkpoint_durable = on` over an open WAL: `QuerySubmitted` is
    /// logged before execution, stage boundaries journal through the
    /// [`QueryTag`], and `QueryFinished` seals the entry after the
    /// result materializes. A crash anywhere in between leaves a journal
    /// the next `SET wal_dir` resumes from.
    fn run_select_journaled(&self, sel: &SelectStatement, sql: &str) -> Result<QueryOutput> {
        let physical = self.plan_select(sel)?;
        let exec_mode = self.effective_options().exec_mode;
        let Some(tag) = self.journal_submit(sql)? else {
            let (batch, snapshot) = self.execute_physical(&physical, exec_mode)?;
            return Ok(QueryOutput::Rows(batch, Box::new(snapshot)));
        };
        let (batch, snapshot) =
            self.execute_physical_tagged(&physical, exec_mode, Some(tag.clone()))?;
        self.journal_finish(&tag)?;
        Ok(QueryOutput::Rows(batch, Box::new(snapshot)))
    }

    /// When the query journal is armed (`SET checkpoint_durable = on`
    /// over an open WAL), log `QuerySubmitted` for `sql` and return the
    /// [`QueryTag`] its execution must carry; `None` when journaling is
    /// off. The caller seals the entry with [`Session::journal_finish`]
    /// once the result has been delivered — a crash in between leaves a
    /// journal the next `SET wal_dir` resumes from.
    pub fn journal_submit(&self, sql: &str) -> Result<Option<QueryTag>> {
        let store = match self.durable() {
            Some(store) if self.vars().checkpoint_durable => store,
            _ => return Ok(None),
        };
        let fingerprint = fingerprint::statement_fingerprint(sql);
        store.append_journal(
            &WalRecord::QuerySubmitted {
                fingerprint,
                sql: sql.to_owned(),
                options: self.journal_options(),
            },
            "journal:submit",
        )?;
        Ok(Some(QueryTag {
            fingerprint,
            journal: Some(JournalHook::new(store)),
            resume: None,
        }))
    }

    /// Seal a journaled query: its result has been delivered, so the
    /// journal entry and its durable checkpoints are dead on replay.
    pub fn journal_finish(&self, tag: &QueryTag) -> Result<()> {
        if let Some(store) = self.durable() {
            store.append_journal(
                &WalRecord::QueryFinished {
                    fingerprint: tag.fingerprint,
                },
                "journal:finish",
            )?;
        }
        Ok(())
    }

    /// Apply one `SET key = value`. Scheduler knobs take effect for every
    /// session sharing the scheduler; query knobs (priority, deadline,
    /// spill budget) stick to this session's subsequent statements.
    fn apply_set(&self, key: &str, value: &str) -> Result<QueryOutput> {
        let numeric = || {
            value.parse::<u64>().map_err(|_| {
                FudjError::Execution(format!("SET {key} expects a number, got {value:?}"))
            })
        };
        // `0`, `none`, and `off` clear optional knobs.
        let cleared =
            value == "0" || value.eq_ignore_ascii_case("none") || value.eq_ignore_ascii_case("off");
        let optional =
            || -> Result<Option<u64>> { Ok(if cleared { None } else { Some(numeric()?) }) };
        let mut vars = self.vars.lock().unwrap_or_else(|e| e.into_inner());
        match key {
            "max_inflight_queries" => {
                let n = numeric()?.max(1) as usize;
                self.scheduler.reconfigure(|c| c.max_inflight = n);
            }
            "admission_queue_limit" => {
                let n = numeric()? as usize;
                self.scheduler.reconfigure(|c| c.queue_limit = n);
            }
            "memory_quota_rows" => {
                let quota = optional()?;
                self.scheduler.reconfigure(|c| c.memory_quota_rows = quota);
            }
            "stage_slots" => {
                let n = numeric()?.max(1) as usize;
                self.scheduler.reconfigure(|c| c.stage_slots = n);
            }
            "priority" => vars.priority = numeric()? as u32,
            "deadline_ms" => vars.deadline_ms = optional()?,
            "memory_budget_rows" => vars.memory_budget_rows = optional()?.map(|n| n as usize),
            "spill_fanout" => vars.spill_fanout = optional()?.map(|n| n as usize),
            "exec_mode" => {
                vars.exec_mode = if cleared {
                    None
                } else {
                    Some(ExecMode::parse(value).ok_or_else(|| {
                        FudjError::Execution(format!(
                            "SET exec_mode expects row or columnar, got {value:?}"
                        ))
                    })?)
                };
            }
            "spill_recursion_limit" => {
                // 0 is a meaningful cap (never recurse, straight to the
                // block-nested-loop fallback), so only none/off clear it.
                vars.spill_recursion_limit =
                    if value.eq_ignore_ascii_case("none") || value.eq_ignore_ascii_case("off") {
                        None
                    } else {
                        Some(numeric()? as usize)
                    };
            }
            // Recovery knobs live on the shared cluster (its recovery
            // layer is one `Arc` across every clone), so no
            // scheduler re-attach is needed.
            "checkpoint_budget_bytes" => self.cluster.set_checkpoint_budget(optional()?),
            "checkpoint_stages" => {
                let policy = if cleared {
                    CheckpointPolicy::Off
                } else if value.eq_ignore_ascii_case("all") {
                    CheckpointPolicy::All
                } else {
                    CheckpointPolicy::Stages(
                        value
                            .split(',')
                            .map(|s| s.trim().to_owned())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                };
                self.cluster.set_checkpoint_policy(policy);
            }
            "checkpoint_durable" => {
                let on = if value.eq_ignore_ascii_case("on") {
                    true
                } else if value.eq_ignore_ascii_case("off") {
                    false
                } else {
                    return Err(FudjError::Execution(format!(
                        "SET checkpoint_durable expects on or off, got {value:?}"
                    )));
                };
                vars.checkpoint_durable = on;
                drop(vars);
                if on {
                    // Arms immediately when a WAL is already open;
                    // otherwise the next `SET wal_dir` attaches the tier
                    // (the knob is remembered, like durability).
                    if let Some(store) = self.durable() {
                        self.attach_checkpoint_tier(&store)?;
                    }
                } else {
                    self.cluster.checkpoints().detach_durable();
                }
            }
            "worker_quarantine_threshold" => {
                self.cluster
                    .set_quarantine_threshold(optional()?.unwrap_or(0));
            }
            "plan_cache_entries" | "result_cache_entries" => {
                // 0 is a meaningful capacity (cache disabled), so like
                // spill_recursion_limit only none/off restore the default.
                let capped =
                    if value.eq_ignore_ascii_case("none") || value.eq_ignore_ascii_case("off") {
                        None
                    } else {
                        let n = numeric()?;
                        if n as usize > MAX_CACHE_ENTRIES {
                            return Err(FudjError::Execution(format!(
                                "SET {key} expects at most {MAX_CACHE_ENTRIES} entries, got {n}"
                            )));
                        }
                        Some(n as usize)
                    };
                if key == "plan_cache_entries" {
                    vars.plan_cache_entries = capped;
                } else {
                    vars.result_cache_entries = capped;
                }
            }
            "result_cache" => {
                vars.result_cache_enabled = if value.eq_ignore_ascii_case("on") {
                    Some(true)
                } else if value.eq_ignore_ascii_case("off") {
                    Some(false)
                } else {
                    return Err(FudjError::Execution(format!(
                        "SET result_cache expects on or off, got {value:?}"
                    )));
                };
            }
            "wal_dir" => {
                drop(vars);
                if cleared {
                    self.close_wal();
                } else {
                    self.open_wal(value)?;
                }
            }
            "durability" => {
                // sync = fsync every record, N = every N records,
                // off/none = never (the OS decides when bytes land).
                let n = if value.eq_ignore_ascii_case("sync") {
                    1
                } else if cleared {
                    0
                } else {
                    numeric()?
                };
                vars.durability_sync_every = Some(n);
                drop(vars);
                if let Some(store) = self.durable() {
                    store.set_sync_every(n);
                }
            }
            other => {
                return Err(FudjError::Execution(format!(
                    "unknown SET variable {other:?} (expected max_inflight_queries, \
                     admission_queue_limit, memory_quota_rows, stage_slots, priority, \
                     deadline_ms, memory_budget_rows, spill_fanout, \
                     spill_recursion_limit, exec_mode, checkpoint_budget_bytes, \
                     checkpoint_stages, checkpoint_durable, \
                     worker_quarantine_threshold, wal_dir, durability, \
                     plan_cache_entries, result_cache_entries, or result_cache)"
                )))
            }
        }
        Ok(QueryOutput::Ack(format!("set {key} = {value}")))
    }

    /// Submit a SELECT for asynchronous scheduled execution. The query is
    /// planned now (under the current `SET` variables) and competes with
    /// other in-flight queries under the scheduler's admission and
    /// fair-share policies.
    pub fn submit(&self, sql: &str) -> Result<JobHandle> {
        match parse(sql)? {
            Statement::Select(sel) => {
                let logical = bind_select(&sel, &self.catalog)?;
                let options = self.effective_options();
                let physical = fudj_planner::plan(logical, &self.registry, &options)?;
                let vars = self.vars();
                let label: String = sql.split_whitespace().collect::<Vec<_>>().join(" ");
                let label = if label.chars().count() > 48 {
                    let head: String = label.chars().take(47).collect();
                    format!("{head}…")
                } else {
                    label
                };
                let mut spec = QuerySpec::new(Arc::new(physical), label);
                if vars.priority > 0 {
                    spec = spec.with_priority(vars.priority);
                }
                if let Some(deadline) = vars.deadline_ms {
                    spec = spec.with_deadline_ms(deadline);
                }
                if let Some(budget) = options.memory_budget_rows {
                    spec = spec.with_memory_budget_rows(budget as u64);
                }
                if let Some(mode) = options.exec_mode {
                    spec = spec.with_exec_mode(mode);
                }
                self.scheduler.submit(spec)
            }
            other => Err(FudjError::Execution(format!(
                "only SELECT statements can be submitted, got {other:?}"
            ))),
        }
    }

    /// Parse, plan, and execute one statement.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput> {
        match parse(sql)? {
            Statement::CreateJoin {
                name,
                args,
                class,
                library,
                options,
            } => {
                let (guard, budget) = join_options(&options)?;
                let arg_types = args.into_iter().map(|(_, t)| t).collect();
                self.registry
                    .create_join_full(&name, arg_types, class, library, guard, budget)?;
                Ok(QueryOutput::Ack(format!("created join {name}")))
            }
            Statement::DropJoin { name } => {
                self.registry.drop_join(&name)?;
                Ok(QueryOutput::Ack(format!("dropped join {name}")))
            }
            Statement::Set { key, value } => self.apply_set(&key, &value),
            Statement::Select(sel) => self.run_select_journaled(&sel, sql),
            Statement::Prepare { name, select } => {
                let params = fingerprint::param_count(&select);
                self.prepare_statement(&name, select);
                Ok(QueryOutput::Ack(format!(
                    "prepared {name} ({params} parameter{})",
                    if params == 1 { "" } else { "s" }
                )))
            }
            Statement::Execute { name, params } => {
                let select = self.prepared_statement(&name).ok_or_else(|| {
                    FudjError::Execution(format!(
                        "no prepared statement {name:?} (PREPARE it first)"
                    ))
                })?;
                let values = params
                    .iter()
                    .map(fingerprint::literal_value)
                    .collect::<Result<Vec<_>>>()?;
                let bound = fingerprint::substitute_params(&select, &values)?;
                self.run_select(&bound)
            }
            Statement::Explain { select, analyze } => {
                let logical = bind_select(&select, &self.catalog)?;
                let options = self.effective_options();
                let physical = fudj_planner::plan(logical, &self.registry, &options)?;
                let mut text = physical.explain();
                if analyze {
                    use std::fmt::Write as _;
                    let start = std::time::Instant::now();
                    let (batch, metrics) =
                        self.cluster.execute_mode(&physical, options.exec_mode)?;
                    let elapsed = start.elapsed();
                    let m = metrics.snapshot();
                    let _ = writeln!(text, "---");
                    let _ = writeln!(text, "rows: {}; total: {elapsed:?}", batch.len());
                    for (name, d) in &m.phases {
                        let _ = writeln!(text, "phase {name}: {d:?}");
                    }
                    let _ = writeln!(
                        text,
                        "network: {} bytes shuffled, {} broadcast, {} state; \
                         verify calls: {}; dedup rejections: {}; spilled rows: {}",
                        m.bytes_shuffled,
                        m.bytes_broadcast,
                        m.state_bytes,
                        m.verify_calls,
                        m.dedup_rejections,
                        m.spilled_rows,
                    );
                    if let Some(store) = self.durable() {
                        let d = store.stats();
                        let _ = writeln!(
                            text,
                            "durability: {} wal records ({} bytes), {} fsyncs, \
                             {} snapshots, {} replayed",
                            d.wal_records_appended,
                            d.wal_bytes_appended,
                            d.wal_fsyncs,
                            d.snapshots_written,
                            d.wal_records_replayed,
                        );
                    }
                }
                Ok(QueryOutput::Plan(text))
            }
        }
    }

    /// Execute and return the result batch (convenience for SELECTs).
    pub fn query(&self, sql: &str) -> Result<Batch> {
        match self.execute(sql)? {
            QueryOutput::Rows(batch, _) => Ok(batch),
            other => Err(fudj_types::FudjError::Execution(format!(
                "expected a SELECT, statement produced {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_datagen::{amazon_reviews, nyctaxi, parks, wildfires, GeneratorConfig};
    use fudj_joins::standard_library;
    use fudj_types::Value;

    fn session() -> Session {
        let s = Session::new(3);
        s.install_library(standard_library());
        s.register_dataset(parks(GeneratorConfig::new(120, 1, 3)).unwrap())
            .unwrap();
        s.register_dataset(wildfires(GeneratorConfig::new(300, 2, 3)).unwrap())
            .unwrap();
        s.register_dataset(nyctaxi(GeneratorConfig::new(150, 3, 3)).unwrap())
            .unwrap();
        s.register_dataset(amazon_reviews(GeneratorConfig::new(120, 4, 3)).unwrap())
            .unwrap();
        s
    }

    #[test]
    fn create_and_drop_join_via_sql() {
        let s = session();
        let out = s
            .execute(
                r#"CREATE JOIN st_contains(a: polygon, b: point)
                   RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins;"#,
            )
            .unwrap();
        assert!(matches!(out, QueryOutput::Ack(_)));
        assert!(s.registry().get("st_contains").is_some());
        s.execute("DROP JOIN st_contains(a: polygon, b: point);")
            .unwrap();
        assert!(s.registry().get("st_contains").is_none());
    }

    #[test]
    fn create_join_with_options_configures_the_guard() {
        let s = session();
        s.execute(
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins
               WITH (policy = quarantine, budget_ms = 250, check_sample = 1);"#,
        )
        .unwrap();
        let def = s.registry().get("st_contains").unwrap();
        assert_eq!(def.guard().policy, UdfPolicy::Quarantine);
        assert_eq!(def.guard().limits.call_budget_ms, 250);
        assert_eq!(def.guard().limits.check_sample, 1);
    }

    #[test]
    fn create_join_rejects_unknown_options() {
        let s = session();
        let err = s
            .execute(
                r#"CREATE JOIN j(a: polygon, b: point)
                   RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins
                   WITH (polici = quarantine);"#,
            )
            .unwrap_err();
        assert!(err.to_string().contains("unknown join option"), "{err}");
        assert!(s.registry().get("j").is_none(), "DDL must not half-apply");

        let err = s
            .execute(
                r#"CREATE JOIN j(a: polygon, b: point)
                   RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins
                   WITH (policy = lenient);"#,
            )
            .unwrap_err();
        assert!(err.to_string().contains("unknown UDF policy"), "{err}");
    }

    #[test]
    fn query1_runs_fudj_vs_ontop_same_answer() {
        let s = session();
        s.execute(
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins;"#,
        )
        .unwrap();

        let sql = "SELECT p.id, COUNT(w.id) AS num_fires \
                   FROM Parks p, Wildfires w \
                   WHERE ST_Contains(p.boundary, w.location) \
                     AND w.fire_start >= parse_date('01/01/2022', 'M/D/Y') \
                   GROUP BY p.id ORDER BY num_fires DESC";

        // FUDJ plan.
        let explain = s.execute(&format!("EXPLAIN {sql}")).unwrap();
        let QueryOutput::Plan(text) = explain else {
            panic!()
        };
        assert!(text.contains("FudjJoin"), "{text}");

        let fudj = s.query(sql).unwrap();
        assert!(!fudj.is_empty(), "spatial query produced results");

        // On-top plan (same session data, forced NLJ).
        let mut s2 = session();
        s2.set_options(PlanOptions {
            force_on_top: true,
            ..Default::default()
        });
        let ontop = s2.query(sql).unwrap();

        let mut a = fudj.rows().to_vec();
        let mut b = ontop.rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn interval_query5_shape() {
        let s = session();
        s.execute(
            r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
               RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM NYCTaxi n1, NYCTaxi n2 \
                   WHERE n1.Vendor = 1 AND n2.Vendor = 2 \
                     AND overlapping_interval(n1.ride_interval, n2.ride_interval)";
        let QueryOutput::Plan(text) = s.execute(&format!("EXPLAIN {sql}")).unwrap() else {
            panic!()
        };
        assert!(
            text.contains("theta-nlj"),
            "interval join is a multi-join: {text}"
        );

        let batch = s.query(sql).unwrap();
        let fudj_count = batch.rows()[0].get(0).clone();

        let mut s2 = session();
        s2.set_options(PlanOptions {
            force_on_top: true,
            ..Default::default()
        });
        let ontop_count = s2.query(sql).unwrap().rows()[0].get(0).clone();
        assert_eq!(fudj_count, ontop_count);
        assert!(fudj_count.as_i64().unwrap() > 0, "overlapping rides exist");
    }

    #[test]
    fn text_similarity_query5_shape() {
        let s = session();
        s.execute(
            r#"CREATE JOIN similarity_jaccard(a: string, b: string, t: double)
               RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM AmazonReview r1, AmazonReview r2 \
                   WHERE r1.overall = 5 AND r2.overall = 4 \
                     AND similarity_jaccard(r1.review, r2.review) >= 0.9";
        let fudj_count = s.query(sql).unwrap().rows()[0].get(0).clone();

        let mut s2 = session();
        s2.set_options(PlanOptions {
            force_on_top: true,
            ..Default::default()
        });
        let ontop_count = s2.query(sql).unwrap().rows()[0].get(0).clone();
        assert_eq!(fudj_count, ontop_count);
        assert!(
            fudj_count.as_i64().unwrap() > 0,
            "near-duplicate reviews exist"
        );
    }

    #[test]
    fn self_join_is_detected_in_plan() {
        let s = session();
        s.execute(
            r#"CREATE JOIN st_intersects(a: polygon, b: polygon)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        let QueryOutput::Plan(text) = s
            .execute(
                "EXPLAIN SELECT COUNT(*) FROM Parks a, Parks b \
                 WHERE st_intersects(a.boundary, b.boundary)",
            )
            .unwrap()
        else {
            panic!()
        };
        assert!(text.contains("summarize once"), "{text}");
    }

    #[test]
    fn explain_analyze_reports_phases_and_metrics() {
        let s = session();
        s.execute(
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        let QueryOutput::Plan(text) = s
            .execute(
                "EXPLAIN ANALYZE SELECT COUNT(*) FROM Parks p, Wildfires w \
                 WHERE st_contains(p.boundary, w.location)",
            )
            .unwrap()
        else {
            panic!()
        };
        assert!(text.contains("FudjJoin"), "{text}");
        assert!(text.contains("phase summarize:"), "{text}");
        assert!(text.contains("phase divide:"), "{text}");
        assert!(text.contains("phase join:"), "{text}");
        assert!(text.contains("rows: 1"), "{text}");
        assert!(text.contains("bytes shuffled"), "{text}");
    }

    #[test]
    fn plain_select_with_limit() {
        let s = session();
        let batch = s.query("SELECT p.id, p.tags FROM Parks p LIMIT 7").unwrap();
        assert_eq!(batch.len(), 7);
        assert_eq!(batch.schema().to_string(), "p.id: uuid, p.tags: string");
    }

    #[test]
    fn errors_surface_cleanly() {
        let s = session();
        assert!(s.execute("SELECT x FROM Ghost g").is_err());
        assert!(s.execute("DROP JOIN never_created").is_err());
        assert!(s
            .query("CREATE JOIN j(a: string, b: string) RETURNS boolean AS \"x.Y\" AT nolib")
            .is_err());
    }

    #[test]
    fn create_join_memory_budget_spills_and_matches_in_memory() {
        let sql = "SELECT p.id, COUNT(w.id) AS num_fires \
                   FROM Parks p, Wildfires w \
                   WHERE ST_Contains(p.boundary, w.location) \
                   GROUP BY p.id ORDER BY num_fires DESC";

        let run = |budget_clause: &str| {
            let s = session();
            s.execute(&format!(
                r#"CREATE JOIN st_contains(a: polygon, b: point)
                   RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins{budget_clause};"#
            ))
            .unwrap();
            let out = s.execute(sql).unwrap();
            let QueryOutput::Rows(batch, metrics) = out else {
                panic!("expected rows")
            };
            // The sort key (num_fires) ties across parks, so normalize the
            // tie order before comparing.
            let mut rows = batch.rows().to_vec();
            rows.sort();
            (rows, metrics.spilled_rows)
        };

        let (in_memory, spilled_none) = run("");
        let (spilled, spilled_rows) = run(" WITH (memory_budget_rows = 4)");
        assert_eq!(spilled_none, 0, "unbudgeted join must not spill");
        assert!(spilled_rows > 0, "budget of 4 rows/worker must spill");
        assert_eq!(in_memory, spilled, "grace spill must not change results");
    }

    #[test]
    fn set_memory_budget_rows_overrides_per_query() {
        let s = session();
        s.execute(
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM Parks p, Wildfires w \
                   WHERE st_contains(p.boundary, w.location)";

        let baseline = s.execute(sql).unwrap();
        assert_eq!(baseline.metrics().spilled_rows, 0);
        let count = baseline.batch().rows()[0].get(0).clone();

        s.execute("SET memory_budget_rows = 4").unwrap();
        let budgeted = s.execute(sql).unwrap();
        assert!(budgeted.metrics().spilled_rows > 0, "SET budget must spill");
        assert_eq!(budgeted.batch().rows()[0].get(0), &count);

        // `none` clears the variable again.
        s.execute("SET memory_budget_rows = none").unwrap();
        let cleared = s.execute(sql).unwrap();
        assert_eq!(cleared.metrics().spilled_rows, 0);
    }

    #[test]
    fn set_spill_knobs_tune_hybrid_hash_and_preserve_results() {
        let s = session();
        s.execute(
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        let sql = "SELECT COUNT(*) FROM Parks p, Wildfires w \
                   WHERE st_contains(p.boundary, w.location)";

        s.execute("SET memory_budget_rows = 4").unwrap();
        let default_knobs = s.execute(sql).unwrap();
        let count = default_knobs.batch().rows()[0].get(0).clone();
        assert!(default_knobs.metrics().spilled_rows > 0);

        // A narrow fan-out with recursion allowed still answers correctly.
        s.execute("SET spill_fanout = 2").unwrap();
        let narrow = s.execute(sql).unwrap();
        assert_eq!(narrow.batch().rows()[0].get(0), &count);
        assert!(narrow.metrics().spill_passes >= 1);

        // recursion_limit = 0 forbids repartitioning: over-budget
        // sub-partitions must take the block-nested-loop fallback.
        s.execute("SET spill_recursion_limit = 0").unwrap();
        let bnl = s.execute(sql).unwrap();
        assert_eq!(bnl.batch().rows()[0].get(0), &count);
        assert_eq!(bnl.metrics().spill_recursion_depth, 0);
        assert!(
            bnl.metrics().spill_bnl_fallbacks > 0,
            "depth cap 0 with a 4-row budget must hit the BNL fallback"
        );

        // `off` restores the engine defaults.
        s.execute("SET spill_fanout = off").unwrap();
        s.execute("SET spill_recursion_limit = off").unwrap();
        let restored = s.execute(sql).unwrap();
        assert_eq!(restored.batch().rows()[0].get(0), &count);
    }

    #[test]
    fn set_exec_mode_switches_engine_and_preserves_answers() {
        let s = session();
        s.execute(
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        let sql = "SELECT p.id, COUNT(w.id) AS c FROM Parks p, Wildfires w \
                   WHERE st_contains(p.boundary, w.location) \
                     AND w.fire_start >= parse_date('01/01/2022', 'M/D/Y') \
                   GROUP BY p.id ORDER BY p.id";

        s.execute("SET exec_mode = columnar").unwrap();
        let columnar = s.execute(sql).unwrap();
        assert_eq!(columnar.metrics().exec_mode, ExecMode::Columnar);

        s.execute("SET exec_mode = row").unwrap();
        let row = s.execute(sql).unwrap();
        assert_eq!(row.metrics().exec_mode, ExecMode::Row);

        assert_eq!(row.batch().rows(), columnar.batch().rows());
        assert_eq!(
            row.metrics().fingerprint(),
            columnar.metrics().fingerprint(),
            "logical counters must not depend on the execution mode"
        );

        // Bad values error; `off` clears back to the engine default.
        let err = s.execute("SET exec_mode = turbo").unwrap_err();
        assert!(err.to_string().contains("row or columnar"), "{err}");
        s.execute("SET exec_mode = off").unwrap();
        assert!(s.query(sql).is_ok());
    }

    #[test]
    fn set_configures_scheduler_and_rejects_unknown_keys() {
        let s = session();
        s.execute("SET max_inflight_queries = 2").unwrap();
        s.execute("SET admission_queue_limit = 3").unwrap();
        s.execute("SET memory_quota_rows = 500").unwrap();
        s.execute("SET stage_slots = 1").unwrap();
        let config = s.scheduler().config();
        assert_eq!(config.max_inflight, 2);
        assert_eq!(config.queue_limit, 3);
        assert_eq!(config.memory_quota_rows, Some(500));
        assert_eq!(config.stage_slots, 1);

        s.execute("SET memory_quota_rows = off").unwrap();
        assert_eq!(s.scheduler().config().memory_quota_rows, None);

        let err = s.execute("SET warp_drive = 9").unwrap_err();
        assert!(err.to_string().contains("unknown SET variable"), "{err}");
        let err = s.execute("SET priority = fast").unwrap_err();
        assert!(err.to_string().contains("expects a number"), "{err}");
    }

    #[test]
    fn submit_runs_selects_concurrently_with_session_vars() {
        let s = session();
        s.execute("SET priority = 3").unwrap();
        s.execute("SET deadline_ms = 60000").unwrap();

        let sql = "SELECT n1.Vendor, COUNT(*) AS c FROM NYCTaxi n1 \
                   GROUP BY n1.Vendor ORDER BY n1.Vendor";
        let serial = s.query(sql).unwrap();

        let handles: Vec<_> = (0..3).map(|_| s.submit(sql).unwrap()).collect();
        for handle in handles {
            let id = handle.id();
            let (batch, _) = handle.wait().unwrap();
            assert_eq!(batch.rows(), serial.rows());
            let info = s.scheduler().job(id).unwrap();
            assert_eq!(info.priority, 3);
            assert_eq!(info.deadline_ms, Some(60_000));
            assert_eq!(info.state, fudj_sched::JobState::Done);
        }

        // Only SELECTs are submittable.
        let err = s.submit("DROP JOIN nope").unwrap_err();
        assert!(err.to_string().contains("only SELECT"), "{err}");
    }

    fn wal_test_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fudj-wal-session-{}-{tag}", std::process::id()))
    }

    fn kv_dataset() -> Dataset {
        use fudj_types::{DataType, Field, Row, Schema};
        let dataset = fudj_storage::DatasetBuilder::new(
            "kv",
            Schema::shared(vec![
                Field::new("id", DataType::Int64),
                Field::new("tag", DataType::String),
            ]),
        )
        .primary_key("id")
        .partitions(2)
        .build()
        .unwrap();
        dataset
            .insert(Row::new(vec![Value::Int64(1), Value::str("seed")]))
            .unwrap();
        dataset
    }

    #[test]
    fn set_wal_dir_replays_tables_joins_and_appends_across_restart() {
        use fudj_types::Row;
        let dir = wal_test_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let s = Session::new(2);
            s.install_library(standard_library());
            let kv = s.register_dataset(kv_dataset()).unwrap();
            s.execute(&format!("SET wal_dir = '{}'", dir.display()))
                .unwrap();
            // Post-open mutations are WALed: appends, join DDL.
            kv.insert(Row::new(vec![Value::Int64(2), Value::str("waled")]))
                .unwrap();
            kv.insert(Row::new(vec![Value::Int64(3), Value::str("waled")]))
                .unwrap();
            s.execute(
                r#"CREATE JOIN st_contains(a: polygon, b: point)
                   RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins
                   WITH (policy = quarantine, budget_ms = 250, memory_budget_rows = 8);"#,
            )
            .unwrap();
            // The session stamps durability counters into query metrics.
            let out = s.execute("SELECT COUNT(*) FROM kv k").unwrap();
            assert!(out.metrics().durability.wal_records_appended > 0);
            assert!(out.metrics().durability.wal_fsyncs > 0, "default is sync");
        }
        // "Restart": a fresh session recovers tables, rows, and join DDL.
        let s = Session::new(2);
        s.install_library(standard_library());
        s.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        let kv = s.catalog().get("kv").unwrap();
        assert_eq!(kv.len(), 3, "seeded + 2 WALed rows survive the restart");
        let def = s.registry().get("st_contains").expect("join DDL recovered");
        assert_eq!(def.guard().policy, UdfPolicy::Quarantine);
        assert_eq!(def.guard().limits.call_budget_ms, 250);
        assert_eq!(def.memory_budget_rows(), Some(8));
        let batch = s.query("SELECT COUNT(*) FROM kv k").unwrap();
        assert_eq!(batch.rows()[0].get(0).as_i64().unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_durability_controls_fsync_cadence_and_persist_compacts() {
        use fudj_types::Row;
        let dir = wal_test_dir("persist");
        let _ = std::fs::remove_dir_all(&dir);
        let s = Session::new(2);
        s.install_library(standard_library());
        let kv = s.register_dataset(kv_dataset()).unwrap();
        // The cadence knob is remembered even before the store opens.
        s.execute("SET durability = 16").unwrap();
        s.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        let store = s.durable().expect("store open");
        assert_eq!(store.sync_every(), 16);
        s.execute("SET durability = sync").unwrap();
        assert_eq!(store.sync_every(), 1);
        s.execute("SET durability = off").unwrap();
        assert_eq!(store.sync_every(), 0);

        for i in 10..30 {
            kv.insert(Row::new(vec![Value::Int64(i), Value::str("bulk")]))
                .unwrap();
        }
        let v0 = store.version();
        s.persist().unwrap();
        assert_eq!(store.version(), v0 + 1, "snapshot advances the version");
        assert!(store.stats().snapshots_written > 0);

        // Recovery from the snapshot (plus empty tail) sees every row.
        let s2 = Session::new(2);
        s2.install_library(standard_library());
        s2.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        assert_eq!(s2.catalog().get("kv").unwrap().len(), 21);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_durable_journals_and_seals_queries() {
        let dir = wal_test_dir("journal-seal");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let s = Session::new(2);
            s.install_library(standard_library());
            s.register_dataset(kv_dataset()).unwrap();
            // Knob set before the WAL opens is remembered (like
            // durability) and arms the tier at open.
            s.execute("SET checkpoint_durable = on").unwrap();
            s.execute(&format!("SET wal_dir = '{}'", dir.display()))
                .unwrap();
            assert!(s.cluster().checkpoints().durable_enabled());
            let store = s.durable().unwrap();
            let before = store.stats().journal_records_appended;
            let batch = s
                .query("SELECT k.tag, COUNT(*) AS c FROM kv k GROUP BY k.tag")
                .unwrap();
            assert_eq!(batch.len(), 1);
            let stats = store.stats();
            assert!(
                stats.journal_records_appended >= before + 3,
                "submit + at least one stage commit + finish, got {}",
                stats.journal_records_appended - before
            );
            let ckpt = s.cluster().checkpoints().stats();
            assert!(ckpt.durable_frames_written > 0, "{ckpt:?}");
            assert_eq!(
                s.cluster().checkpoints().durable_frames(),
                Vec::<String>::new(),
                "finished queries drop their durable frames eagerly"
            );

            let err = s.execute("SET checkpoint_durable = maybe").unwrap_err();
            assert!(err.to_string().contains("expects on or off"), "{err}");
            s.execute("SET checkpoint_durable = off").unwrap();
            assert!(!s.cluster().checkpoints().durable_enabled());
        }
        // Reopen: every journaled query finished, so nothing resumes.
        let s2 = Session::new(2);
        s2.install_library(standard_library());
        s2.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        assert!(
            s2.take_resumed().is_empty(),
            "sealed journal resumes nothing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfinished_journaled_query_resumes_exactly_once_on_reopen() {
        let dir = wal_test_dir("journal-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let sql = "SELECT COUNT(*) AS c FROM kv k";
        {
            let s = Session::new(2);
            s.install_library(standard_library());
            s.register_dataset(kv_dataset()).unwrap();
            s.execute(&format!("SET wal_dir = '{}'", dir.display()))
                .unwrap();
            // Simulate a crash after submit: the journal holds a
            // QuerySubmitted with no QueryFinished.
            let store = s.durable().unwrap();
            store
                .append_journal(
                    &WalRecord::QuerySubmitted {
                        fingerprint: fingerprint::statement_fingerprint(sql),
                        sql: sql.to_owned(),
                        options: Vec::new(),
                    },
                    "journal:submit",
                )
                .unwrap();
        }
        // First reopen resumes it (full replay — no stage committed)…
        let s2 = Session::new(2);
        s2.install_library(standard_library());
        s2.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        let mut resumed = s2.take_resumed();
        assert_eq!(resumed.len(), 1, "one pending query");
        let r = resumed.pop().unwrap();
        assert_eq!(r.sql, sql);
        assert_eq!(r.resumed_from, None, "no boundary committed");
        let (batch, _snapshot) = r.result.unwrap();
        assert_eq!(batch.rows()[0].get(0).as_i64().unwrap(), 1);
        assert!(
            !s2.cluster().checkpoints().durable_enabled(),
            "resume-only attach detaches after replay when the knob is off"
        );
        // …and seals it: the second reopen finds a finished journal.
        let s3 = Session::new(2);
        s3.install_library(standard_library());
        s3.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        assert!(
            s3.take_resumed().is_empty(),
            "QueryFinished sealed the resume — exactly once"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_crash_open_reopens_same_simulated_disk_and_resumes() {
        let sql = "SELECT COUNT(*) AS c FROM kv k";
        let s = Session::new(2);
        s.install_library(standard_library());
        s.register_dataset(kv_dataset()).unwrap();
        s.execute("SET checkpoint_durable = on").unwrap();
        // `\chaos crash`: the next SET wal_dir opens over a simulated
        // disk that dies at the first query submission (journal durable,
        // execution never ran).
        s.set_disk_faults(Some(StorageFaultConfig::crash_at(0, "journal:submit", 1)));
        s.execute("SET wal_dir = '/sim-crash'").unwrap();
        assert!(
            s.disk_faults().is_none(),
            "a crash plan is one-shot — consumed by the open it poisons"
        );
        let err = s.query(sql).unwrap_err();
        assert!(matches!(err, FudjError::Crash(_)), "{err}");
        // Reopening the same dir plays the process restart: the simulated
        // disk (and the query journal on it) survives, the poison clears,
        // and the in-flight query resumes.
        s.execute("SET wal_dir = '/sim-crash'").unwrap();
        let mut resumed = s.take_resumed();
        assert_eq!(resumed.len(), 1, "journal survived the reopen");
        let r = resumed.pop().unwrap();
        assert_eq!(r.sql, sql);
        let (batch, _) = r.result.unwrap();
        assert_eq!(batch.rows()[0].get(0).as_i64().unwrap(), 1);
        // The restarted disk is quiet: the same query now runs clean, and
        // a third reopen finds a sealed journal.
        s.query(sql).unwrap();
        s.execute("SET wal_dir = '/sim-crash'").unwrap();
        assert!(s.take_resumed().is_empty(), "resume sealed exactly once");
    }

    #[test]
    fn set_wal_dir_off_detaches_and_stops_logging() {
        use fudj_types::Row;
        let dir = wal_test_dir("detach");
        let _ = std::fs::remove_dir_all(&dir);
        let s = Session::new(2);
        s.install_library(standard_library());
        let kv = s.register_dataset(kv_dataset()).unwrap();
        s.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        s.execute("SET wal_dir = off").unwrap();
        assert!(s.durable().is_none());
        kv.insert(Row::new(vec![Value::Int64(99), Value::str("lost")]))
            .unwrap();

        let s2 = Session::new(2);
        s2.execute(&format!("SET wal_dir = '{}'", dir.display()))
            .unwrap();
        assert_eq!(
            s2.catalog().get("kv").unwrap().len(),
            1,
            "rows inserted after detach are not durable"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_wal_dir_unwritable_path_is_a_clean_error() {
        // Tests run as root, so permission bits don't block writes; a path
        // nested *under a regular file* fails even for root (ENOTDIR).
        let blocker = wal_test_dir("blocker");
        let _ = std::fs::remove_dir_all(&blocker);
        std::fs::write(&blocker, b"not a directory").unwrap();
        let s = Session::new(2);
        let err = s
            .execute(&format!(
                "SET wal_dir = '{}'",
                blocker.join("nested").display()
            ))
            .unwrap_err();
        assert!(err.to_string().contains("storage error"), "{err}");
        assert!(
            s.durable().is_none(),
            "failed open leaves no half-attached store"
        );
        // The session stays usable.
        s.register_dataset(kv_dataset()).unwrap();
        assert!(s.query("SELECT COUNT(*) FROM kv k").is_ok());
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn prepare_and_execute_match_direct_select() {
        let s = session();
        s.execute(
            "PREPARE vendor_count AS \
             SELECT COUNT(*) AS c FROM NYCTaxi n WHERE n.Vendor = $1",
        )
        .unwrap();
        let prepared = s.execute("EXECUTE vendor_count(1)").unwrap();
        let direct = s
            .query("SELECT COUNT(*) AS c FROM NYCTaxi n WHERE n.Vendor = 1")
            .unwrap();
        assert_eq!(prepared.batch().rows(), direct.rows());

        // A different parameter reaches a different answer.
        let other = s.execute("EXECUTE vendor_count(2)").unwrap();
        let a = prepared.batch().rows()[0].get(0).as_i64().unwrap();
        let b = other.batch().rows()[0].get(0).as_i64().unwrap();
        assert_eq!(a + b, 150, "the two vendors partition the taxi rides");

        // Arity mismatches, unknown names, and raw `$n` outside PREPARE
        // are all clean errors.
        let err = s.execute("EXECUTE vendor_count()").unwrap_err();
        assert!(err.to_string().contains("takes 1 parameter"), "{err}");
        let err = s.execute("EXECUTE vendor_count(1, 2)").unwrap_err();
        assert!(err.to_string().contains("takes 1 parameter"), "{err}");
        let err = s.execute("EXECUTE nope(1)").unwrap_err();
        assert!(err.to_string().contains("no prepared statement"), "{err}");
        let err = s
            .execute("SELECT COUNT(*) FROM NYCTaxi n WHERE n.Vendor = $1")
            .unwrap_err();
        assert!(err.to_string().contains("unbound parameter"), "{err}");
    }

    #[test]
    fn serving_knobs_set_and_error_paths() {
        let s = session();
        assert_eq!(s.serving_config(), ServingConfig::default());
        s.execute("SET plan_cache_entries = 8").unwrap();
        s.execute("SET result_cache_entries = 0").unwrap();
        s.execute("SET result_cache = off").unwrap();
        let cfg = s.serving_config();
        assert_eq!(cfg.plan_cache_entries, 8);
        assert_eq!(cfg.result_cache_entries, 0, "0 disables, not defaults");
        assert!(!cfg.result_cache_enabled);
        s.execute("SET result_cache = on").unwrap();
        s.execute("SET plan_cache_entries = none").unwrap();
        let cfg = s.serving_config();
        assert!(cfg.result_cache_enabled);
        assert_eq!(
            cfg.plan_cache_entries,
            ServingConfig::default().plan_cache_entries,
            "none restores the engine default"
        );

        // Error paths: non-numeric, out-of-range, bad switch value, and
        // the unknown-knob message advertising the serving knobs.
        let err = s.execute("SET plan_cache_entries = many").unwrap_err();
        assert!(err.to_string().contains("expects a number"), "{err}");
        let err = s
            .execute("SET result_cache_entries = 99999999")
            .unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
        let err = s.execute("SET result_cache = sometimes").unwrap_err();
        assert!(err.to_string().contains("on or off"), "{err}");
        let err = s.execute("SET plan_cache = 1").unwrap_err();
        assert!(err.to_string().contains("unknown SET variable"), "{err}");
        assert!(err.to_string().contains("result_cache"), "{err}");
    }

    #[test]
    fn aggregates_via_sql() {
        let s = session();
        let batch = s
            .query("SELECT n1.Vendor, COUNT(*) AS c FROM NYCTaxi n1 GROUP BY n1.Vendor ORDER BY n1.Vendor")
            .unwrap();
        assert_eq!(batch.len(), 2);
        let total: i64 = batch
            .rows()
            .iter()
            .map(|r| r.get(1).as_i64().unwrap())
            .sum();
        assert_eq!(total, 150);
        let _ = Value::Int64(0);
    }
}
