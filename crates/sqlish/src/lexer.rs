//! Tokenizer for the SQL subset.

use fudj_types::{FudjError, Result};
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (stored as written; keyword checks are
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// Prepared-statement parameter placeholder `$1`, `$2`, … (1-based).
    Param(u32),
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl Token {
    /// Whether this is the (case-insensitive) keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Param(n) => write!(f, "${n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Colon => write!(f, ":"),
            Token::Semicolon => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
        }
    }
}

/// Tokenize SQL text. `--` line comments and `/* */` block comments are
/// skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes: Vec<char> = sql.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(FudjError::Parse("unterminated block comment".into()));
                }
                i += 2;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                out.push(Token::Dot);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some('=') => {
                    out.push(Token::LtEq);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let digits: String = bytes[start..i].iter().collect();
                if digits.is_empty() {
                    return Err(FudjError::Parse(
                        "expected a parameter number after '$' (e.g. $1)".into(),
                    ));
                }
                let n = digits.parse::<u32>().map_err(|e| {
                    FudjError::Parse(format!("bad parameter number ${digits}: {e}"))
                })?;
                if n == 0 {
                    return Err(FudjError::Parse("parameters are numbered from $1".into()));
                }
                out.push(Token::Param(n));
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(&ch) if ch == quote => {
                            // Doubled quote = escaped quote.
                            if bytes.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(FudjError::Parse(format!(
                                "unterminated string literal starting with {quote}"
                            )))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    if bytes[i] == '.' {
                        if is_float {
                            break; // second dot belongs to something else
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| FudjError::Parse(format!("bad float {text:?}: {e}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| FudjError::Parse(format!("bad integer {text:?}: {e}")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(FudjError::Parse(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_operators_literals() {
        let toks =
            tokenize("SELECT p.id, COUNT(*) FROM Parks p WHERE x >= 0.5 AND y <> 'a''b'").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Float(0.5)));
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::Str("a'b".into())));
        assert!(toks.contains(&Token::Star));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- inline\n 1 /* block */ + 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Plus,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn qualified_names_tokenize_as_dot() {
        let toks = tokenize("p.boundary").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("p".into()),
                Token::Dot,
                Token::Ident("boundary".into())
            ]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("/* no end").is_err());
    }

    #[test]
    fn parameter_placeholders() {
        let toks = tokenize("WHERE x = $1 AND y >= $12").unwrap();
        assert!(toks.contains(&Token::Param(1)));
        assert!(toks.contains(&Token::Param(12)));
        assert!(tokenize("$").is_err());
        assert!(tokenize("$0").is_err());
        assert!(tokenize("$x").is_err());
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = tokenize("42 42.5 .5").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(42), Token::Float(42.5), Token::Float(0.5)]
        );
    }
}
