//! Binder: AST → logical plans.

use crate::ast::*;
use fudj_exec::AggFunc;
use fudj_planner::logical::{LogicalAggregate, LogicalSortKey};
use fudj_planner::{BinOp, Expr, LogicalPlan};
use fudj_storage::Catalog;
use fudj_types::{FudjError, Result, Schema, Value};

/// Bind a parsed SELECT against the catalog.
pub fn bind_select(stmt: &SelectStatement, catalog: &Catalog) -> Result<LogicalPlan> {
    if stmt.from.is_empty() {
        return Err(FudjError::Parse("FROM clause is required".into()));
    }

    // Resolve FROM entries and collect per-table schemas for qualification.
    let mut tables = Vec::new();
    for t in &stmt.from {
        let dataset = catalog.get(&t.dataset)?;
        tables.push((t.alias.clone(), dataset));
    }
    let resolver = Resolver::new(&tables)?;

    // Left-deep join chain; the whole WHERE goes on top as a filter, which
    // the optimizer merges into join conditions and pushes down.
    let Some(((alias, ds), rest)) = tables.split_first() else {
        return Err(FudjError::Parse("FROM clause is required".into()));
    };
    let mut plan = LogicalPlan::scan(ds.clone(), alias.clone());
    for (alias, ds) in rest {
        plan = plan.join(
            LogicalPlan::scan(ds.clone(), alias.clone()),
            Expr::lit(true),
        );
    }
    if let Some(w) = &stmt.where_clause {
        plan = plan.filter(resolver.expr(w)?);
    }

    // Select list: aggregate or plain projection.
    let has_aggregates =
        !stmt.group_by.is_empty() || stmt.items.iter().any(|i| i.expr.contains_aggregate());

    let mut used_names: Vec<String> = Vec::new();
    let unique = |base: String, used: &mut Vec<String>| -> String {
        let mut name = base.clone();
        let mut k = 2;
        while used.contains(&name) {
            name = format!("{base}_{k}");
            k += 1;
        }
        used.push(name.clone());
        name
    };

    if has_aggregates {
        // Group keys, in GROUP BY order.
        let mut group_by: Vec<(Expr, String)> = Vec::new();
        for g in &stmt.group_by {
            let e = resolver.expr(g)?;
            let name = default_name(&e);
            group_by.push((e, name));
        }

        // Select items: aggregates become LogicalAggregates; non-aggregates
        // must match a group key.
        let mut aggregates: Vec<LogicalAggregate> = Vec::new();
        let mut output: Vec<(Expr, String)> = Vec::new();
        for item in &stmt.items {
            match &item.expr {
                AstExpr::Wildcard => {
                    return Err(FudjError::Plan(
                        "SELECT * cannot be combined with GROUP BY".into(),
                    ))
                }
                e if e.contains_aggregate() => {
                    let (func, input) = unwrap_aggregate(e, &resolver)?;
                    let base = item.alias.clone().unwrap_or_else(|| agg_default_name(func));
                    let name = unique(base, &mut used_names);
                    aggregates.push(LogicalAggregate {
                        func,
                        input,
                        name: name.clone(),
                    });
                    output.push((Expr::col(name.clone()), name));
                }
                e => {
                    let bound = resolver.expr(e)?;
                    let key = group_by.iter().find(|(g, _)| *g == bound).ok_or_else(|| {
                        FudjError::Plan(format!(
                            "select item {bound} is neither an aggregate nor in GROUP BY"
                        ))
                    })?;
                    let base = item.alias.clone().unwrap_or_else(|| key.1.clone());
                    let name = unique(base, &mut used_names);
                    output.push((Expr::col(key.1.clone()), name));
                }
            }
        }
        // Aggregate over an implicit single group when GROUP BY is absent.
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by,
            aggregates,
        };
        plan = plan.project(output);
    } else {
        let mut exprs: Vec<(Expr, String)> = Vec::new();
        for item in &stmt.items {
            match &item.expr {
                AstExpr::Wildcard => {
                    let schema = plan.schema()?;
                    for f in schema.fields() {
                        let name = unique(f.name.clone(), &mut used_names);
                        exprs.push((Expr::col(f.name.clone()), name));
                    }
                }
                e => {
                    let bound = resolver.expr(e)?;
                    let base = item.alias.clone().unwrap_or_else(|| default_name(&bound));
                    let name = unique(base, &mut used_names);
                    exprs.push((bound, name));
                }
            }
        }
        plan = plan.project(exprs);
    }

    // ORDER BY binds against the projected schema (aliases are visible).
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|(e, desc)| {
                Ok(LogicalSortKey {
                    expr: resolver.expr(e)?,
                    descending: *desc,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    if let Some(n) = stmt.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            limit: n,
        };
    }

    Ok(plan)
}

/// Output name for an unaliased expression.
fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column(name) => name.clone(),
        Expr::Call { name, .. } => name.clone(),
        other => other.to_string(),
    }
}

fn agg_default_name(func: AggFunc) -> String {
    match func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
    }
    .to_owned()
}

/// Unwrap a top-level aggregate call. Aggregates nested inside arithmetic
/// (e.g. `COUNT(x) + 1`) are not supported.
fn unwrap_aggregate(e: &AstExpr, resolver: &Resolver<'_>) -> Result<(AggFunc, Option<Expr>)> {
    match e {
        AstExpr::CountStar => Ok((AggFunc::Count, None)),
        AstExpr::Call { name, args } if is_aggregate_name(name) => {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "avg" => AggFunc::Avg,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                _ => unreachable!(),
            };
            if args.len() != 1 {
                return Err(FudjError::Plan(format!(
                    "{name} takes exactly one argument"
                )));
            }
            Ok((func, Some(resolver.expr(&args[0])?)))
        }
        other => Err(FudjError::Plan(format!(
            "aggregates may only appear as top-level select items, got {other:?}"
        ))),
    }
}

/// Resolves bare column names against the FROM tables.
struct Resolver<'a> {
    /// (qualified name, bare name) pairs across all tables.
    columns: Vec<(String, String)>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> Resolver<'a> {
    fn new(tables: &'a [(String, std::sync::Arc<fudj_storage::Dataset>)]) -> Result<Self> {
        let mut columns = Vec::new();
        for (alias, ds) in tables {
            let schema: &Schema = ds.schema();
            for f in schema.fields() {
                columns.push((format!("{alias}.{}", f.name), f.name.clone()));
            }
        }
        Ok(Resolver {
            columns,
            _marker: std::marker::PhantomData,
        })
    }

    /// Qualify a bare column name if it is unambiguous; leave qualified
    /// names and unknown names (e.g. projection aliases) untouched.
    fn column(&self, name: &str) -> Result<String> {
        if name.contains('.') {
            return Ok(name.to_owned());
        }
        let matches: Vec<&String> = self
            .columns
            .iter()
            .filter(|(_, bare)| bare == name)
            .map(|(q, _)| q)
            .collect();
        match matches.len() {
            0 => Ok(name.to_owned()), // alias of a projected column
            1 => Ok(matches[0].clone()),
            _ => Err(FudjError::Plan(format!(
                "column {name:?} is ambiguous: {matches:?}"
            ))),
        }
    }

    /// Convert an AST expression, qualifying column references.
    fn expr(&self, e: &AstExpr) -> Result<Expr> {
        Ok(match e {
            AstExpr::Column(name) => Expr::col(self.column(name)?),
            AstExpr::IntLit(v) => Expr::lit(*v),
            AstExpr::FloatLit(v) => Expr::lit(*v),
            AstExpr::StrLit(s) => Expr::lit(Value::str(s)),
            AstExpr::BoolLit(b) => Expr::lit(*b),
            AstExpr::Param(n) => {
                return Err(FudjError::Plan(format!(
                    "unbound parameter ${n}: parameters are only valid inside PREPARE; \
                     run the statement with EXECUTE <name>(values...)"
                )))
            }
            AstExpr::Binary { op, left, right } => {
                Expr::binary(convert_op(*op), self.expr(left)?, self.expr(right)?)
            }
            AstExpr::Not(inner) => Expr::Not(Box::new(self.expr(inner)?)),
            AstExpr::Call { name, args } => {
                if is_aggregate_name(name) {
                    return Err(FudjError::Plan(format!(
                        "aggregate {name} is not allowed in this clause"
                    )));
                }
                Expr::call(
                    name.to_ascii_lowercase(),
                    args.iter().map(|a| self.expr(a)).collect::<Result<_>>()?,
                )
            }
            AstExpr::CountStar => {
                return Err(FudjError::Plan(
                    "COUNT(*) is not allowed in this clause".into(),
                ))
            }
            AstExpr::Wildcard => {
                return Err(FudjError::Plan(
                    "* is only allowed in the select list".into(),
                ))
            }
        })
    }
}

fn convert_op(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::NotEq => BinOp::NotEq,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::LtEq => BinOp::LtEq,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::GtEq => BinOp::GtEq,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use fudj_storage::DatasetBuilder;
    use fudj_types::{DataType, Field};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            DatasetBuilder::new(
                "Parks",
                Schema::shared(vec![
                    Field::new("id", DataType::Uuid),
                    Field::new("boundary", DataType::Polygon),
                    Field::new("tags", DataType::String),
                ]),
            )
            .build()
            .unwrap(),
        )
        .unwrap();
        cat.register(
            DatasetBuilder::new(
                "Wildfires",
                Schema::shared(vec![
                    Field::new("id", DataType::Uuid),
                    Field::new("location", DataType::Point),
                ]),
            )
            .build()
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!("not a select")
        };
        bind_select(&sel, &catalog())
    }

    #[test]
    fn bare_columns_are_qualified() {
        let plan = bind("SELECT tags FROM Parks p WHERE tags <> 'x'").unwrap();
        let schema = plan.schema().unwrap();
        assert_eq!(schema.to_string(), "p.tags: string");
    }

    #[test]
    fn ambiguous_bare_column_is_an_error() {
        // `id` exists in both tables.
        let err = bind("SELECT id FROM Parks p, Wildfires w").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn aliases_rename_output() {
        let plan = bind("SELECT p.tags AS t FROM Parks p").unwrap();
        assert_eq!(plan.schema().unwrap().to_string(), "t: string");
    }

    #[test]
    fn wildcard_expands() {
        let plan = bind("SELECT * FROM Parks p").unwrap();
        assert_eq!(plan.schema().unwrap().len(), 3);
    }

    #[test]
    fn group_by_with_count() {
        let plan =
            bind("SELECT p.tags, COUNT(p.id) AS n FROM Parks p GROUP BY p.tags ORDER BY n DESC")
                .unwrap();
        let schema = plan.schema().unwrap();
        assert_eq!(schema.to_string(), "p.tags: string, n: bigint");
    }

    #[test]
    fn global_count_without_group_by() {
        let plan = bind("SELECT COUNT(*) FROM Parks p").unwrap();
        assert_eq!(plan.schema().unwrap().to_string(), "count: bigint");
    }

    #[test]
    fn non_grouped_select_item_rejected() {
        let err = bind("SELECT p.tags, COUNT(*) FROM Parks p GROUP BY p.id").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn unknown_dataset_is_reported() {
        let Statement::Select(sel) = parse("SELECT x FROM Ghost g").unwrap() else {
            panic!()
        };
        assert!(matches!(
            bind_select(&sel, &catalog()),
            Err(FudjError::DatasetNotFound(_))
        ));
    }

    #[test]
    fn duplicate_output_names_are_deduplicated() {
        let plan = bind("SELECT p.tags, p.tags FROM Parks p").unwrap();
        assert_eq!(
            plan.schema().unwrap().to_string(),
            "p.tags: string, p.tags_2: string"
        );
    }
}
