//! Recursive-descent parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use fudj_types::{DataType, FudjError, Result};

/// Parse one statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept(&Token::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| FudjError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn accept(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(FudjError::Parse(format!(
                "expected {t}, found {}",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(FudjError::Parse(format!(
                "expected keyword {kw}, found {}",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(FudjError::Parse(format!(
                "trailing input starting at {}",
                self.tokens[self.pos]
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(FudjError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.accept_kw("explain") {
            let analyze = self.accept_kw("analyze");
            self.expect_kw("select")?;
            return Ok(Statement::Explain {
                select: self.select_body()?,
                analyze,
            });
        }
        if self.accept_kw("select") {
            return Ok(Statement::Select(self.select_body()?));
        }
        if self.accept_kw("create") {
            self.expect_kw("join")?;
            return self.create_join();
        }
        if self.accept_kw("drop") {
            self.expect_kw("join")?;
            let name = self.ident()?;
            // Optional signature list, accepted and ignored (the registry
            // keys joins by name).
            if self.accept(&Token::LParen) {
                let mut depth = 1;
                while depth > 0 {
                    match self.next()? {
                        Token::LParen => depth += 1,
                        Token::RParen => depth -= 1,
                        _ => {}
                    }
                }
            }
            return Ok(Statement::DropJoin {
                name: name.to_ascii_lowercase(),
            });
        }
        if self.accept_kw("prepare") {
            let name = self.ident()?.to_ascii_lowercase();
            self.expect_kw("as")?;
            self.expect_kw("select")?;
            return Ok(Statement::Prepare {
                name,
                select: self.select_body()?,
            });
        }
        if self.accept_kw("execute") {
            let name = self.ident()?.to_ascii_lowercase();
            let mut params = Vec::new();
            if self.accept(&Token::LParen) && !self.accept(&Token::RParen) {
                loop {
                    let value = self.atom()?;
                    match &value {
                        AstExpr::IntLit(_)
                        | AstExpr::FloatLit(_)
                        | AstExpr::StrLit(_)
                        | AstExpr::BoolLit(_) => params.push(value),
                        other => {
                            return Err(FudjError::Parse(format!(
                                "EXECUTE parameters must be literals, found {other:?}"
                            )))
                        }
                    }
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            return Ok(Statement::Execute { name, params });
        }
        if self.accept_kw("set") {
            let key = self.ident()?.to_ascii_lowercase();
            self.expect(&Token::Eq)?;
            let value = match self.next()? {
                Token::Ident(s) | Token::Str(s) => s,
                Token::Int(n) => n.to_string(),
                Token::Float(f) => f.to_string(),
                other => {
                    return Err(FudjError::Parse(format!(
                        "expected a value for SET {key}, found {other}"
                    )))
                }
            };
            return Ok(Statement::Set { key, value });
        }
        Err(FudjError::Parse(format!(
            "expected SELECT, EXPLAIN, CREATE JOIN, DROP JOIN, PREPARE, EXECUTE, or SET, \
             found {}",
            self.peek()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of input".into())
        )))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        Ok(match name.to_ascii_lowercase().as_str() {
            "string" | "text" | "varchar" => DataType::String,
            "double" | "float" => DataType::Float64,
            "bigint" | "int" | "integer" => DataType::Int64,
            "boolean" | "bool" => DataType::Bool,
            "uuid" => DataType::Uuid,
            "datetime" | "timestamp" => DataType::DateTime,
            "interval" => DataType::Interval,
            "point" => DataType::Point,
            "polygon" | "geometry" => DataType::Polygon,
            other => return Err(FudjError::Parse(format!("unknown type {other:?}"))),
        })
    }

    /// `name(a: type, ...) RETURNS boolean AS "class" AT library
    /// [WITH (key = value, ...)]`
    fn create_join(&mut self) -> Result<Statement> {
        let name = self.ident()?.to_ascii_lowercase();
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if !self.accept(&Token::RParen) {
            loop {
                let arg = self.ident()?;
                self.expect(&Token::Colon)?;
                let dt = self.data_type()?;
                args.push((arg, dt));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_kw("returns")?;
        self.expect_kw("boolean")?;
        self.expect_kw("as")?;
        let class = match self.next()? {
            Token::Str(s) => s,
            other => {
                return Err(FudjError::Parse(format!(
                    "expected class string, found {other}"
                )))
            }
        };
        self.expect_kw("at")?;
        let library = self.ident()?;
        let mut options = Vec::new();
        if self.accept_kw("with") {
            self.expect(&Token::LParen)?;
            loop {
                let key = self.ident()?.to_ascii_lowercase();
                self.expect(&Token::Eq)?;
                let value = match self.next()? {
                    Token::Ident(s) | Token::Str(s) => s,
                    Token::Int(n) => n.to_string(),
                    Token::Float(f) => f.to_string(),
                    other => {
                        return Err(FudjError::Parse(format!(
                            "expected option value, found {other}"
                        )))
                    }
                };
                options.push((key, value));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Statement::CreateJoin {
            name,
            args,
            class,
            library,
            options,
        })
    }

    fn select_body(&mut self) -> Result<SelectStatement> {
        // Select list.
        let mut items = Vec::new();
        loop {
            if self.accept(&Token::Star) {
                items.push(SelectItem {
                    expr: AstExpr::Wildcard,
                    alias: None,
                });
            } else {
                let expr = self.expr()?;
                let alias = if self.accept_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem { expr, alias });
            }
            if !self.accept(&Token::Comma) {
                break;
            }
        }

        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            let dataset = self.ident()?;
            // Optional alias (must not be a clause keyword).
            let alias = match self.peek() {
                Some(Token::Ident(s))
                    if !["where", "group", "order", "limit"]
                        .iter()
                        .any(|kw| s.eq_ignore_ascii_case(kw)) =>
                {
                    self.ident()?
                }
                _ => dataset.clone(),
            };
            from.push(TableRef { dataset, alias });
            if !self.accept(&Token::Comma) {
                break;
            }
        }

        let where_clause = if self.accept_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.accept_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.accept_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.accept_kw("desc") {
                    true
                } else {
                    self.accept_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.accept_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(FudjError::Parse(format!(
                        "expected LIMIT count, found {other}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    // ---- Expression grammar (precedence climbing) -----------------------
    // or_expr := and_expr (OR and_expr)*
    // and_expr := not_expr (AND not_expr)*
    // not_expr := NOT not_expr | cmp_expr
    // cmp_expr := add_expr ((= | <> | < | <= | > | >=) add_expr)?
    // add_expr := mul_expr ((+|-) mul_expr)*
    // mul_expr := atom ((*|/) atom)*
    // atom := literal | call | column | ( or_expr ) | - atom

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: AstBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("and") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.accept_kw("not") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(AstBinOp::Eq),
            Some(Token::NotEq) => Some(AstBinOp::NotEq),
            Some(Token::Lt) => Some(AstBinOp::Lt),
            Some(Token::LtEq) => Some(AstBinOp::LtEq),
            Some(Token::Gt) => Some(AstBinOp::Gt),
            Some(Token::GtEq) => Some(AstBinOp::GtEq),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.add_expr()?;
                Ok(AstExpr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => AstBinOp::Add,
                Some(Token::Minus) => AstBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => AstBinOp::Mul,
                Some(Token::Slash) => AstBinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.atom()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<AstExpr> {
        match self.next()? {
            Token::Int(v) => Ok(AstExpr::IntLit(v)),
            Token::Float(v) => Ok(AstExpr::FloatLit(v)),
            Token::Str(s) => Ok(AstExpr::StrLit(s)),
            Token::Param(n) => Ok(AstExpr::Param(n)),
            Token::Minus => {
                let inner = self.atom()?;
                Ok(match inner {
                    AstExpr::IntLit(v) => AstExpr::IntLit(-v),
                    AstExpr::FloatLit(v) => AstExpr::FloatLit(-v),
                    other => AstExpr::Binary {
                        op: AstBinOp::Sub,
                        left: Box::new(AstExpr::IntLit(0)),
                        right: Box::new(other),
                    },
                })
            }
            Token::LParen => {
                let e = self.or_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(AstExpr::BoolLit(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(AstExpr::BoolLit(false));
                }
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    // COUNT(*) / COUNT(1)
                    if name.eq_ignore_ascii_case("count") {
                        if self.accept(&Token::Star) {
                            self.expect(&Token::RParen)?;
                            return Ok(AstExpr::CountStar);
                        }
                        if self.peek() == Some(&Token::Int(1)) {
                            self.pos += 1;
                            self.expect(&Token::RParen)?;
                            return Ok(AstExpr::CountStar);
                        }
                    }
                    let mut args = Vec::new();
                    if !self.accept(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.accept(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    return Ok(AstExpr::Call { name, args });
                }
                // Qualified column?
                if self.accept(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column(format!("{name}.{col}")));
                }
                Ok(AstExpr::Column(name))
            }
            other => Err(FudjError::Parse(format!("unexpected token {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query4_create_join() {
        let stmt = parse(
            r#"CREATE JOIN text_similarity_join(a: string, b: string, t: double)
               RETURNS boolean
               AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins;"#,
        )
        .unwrap();
        assert_eq!(
            stmt,
            Statement::CreateJoin {
                name: "text_similarity_join".into(),
                args: vec![
                    ("a".into(), DataType::String),
                    ("b".into(), DataType::String),
                    ("t".into(), DataType::Float64),
                ],
                class: "setsimilarity.SetSimilarityJoin".into(),
                library: "flexiblejoins".into(),
                options: vec![],
            }
        );
    }

    #[test]
    fn parses_create_join_with_guard_options() {
        let stmt = parse(
            r#"CREATE JOIN g(a: point, b: polygon) RETURNS boolean
               AS "spatial.SpatialJoin" AT flexiblejoins
               WITH (policy = quarantine, budget_ms = 500, check_sample = 1);"#,
        )
        .unwrap();
        let Statement::CreateJoin { options, .. } = stmt else {
            panic!("not a create join")
        };
        assert_eq!(
            options,
            vec![
                ("policy".to_string(), "quarantine".to_string()),
                ("budget_ms".to_string(), "500".to_string()),
                ("check_sample".to_string(), "1".to_string()),
            ]
        );
    }

    #[test]
    fn parses_drop_join_with_signature() {
        let stmt =
            parse("DROP JOIN text_similarity_join(a: string, b: string, t: double);").unwrap();
        assert_eq!(
            stmt,
            Statement::DropJoin {
                name: "text_similarity_join".into()
            }
        );
    }

    #[test]
    fn parses_query1_shape() {
        let stmt = parse(
            "SELECT p.id, p.tags, COUNT(w.id) AS num_fires \
             FROM Parks p, Wildfires w \
             WHERE ST_Contains(p.boundary, w.location) \
               AND w.fire_start >= parse_date('01/01/2022', 'M/D/Y') \
             GROUP BY p.id, p.tags ORDER BY num_fires DESC LIMIT 20",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("not a select")
        };
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.items[2].alias.as_deref(), Some("num_fires"));
        assert_eq!(sel.from.len(), 2);
        assert_eq!(
            sel.from[1],
            TableRef {
                dataset: "Wildfires".into(),
                alias: "w".into()
            }
        );
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.group_by.len(), 2);
        assert_eq!(sel.order_by.len(), 1);
        assert!(sel.order_by[0].1, "descending");
        assert_eq!(sel.limit, Some(20));
    }

    #[test]
    fn count_star_and_count_one() {
        for sql in ["SELECT COUNT(*) FROM T", "SELECT COUNT(1) FROM T"] {
            let Statement::Select(sel) = parse(sql).unwrap() else {
                panic!()
            };
            assert_eq!(sel.items[0].expr, AstExpr::CountStar);
        }
    }

    #[test]
    fn operator_precedence() {
        let Statement::Select(sel) = parse("SELECT a + b * 2 >= 10 FROM T").unwrap() else {
            panic!()
        };
        // Parses as (a + (b * 2)) >= 10.
        match &sel.items[0].expr {
            AstExpr::Binary {
                op: AstBinOp::GtEq,
                left,
                ..
            } => match left.as_ref() {
                AstExpr::Binary {
                    op: AstBinOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        right.as_ref(),
                        AstExpr::Binary {
                            op: AstBinOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let Statement::Select(sel) =
            parse("SELECT * FROM T WHERE a OR b AND c").unwrap_or_else(|e| panic!("{e}"))
        else {
            panic!()
        };
        let w = sel.where_clause.unwrap();
        assert!(matches!(
            w,
            AstExpr::Binary {
                op: AstBinOp::Or,
                ..
            }
        ));
    }

    #[test]
    fn explain_prefix() {
        let stmt = parse("EXPLAIN SELECT COUNT(*) FROM T t").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: false, .. }));
        let stmt = parse("EXPLAIN ANALYZE SELECT COUNT(*) FROM T t").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("SELEC x FROM t").is_err());
        assert!(parse("SELECT x FROM").is_err());
        assert!(parse("SELECT x FROM t WHERE").is_err());
        assert!(parse("CREATE JOIN j(a string) RETURNS boolean AS \"c\" AT l").is_err());
        assert!(parse("SELECT x FROM t extra garbage here").is_err());
    }

    #[test]
    fn prepare_and_execute() {
        let stmt =
            parse("PREPARE fires AS SELECT COUNT(*) FROM Wildfires w WHERE w.acres >= $1").unwrap();
        let Statement::Prepare { name, select } = stmt else {
            panic!("not a prepare")
        };
        assert_eq!(name, "fires");
        assert!(select.where_clause.is_some());

        let stmt = parse("EXECUTE fires (2.5)").unwrap();
        assert_eq!(
            stmt,
            Statement::Execute {
                name: "fires".into(),
                params: vec![AstExpr::FloatLit(2.5)],
            }
        );
        // No parameters, both spellings.
        assert!(matches!(
            parse("EXECUTE fires").unwrap(),
            Statement::Execute { ref params, .. } if params.is_empty()
        ));
        assert!(matches!(
            parse("EXECUTE fires ()").unwrap(),
            Statement::Execute { ref params, .. } if params.is_empty()
        ));
        // Negative and mixed literal parameters.
        let Statement::Execute { params, .. } = parse("EXECUTE fires (-3, 'x', true)").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            params,
            vec![
                AstExpr::IntLit(-3),
                AstExpr::StrLit("x".into()),
                AstExpr::BoolLit(true),
            ]
        );
        // Non-literal parameters are rejected.
        let err = parse("EXECUTE fires (w.acres)").unwrap_err();
        assert!(err.to_string().contains("must be literals"), "{err}");
    }

    #[test]
    fn negative_literals() {
        let Statement::Select(sel) = parse("SELECT -5, -2.5 FROM T").unwrap() else {
            panic!()
        };
        assert_eq!(sel.items[0].expr, AstExpr::IntLit(-5));
        assert_eq!(sel.items[1].expr, AstExpr::FloatLit(-2.5));
    }
}
