//! Property tests for the SQL front end: the lexer never panics, and
//! generated well-formed SELECTs parse with the structure they were built
//! from.

use fudj_sql::ast::{AstExpr, Statement};
use fudj_sql::parse;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "group"
                | "by"
                | "order"
                | "limit"
                | "as"
                | "and"
                | "or"
                | "not"
                | "desc"
                | "asc"
                | "create"
                | "drop"
                | "join"
                | "returns"
                | "boolean"
                | "at"
                | "explain"
                | "count"
                | "sum"
                | "avg"
                | "min"
                | "max"
                | "true"
                | "false"
        )
    })
}

proptest! {
    /// Arbitrary input must never panic the lexer/parser.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Bytes that look vaguely SQL-ish must never panic either.
    #[test]
    fn sqlish_soup_never_panics(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "(", ")", ",",
                ";", "*", "=", "<>", ">=", "AND", "OR", "x", "t", "1", "0.5", "'s'", ".",
            ]),
            0..30,
        )
    ) {
        let _ = parse(&words.join(" "));
    }

    /// A generated simple query round-trips its structure.
    #[test]
    fn generated_select_parses(
        cols in prop::collection::vec(ident(), 1..4),
        table in ident(),
        alias in ident(),
        filter_col in ident(),
        lit in 0i64..1000,
        limit in prop::option::of(0usize..100),
    ) {
        let mut sql = format!("SELECT {} FROM {table} {alias} WHERE {filter_col} >= {lit}",
            cols.join(", "));
        if let Some(n) = limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        let Statement::Select(sel) = parse(&sql).unwrap() else { panic!("not select") };
        prop_assert_eq!(sel.items.len(), cols.len());
        for (item, name) in sel.items.iter().zip(&cols) {
            prop_assert_eq!(&item.expr, &AstExpr::Column(name.clone()));
        }
        prop_assert_eq!(&sel.from[0].dataset, &table);
        prop_assert_eq!(&sel.from[0].alias, &alias);
        prop_assert!(sel.where_clause.is_some());
        prop_assert_eq!(sel.limit, limit);
    }

    /// Integer and float literals survive parsing exactly.
    #[test]
    fn literals_roundtrip(i in -1_000_000i64..1_000_000, f in 0.001f64..1e6) {
        let sql = format!("SELECT {i}, {f:?} FROM t");
        let Statement::Select(sel) = parse(&sql).unwrap() else { panic!() };
        prop_assert_eq!(&sel.items[0].expr, &AstExpr::IntLit(i));
        match &sel.items[1].expr {
            AstExpr::FloatLit(v) => prop_assert!((v - f).abs() < 1e-9 * f.abs().max(1.0)),
            other => prop_assert!(false, "expected float, got {other:?}"),
        }
    }

    /// String literals with embedded quotes round-trip through escaping.
    #[test]
    fn string_literals_roundtrip(s in "[a-zA-Z0-9 ']{0,24}") {
        let quoted = s.replace('\'', "''");
        let sql = format!("SELECT '{quoted}' FROM t");
        let Statement::Select(sel) = parse(&sql).unwrap() else { panic!() };
        prop_assert_eq!(&sel.items[0].expr, &AstExpr::StrLit(s));
    }
}
