//! The optimizer: predicate pushdown and the FUDJ rewrite rule (§VI-C).

use crate::expr::Expr;
use crate::logical::LogicalPlan;
use fudj_core::{EngineJoin, GuardMode, JoinRegistry};
use fudj_types::{FudjError, Result, Schema, Value};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Planner options.
#[derive(Clone, Default)]
pub struct PlanOptions {
    /// Ignore registered FUDJs and lower every join to the on-top NLJ plan —
    /// how the experiments produce the on-top baseline series.
    pub force_on_top: bool,
    /// Extra literal parameters appended to every FUDJ's `divide` call
    /// (grid side / granule count sweeps, Fig. 11) after any parameters the
    /// query itself passes.
    pub extra_join_params: Vec<Value>,
    /// Per-join-name strategy overrides: lower the named FUDJ to this
    /// engine strategy instead of the registered library (how the
    /// experiments swap in the hand-built and advanced operators while
    /// keeping the query text identical).
    pub join_overrides: HashMap<String, Arc<dyn EngineJoin>>,
    /// Local bucket-matching strategy for FUDJ joins (hash grouping by
    /// default; sort-merge is the §VIII extension).
    pub combine: fudj_exec::CombineStrategy,
    /// Per-worker row budget; FUDJ joins exceeding it spill to disk.
    pub memory_budget_rows: Option<usize>,
    /// Hybrid-hash spill fan-out override (`SET spill_fanout`); the
    /// engine default applies when unset.
    pub spill_fanout: Option<usize>,
    /// Hybrid-hash recursive-repartition depth cap override
    /// (`SET spill_recursion_limit`); the engine default applies when
    /// unset. Past the cap, over-budget sub-partitions fall back to a
    /// block-nested-loop pass.
    pub spill_recursion_limit: Option<usize>,
    /// UDF guardrail selection: each join definition's own config (the
    /// default), a session-wide override, or off (unguarded reference runs).
    /// Applies to registry-resolved joins only — [`Self::join_overrides`]
    /// are trusted engine strategies and are never wrapped.
    pub guard: GuardMode,
    /// Execution-mode override (`SET exec_mode = row|columnar`); the
    /// executor default ([`fudj_exec::ExecMode::from_env`]) applies when
    /// unset. Plans are identical either way — the mode only selects the
    /// evaluation strategy at the executor.
    pub exec_mode: Option<fudj_exec::ExecMode>,
}

impl fmt::Debug for PlanOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanOptions")
            .field("force_on_top", &self.force_on_top)
            .field("extra_join_params", &self.extra_join_params)
            .field(
                "join_overrides",
                &self.join_overrides.keys().collect::<Vec<_>>(),
            )
            .field("combine", &self.combine)
            .field("memory_budget_rows", &self.memory_budget_rows)
            .field("spill_fanout", &self.spill_fanout)
            .field("spill_recursion_limit", &self.spill_recursion_limit)
            .field("guard", &self.guard)
            .field("exec_mode", &self.exec_mode)
            .finish()
    }
}

/// Run the rule pipeline: pushdown, then FUDJ detection/rewrite.
pub fn optimize(
    plan: LogicalPlan,
    registry: &JoinRegistry,
    options: &PlanOptions,
) -> Result<LogicalPlan> {
    rewrite(plan, registry, options)
}

fn rewrite(
    plan: LogicalPlan,
    registry: &JoinRegistry,
    options: &PlanOptions,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => {
            // Flatten filter chains, and merge a filter sitting on a join
            // into the join condition *before* rewriting the join, so
            // pushdown and FUDJ detection see all its conjuncts.
            let mut predicate = predicate;
            let mut input = *input;
            while let LogicalPlan::Filter {
                input: inner,
                predicate: p,
            } = input
            {
                predicate = p.and(predicate);
                input = *inner;
            }
            match input {
                LogicalPlan::Join {
                    left,
                    right,
                    condition,
                } => rewrite(
                    LogicalPlan::Join {
                        left,
                        right,
                        condition: condition.and(predicate),
                    },
                    registry,
                    options,
                )?,
                other => LogicalPlan::Filter {
                    input: Box::new(rewrite(other, registry, options)?),
                    predicate,
                },
            }
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, registry, options)?),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            condition,
        } => {
            let left = rewrite(*left, registry, options)?;
            let right = rewrite(*right, registry, options)?;
            rewrite_join(left, right, condition, registry, options)?
        }
        LogicalPlan::FudjJoin { .. } => plan, // already rewritten
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input, registry, options)?),
            group_by,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(*input, registry, options)?),
            keys,
        },
        LogicalPlan::Limit { input, limit } => LogicalPlan::Limit {
            input: Box::new(rewrite(*input, registry, options)?),
            limit,
        },
    })
}

/// Which side(s) of a join an expression touches.
fn side_of(cols: &BTreeSet<String>, left: &Schema, right: &Schema) -> (bool, bool) {
    let mut touches_left = false;
    let mut touches_right = false;
    for c in cols {
        if left.index_of(c).is_ok() {
            touches_left = true;
        } else if right.index_of(c).is_ok() {
            touches_right = true;
        }
    }
    (touches_left, touches_right)
}

/// The join rewrite: predicate pushdown + FUDJ detection.
fn rewrite_join(
    left: LogicalPlan,
    right: LogicalPlan,
    condition: Expr,
    registry: &JoinRegistry,
    options: &PlanOptions,
) -> Result<LogicalPlan> {
    let lschema = left.schema()?;
    let rschema = right.schema()?;

    // --- Predicate pushdown: route single-side conjuncts to the children.
    let mut left_filters = Vec::new();
    let mut right_filters = Vec::new();
    let mut cross = Vec::new();
    for conjunct in condition.split_conjuncts() {
        let cols = conjunct.referenced_columns();
        match side_of(&cols, &lschema, &rschema) {
            (true, false) => left_filters.push(conjunct),
            (false, true) => right_filters.push(conjunct),
            // Constant conjuncts stay above the join too (rare, harmless).
            _ => cross.push(conjunct),
        }
    }
    // Re-rewrite children that received pushed-down predicates: a filter
    // landing on a nested join must merge into that join's condition (e.g.
    // Query 3's three-way join, where the spatial conjunct belongs to the
    // inner join).
    let left = match Expr::conjoin(left_filters) {
        Some(p) => rewrite(left.filter(p), registry, options)?,
        None => left,
    };
    let right = match Expr::conjoin(right_filters) {
        Some(p) => rewrite(right.filter(p), registry, options)?,
        None => right,
    };

    // --- FUDJ detection among the cross conjuncts.
    let mut fudj: Option<(usize, FudjMatch)> = None;
    if !options.force_on_top {
        for (i, conjunct) in cross.iter().enumerate() {
            if let Some(m) = match_fudj_predicate(conjunct, registry, &lschema, &rschema)? {
                fudj = Some((i, m));
                break;
            }
        }
    }

    let Some((idx, m)) = fudj else {
        // No FUDJ predicate: leave the join for the on-top NLJ lowering.
        let condition = Expr::conjoin(cross).unwrap_or(Expr::lit(true));
        return Ok(LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            condition,
        });
    };

    cross.remove(idx);
    let residual = Expr::conjoin(cross);

    // --- Self-join annotation: both sides are bare scans of one dataset
    // (pushed-down filters break the equivalence) and the algorithm is
    // symmetric — the engine then summarizes once (§VI-C).
    let self_join = matches!(
        (&left, &right),
        (
            LogicalPlan::Scan { dataset: dl, .. },
            LogicalPlan::Scan { dataset: dr, .. },
        ) if std::sync::Arc::ptr_eq(dl, dr)
    ) && registry
        .get(&m.join_name)
        .is_some_and(|d| d.algorithm().symmetric());

    let mut params = m.params;
    params.extend(options.extra_join_params.iter().cloned());

    Ok(LogicalPlan::FudjJoin {
        left: Box::new(left),
        right: Box::new(right),
        join_name: m.join_name,
        left_key: m.left_key,
        right_key: m.right_key,
        params,
        residual,
        self_join,
    })
}

struct FudjMatch {
    join_name: String,
    left_key: Expr,
    right_key: Expr,
    params: Vec<Value>,
}

/// Try to interpret one conjunct as a FUDJ predicate. Two accepted shapes:
///
/// * `fudj_name(k1, k2, p...)` — a registered boolean join function;
/// * `fudj_name(k1, k2, p...) >= lit` / `> lit` — a registered similarity
///   function compared against a threshold (the threshold becomes the last
///   parameter), which is how Query 2/5's `jaccard_similarity(...) >= t`
///   binds to the text-similarity FUDJ.
fn match_fudj_predicate(
    conjunct: &Expr,
    registry: &JoinRegistry,
    left: &Schema,
    right: &Schema,
) -> Result<Option<FudjMatch>> {
    let (call, threshold) = match conjunct {
        Expr::Call { .. } => (conjunct, None),
        Expr::Binary {
            op: crate::expr::BinOp::GtEq | crate::expr::BinOp::Gt,
            left: l,
            right: r,
        } => match (l.as_ref(), r.as_ref()) {
            (call @ Expr::Call { .. }, Expr::Literal(v)) => (call, Some(v.clone())),
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let Expr::Call { name, args } = call else {
        return Ok(None);
    };
    let lowered = name.to_ascii_lowercase();
    if registry.get(&lowered).is_none() {
        return Ok(None);
    }
    if args.len() < 2 {
        return Err(FudjError::Plan(format!(
            "FUDJ predicate {lowered} needs two key arguments"
        )));
    }

    // Resolve which side each key expression belongs to.
    let k0 = &args[0];
    let k1 = &args[1];
    let s0 = side_of(&k0.referenced_columns(), left, right);
    let s1 = side_of(&k1.referenced_columns(), left, right);
    let (left_key, right_key) = match (s0, s1) {
        ((true, false), (false, true)) => (k0.clone(), k1.clone()),
        ((false, true), (true, false)) => (k1.clone(), k0.clone()),
        _ => {
            // Keys straddle sides (or are constant): not a partitionable
            // FUDJ predicate — let it fall through to the NLJ path.
            return Ok(None);
        }
    };

    // Remaining args (and a comparison threshold) must be literals.
    let mut params = Vec::new();
    for extra in &args[2..] {
        match extra {
            Expr::Literal(v) => params.push(v.clone()),
            other => {
                return Err(FudjError::Plan(format!(
                    "FUDJ parameter must be a literal, got {other}"
                )))
            }
        }
    }
    if let Some(t) = threshold {
        params.push(t);
    }

    Ok(Some(FudjMatch {
        join_name: lowered,
        left_key,
        right_key,
        params,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_joins::standard_library;
    use fudj_storage::{Dataset, DatasetBuilder};
    use fudj_types::{DataType, Field};
    use std::sync::Arc;

    fn registry() -> JoinRegistry {
        let reg = JoinRegistry::new();
        reg.install_library(standard_library());
        reg.create_join(
            "st_contains",
            vec![DataType::Polygon, DataType::Point],
            "spatial.SpatialJoin",
            "flexiblejoins",
        )
        .unwrap();
        reg.create_join(
            "jaccard_similarity",
            vec![DataType::String, DataType::String, DataType::Float64],
            "setsimilarity.SetSimilarityJoin",
            "flexiblejoins",
        )
        .unwrap();
        reg
    }

    fn parks() -> Arc<Dataset> {
        Arc::new(
            DatasetBuilder::new(
                "Parks",
                fudj_types::Schema::shared(vec![
                    Field::new("id", DataType::Uuid),
                    Field::new("boundary", DataType::Polygon),
                    Field::new("tags", DataType::String),
                ]),
            )
            .build()
            .unwrap(),
        )
    }

    fn fires() -> Arc<Dataset> {
        Arc::new(
            DatasetBuilder::new(
                "Wildfires",
                fudj_types::Schema::shared(vec![
                    Field::new("id", DataType::Uuid),
                    Field::new("location", DataType::Point),
                    Field::new("fire_start", DataType::DateTime),
                ]),
            )
            .build()
            .unwrap(),
        )
    }

    fn query1_logical() -> LogicalPlan {
        // Parks p JOIN Wildfires w
        //   ON st_contains(p.boundary, w.location)
        //   AND w.fire_start >= 42
        LogicalPlan::scan(parks(), "p").join(
            LogicalPlan::scan(fires(), "w"),
            Expr::call(
                "st_contains",
                vec![Expr::col("p.boundary"), Expr::col("w.location")],
            )
            .and(Expr::binary(
                crate::expr::BinOp::GtEq,
                Expr::col("w.fire_start"),
                Expr::lit(42i64),
            )),
        )
    }

    #[test]
    fn detects_fudj_and_pushes_filters() {
        let plan = optimize(query1_logical(), &registry(), &PlanOptions::default()).unwrap();
        match plan {
            LogicalPlan::FudjJoin {
                left,
                right,
                join_name,
                residual,
                self_join,
                ..
            } => {
                assert_eq!(join_name, "st_contains");
                assert!(residual.is_none());
                assert!(!self_join);
                assert!(matches!(*left, LogicalPlan::Scan { .. }));
                // The fire_start filter was pushed below the join.
                assert!(matches!(*right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected FudjJoin, got {other:?}"),
        }
    }

    #[test]
    fn force_on_top_keeps_nlj() {
        let options = PlanOptions {
            force_on_top: true,
            ..Default::default()
        };
        let plan = optimize(query1_logical(), &registry(), &options).unwrap();
        match plan {
            LogicalPlan::Join {
                condition, right, ..
            } => {
                // FUDJ predicate stays in the NLJ condition...
                assert!(condition.to_string().contains("st_contains"));
                // ...but pushdown still applies.
                assert!(matches!(*right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected Join, got {other:?}"),
        }
    }

    #[test]
    fn threshold_comparison_binds_as_parameter() {
        let reg = registry();
        let parks = parks();
        let plan = LogicalPlan::scan(parks.clone(), "a").join(
            LogicalPlan::scan(parks, "b"),
            Expr::binary(
                crate::expr::BinOp::GtEq,
                Expr::call(
                    "jaccard_similarity",
                    vec![Expr::col("a.tags"), Expr::col("b.tags")],
                ),
                Expr::lit(0.5),
            ),
        );
        match optimize(plan, &reg, &PlanOptions::default()).unwrap() {
            LogicalPlan::FudjJoin {
                join_name,
                params,
                self_join,
                ..
            } => {
                assert_eq!(join_name, "jaccard_similarity");
                assert_eq!(params, vec![Value::Float64(0.5)]);
                assert!(self_join, "same dataset both sides, symmetric join");
            }
            other => panic!("expected FudjJoin, got {other:?}"),
        }
    }

    #[test]
    fn swapped_key_sides_are_normalized() {
        let reg = registry();
        // st_contains(w-side key first? no — keys given right-then-left).
        let plan = LogicalPlan::scan(parks(), "p").join(
            LogicalPlan::scan(fires(), "w"),
            Expr::call(
                "st_contains",
                vec![Expr::col("w.location"), Expr::col("p.boundary")],
            ),
        );
        match optimize(plan, &reg, &PlanOptions::default()).unwrap() {
            LogicalPlan::FudjJoin {
                left_key,
                right_key,
                ..
            } => {
                assert_eq!(left_key, Expr::col("p.boundary"));
                assert_eq!(right_key, Expr::col("w.location"));
            }
            other => panic!("expected FudjJoin, got {other:?}"),
        }
    }

    #[test]
    fn unregistered_function_falls_back_to_nlj() {
        let reg = JoinRegistry::new(); // nothing registered
        let plan = optimize(query1_logical(), &reg, &PlanOptions::default()).unwrap();
        assert!(matches!(plan, LogicalPlan::Join { .. }));
    }

    #[test]
    fn extra_params_are_appended() {
        let options = PlanOptions {
            extra_join_params: vec![Value::Int64(1200)],
            ..Default::default()
        };
        match optimize(query1_logical(), &registry(), &options).unwrap() {
            LogicalPlan::FudjJoin { params, .. } => {
                assert_eq!(params, vec![Value::Int64(1200)]);
            }
            other => panic!("expected FudjJoin, got {other:?}"),
        }
    }

    #[test]
    fn filter_above_join_is_merged_then_pushed() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::scan(parks(), "p").join(
                LogicalPlan::scan(fires(), "w"),
                Expr::call(
                    "st_contains",
                    vec![Expr::col("p.boundary"), Expr::col("w.location")],
                ),
            )),
            predicate: Expr::binary(
                crate::expr::BinOp::GtEq,
                Expr::col("w.fire_start"),
                Expr::lit(42i64),
            ),
        };
        match optimize(plan, &registry(), &PlanOptions::default()).unwrap() {
            LogicalPlan::FudjJoin { right, .. } => {
                assert!(matches!(*right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected FudjJoin, got {other:?}"),
        }
    }

    #[test]
    fn non_literal_parameter_is_an_error() {
        let reg = registry();
        let plan = LogicalPlan::scan(parks(), "a").join(
            LogicalPlan::scan(parks(), "b"),
            Expr::call(
                "jaccard_similarity",
                vec![Expr::col("a.tags"), Expr::col("b.tags"), Expr::col("a.id")],
            ),
        );
        assert!(optimize(plan, &reg, &PlanOptions::default()).is_err());
    }
}
