//! Expression trees, binding, and compilation.
//!
//! [`Expr`] is the unbound form the SQL binder and tests construct (columns
//! by name). Binding against a schema yields a [`BoundExpr`] (columns by
//! index), which compiles into an `Arc<dyn Fn(&Row) -> Result<Value>>`
//! evaluator — the closures `fudj_exec` plans run.

use crate::functions;
use fudj_types::{DataType, FudjError, Result, Row, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A compiled row evaluator.
pub type Evaluator = Arc<dyn Fn(&Row) -> Result<Value> + Send + Sync>;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// An unbound expression (columns referenced by name).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference, usually qualified (`p.id`).
    Column(String),
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    /// Scalar function call (case-insensitive name).
    Call {
        name: String,
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal value.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Function call.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Binary expression.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, other)
    }

    /// All column names referenced by this expression.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(name) => {
                out.insert(name.clone());
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(inner) => inner.collect_columns(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Split a conjunction into its conjuncts (`a AND b AND c` → `[a,b,c]`).
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.split_conjuncts();
                out.extend(right.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts; `None` when empty.
    pub fn conjoin(exprs: Vec<Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Bind column names to indices in `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Column(name) => BoundExpr::Column(schema.index_of(name)?),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Not(inner) => BoundExpr::Not(Box::new(inner.bind(schema)?)),
            Expr::Call { name, args } => {
                let lowered = name.to_ascii_lowercase();
                if !functions::is_builtin(&lowered) {
                    return Err(FudjError::Plan(format!("unknown function {name:?}")));
                }
                BoundExpr::Call {
                    name: lowered,
                    args: args.iter().map(|a| a.bind(schema)).collect::<Result<_>>()?,
                }
            }
        })
    }

    /// Best-effort output type against a schema (planner schema inference).
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        Ok(match self {
            Expr::Column(name) => schema.field(name)?.data_type.clone(),
            Expr::Literal(v) => v.data_type(),
            Expr::Binary { op, left, .. } => match op {
                BinOp::Eq
                | BinOp::NotEq
                | BinOp::Lt
                | BinOp::LtEq
                | BinOp::Gt
                | BinOp::GtEq
                | BinOp::And
                | BinOp::Or => DataType::Bool,
                BinOp::Div => DataType::Float64,
                _ => left.data_type(schema)?,
            },
            Expr::Not(_) => DataType::Bool,
            Expr::Call { name, .. } => functions::return_type(&name.to_ascii_lowercase()),
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(inner) => write!(f, "NOT ({inner})"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A bound expression (columns by index), ready to evaluate or compile.
#[derive(Clone, Debug)]
pub enum BoundExpr {
    Column(usize),
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
    Call {
        name: String,
        args: Vec<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against one row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            BoundExpr::Column(i) => Ok(row.get(*i).clone()),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Binary { op, left, right } => {
                // Short-circuit the logical operators.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(
                            left.eval(row)?.as_bool()? && right.eval(row)?.as_bool()?,
                        ))
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(
                            left.eval(row)?.as_bool()? || right.eval(row)?.as_bool()?,
                        ))
                    }
                    _ => {}
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            BoundExpr::Not(inner) => Ok(Value::Bool(!inner.eval(row)?.as_bool()?)),
            BoundExpr::Call { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(row)?);
                }
                functions::evaluate(name, &values)
            }
        }
    }

    /// Compile into a shared evaluator closure.
    pub fn compile(self) -> Evaluator {
        Arc::new(move |row| self.eval(row))
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    Ok(match op {
        Eq => Value::Bool(l == r),
        NotEq => Value::Bool(l != r),
        Lt => Value::Bool(l < r),
        LtEq => Value::Bool(l <= r),
        Gt => Value::Bool(l > r),
        GtEq => Value::Bool(l >= r),
        Add | Sub | Mul | Div => {
            // Integer arithmetic when both operands are integral. Checked:
            // overflow on user data is a query error, not a panic.
            if let (Value::Int64(a), Value::Int64(b)) = (l, r) {
                let overflow =
                    || FudjError::Execution(format!("integer overflow evaluating {a} {op:?} {b}"));
                match op {
                    Add => Value::Int64(a.checked_add(*b).ok_or_else(overflow)?),
                    Sub => Value::Int64(a.checked_sub(*b).ok_or_else(overflow)?),
                    Mul => Value::Int64(a.checked_mul(*b).ok_or_else(overflow)?),
                    Div => {
                        if *b == 0 {
                            return Err(FudjError::Execution("division by zero".into()));
                        }
                        Value::Float64(*a as f64 / *b as f64)
                    }
                    // The outer arm admits only arithmetic operators; a
                    // mismatch here is a planner defect, surfaced as an
                    // error rather than a query-path panic.
                    other => {
                        return Err(FudjError::Execution(format!(
                            "non-arithmetic operator {other:?} reached integer arithmetic"
                        )))
                    }
                }
            } else {
                let a = l.as_f64()?;
                let b = r.as_f64()?;
                match op {
                    Add => Value::Float64(a + b),
                    Sub => Value::Float64(a - b),
                    Mul => Value::Float64(a * b),
                    Div => {
                        if b == 0.0 {
                            return Err(FudjError::Execution("division by zero".into()));
                        }
                        Value::Float64(a / b)
                    }
                    other => {
                        return Err(FudjError::Execution(format!(
                            "non-arithmetic operator {other:?} reached float arithmetic"
                        )))
                    }
                }
            }
        }
        // `eval` short-circuits the logical operators before calling here;
        // seeing one is a dispatch defect, not grounds for a panic.
        And | Or => {
            return Err(FudjError::Execution(format!(
                "logical operator {op:?} reached eval_binary without short-circuit handling"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::String),
            Field::new("c", DataType::Float64),
        ])
    }

    fn row() -> Row {
        Row::new(vec![Value::Int64(4), Value::str("hi"), Value::Float64(2.5)])
    }

    fn eval(e: Expr) -> Value {
        e.bind(&schema()).unwrap().eval(&row()).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(
            eval(Expr::binary(BinOp::Add, Expr::col("a"), Expr::lit(3i64))),
            Value::Int64(7)
        );
        assert_eq!(
            eval(Expr::binary(BinOp::Mul, Expr::col("c"), Expr::lit(2i64))),
            Value::Float64(5.0)
        );
        assert_eq!(eval(Expr::col("a").eq(Expr::lit(4i64))), Value::Bool(true));
        assert_eq!(
            eval(Expr::binary(BinOp::Lt, Expr::col("a"), Expr::lit(4i64))),
            Value::Bool(false)
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::binary(BinOp::Div, Expr::col("a"), Expr::lit(0i64))
            .bind(&schema())
            .unwrap();
        assert!(e.eval(&row()).is_err());
    }

    #[test]
    fn logic_short_circuits() {
        // Right side would be a type error; AND must not evaluate it.
        let e = Expr::binary(
            BinOp::And,
            Expr::lit(false),
            Expr::binary(BinOp::Lt, Expr::col("b"), Expr::lit(1i64)).eq(Expr::lit(true)),
        );
        assert_eq!(eval(e), Value::Bool(false));
    }

    #[test]
    fn unknown_column_and_function_fail_at_bind() {
        assert!(Expr::col("zzz").bind(&schema()).is_err());
        assert!(Expr::call("no_such_fn", vec![]).bind(&schema()).is_err());
    }

    #[test]
    fn conjunct_splitting_roundtrip() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit("x")))
            .and(Expr::col("c").eq(Expr::lit(0.5)));
        let parts = e.clone().split_conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(Expr::conjoin(parts).unwrap(), e);
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn referenced_columns_are_collected() {
        let e = Expr::call(
            "st_contains",
            vec![
                Expr::col("p.boundary"),
                Expr::call("st_makepoint", vec![Expr::col("w.lat"), Expr::col("w.lon")]),
            ],
        );
        let cols = e.referenced_columns();
        assert_eq!(
            cols.into_iter().collect::<Vec<_>>(),
            vec!["p.boundary", "w.lat", "w.lon"]
        );
    }

    #[test]
    fn display_renders_sql_like() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::Not(Box::new(Expr::col("ok"))));
        assert_eq!(e.to_string(), "((a = 1) AND NOT (ok))");
    }
}
