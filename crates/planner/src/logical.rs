//! Logical plans.
//!
//! Scans qualify their columns with the query alias (`p.id`), so downstream
//! expressions reference columns unambiguously even in self-joins.

use crate::expr::Expr;
use fudj_exec::AggFunc;
use fudj_storage::Dataset;
use fudj_types::{Field, Result, Schema, SchemaRef, Value};
use std::sync::Arc;

/// One aggregate in a logical Aggregate node.
#[derive(Clone, Debug)]
pub struct LogicalAggregate {
    pub func: AggFunc,
    /// Input expression; `None` = `COUNT(*)`.
    pub input: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// A sort key: a column expression plus direction.
#[derive(Clone, Debug)]
pub struct LogicalSortKey {
    pub expr: Expr,
    pub descending: bool,
}

/// A logical operator tree.
#[derive(Debug)]
pub enum LogicalPlan {
    /// Scan of a stored dataset under an alias; columns are exposed as
    /// `alias.column`.
    Scan {
        dataset: Arc<Dataset>,
        alias: String,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Projection with output names.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Inner join under an arbitrary boolean condition. The optimizer
    /// rewrites this into [`LogicalPlan::FudjJoin`] when the condition
    /// carries a registered FUDJ predicate; otherwise it lowers to the
    /// on-top NLJ.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        condition: Expr,
    },
    /// Post-rewrite FUDJ join (produced by the optimizer, not by binders).
    FudjJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        /// Registered join name (`CREATE JOIN` name).
        join_name: String,
        /// Key expression over the left input.
        left_key: Expr,
        /// Key expression over the right input.
        right_key: Expr,
        /// Literal query-time parameters for `divide`.
        params: Vec<Value>,
        /// Residual non-FUDJ conjuncts applied after the join.
        residual: Option<Expr>,
        /// Self-join summarize-once annotation (§VI-C).
        self_join: bool,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<(Expr, String)>,
        aggregates: Vec<LogicalAggregate>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<LogicalSortKey>,
    },
    Limit {
        input: Box<LogicalPlan>,
        limit: usize,
    },
}

impl LogicalPlan {
    /// Scan helper.
    pub fn scan(dataset: Arc<Dataset>, alias: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            dataset,
            alias: alias.into(),
        }
    }

    /// Filter helper.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Join helper.
    pub fn join(self, right: LogicalPlan, condition: Expr) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            condition,
        }
    }

    /// Project helper.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Output schema (qualified names).
    pub fn schema(&self) -> Result<SchemaRef> {
        Ok(match self {
            LogicalPlan::Scan { dataset, alias } => Arc::new(Schema::new(
                dataset
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| Field::new(format!("{alias}.{}", f.name), f.data_type.clone()))
                    .collect(),
            )),
            LogicalPlan::Filter { input, .. } => input.schema()?,
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                Arc::new(Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| Ok(Field::new(name.clone(), e.data_type(&in_schema)?)))
                        .collect::<Result<Vec<Field>>>()?,
                ))
            }
            LogicalPlan::Join { left, right, .. } => {
                Arc::new(left.schema()?.join(right.schema()?.as_ref()))
            }
            LogicalPlan::FudjJoin { left, right, .. } => {
                Arc::new(left.schema()?.join(right.schema()?.as_ref()))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(group_by.len() + aggregates.len());
                for (e, name) in group_by {
                    fields.push(Field::new(name.clone(), e.data_type(&in_schema)?));
                }
                for agg in aggregates {
                    let exec_agg = fudj_exec::Aggregate {
                        func: agg.func,
                        input: None,
                        name: agg.name.clone(),
                    };
                    // Output type depends on the input expression's type.
                    let dt = match (&agg.func, &agg.input) {
                        (AggFunc::Count, _) => fudj_types::DataType::Int64,
                        (AggFunc::Avg, _) => fudj_types::DataType::Float64,
                        (_, Some(e)) => {
                            let in_dt = e.data_type(&in_schema)?;
                            match agg.func {
                                AggFunc::Sum => match in_dt {
                                    fudj_types::DataType::Float64 => fudj_types::DataType::Float64,
                                    _ => fudj_types::DataType::Int64,
                                },
                                _ => in_dt,
                            }
                        }
                        _ => fudj_types::DataType::Null,
                    };
                    let _ = exec_agg;
                    fields.push(Field::new(agg.name.clone(), dt));
                }
                Arc::new(Schema::new(fields))
            }
            LogicalPlan::Sort { input, .. } => input.schema()?,
            LogicalPlan::Limit { input, .. } => input.schema()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_storage::DatasetBuilder;
    use fudj_types::DataType;

    fn parks() -> Arc<Dataset> {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Uuid),
            Field::new("boundary", DataType::Polygon),
            Field::new("tags", DataType::String),
        ]);
        Arc::new(DatasetBuilder::new("Parks", schema).build().unwrap())
    }

    #[test]
    fn scan_qualifies_columns() {
        let plan = LogicalPlan::scan(parks(), "p");
        let s = plan.schema().unwrap();
        assert_eq!(
            s.to_string(),
            "p.id: uuid, p.boundary: polygon, p.tags: string"
        );
    }

    #[test]
    fn self_join_schemas_do_not_collide() {
        let plan = LogicalPlan::scan(parks(), "a").join(
            LogicalPlan::scan(parks(), "b"),
            Expr::col("a.id").eq(Expr::col("b.id")),
        );
        let s = plan.schema().unwrap();
        assert!(s.index_of("a.id").is_ok());
        assert!(s.index_of("b.id").is_ok());
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn project_and_aggregate_schema() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan(parks(), "p")),
            group_by: vec![(Expr::col("p.id"), "id".into())],
            aggregates: vec![LogicalAggregate {
                func: AggFunc::Count,
                input: None,
                name: "c".into(),
            }],
        };
        assert_eq!(plan.schema().unwrap().to_string(), "id: uuid, c: bigint");
    }
}
