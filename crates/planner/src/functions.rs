//! Scalar built-in functions — the predicate vocabulary of the paper's
//! queries (Queries 1–3 and 5).

use fudj_geo::Point;
use fudj_temporal::Interval;
use fudj_text::jaccard::jaccard_similarity_texts;
use fudj_types::{DataType, FudjError, Result, Value};

/// Whether `name` (lowercase) is a known scalar built-in.
pub fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "st_contains"
            | "st_makepoint"
            | "st_make_point"
            | "st_distance"
            | "st_intersects"
            | "jaccard_similarity"
            | "similarity_jaccard"
            | "word_tokens"
            | "overlapping_interval"
            | "interval_overlapping"
            | "interval"
            | "parse_date"
            | "abs"
    )
}

/// Return type of a built-in (used for schema inference).
pub fn return_type(name: &str) -> DataType {
    match name {
        "st_contains" | "st_intersects" | "overlapping_interval" | "interval_overlapping" => {
            DataType::Bool
        }
        "st_makepoint" | "st_make_point" => DataType::Point,
        "st_distance" | "jaccard_similarity" | "similarity_jaccard" | "abs" => DataType::Float64,
        "word_tokens" => DataType::List(Box::new(DataType::String)),
        "interval" => DataType::Interval,
        "parse_date" => DataType::DateTime,
        _ => DataType::Null,
    }
}

fn arity_err(name: &str, want: usize, got: usize) -> FudjError {
    FudjError::Execution(format!("{name} expects {want} arguments, got {got}"))
}

fn args_n<'a>(name: &str, args: &'a [Value], n: usize) -> Result<&'a [Value]> {
    if args.len() != n {
        Err(arity_err(name, n, args.len()))
    } else {
        Ok(args)
    }
}

/// A text argument: either a string or a `word_tokens(...)` list.
fn text_of(v: &Value, ctx: &str) -> Result<String> {
    match v {
        Value::Str(s) => Ok(s.to_string()),
        Value::List(items) => {
            let words: Result<Vec<&str>> = items.iter().map(|w| w.as_str()).collect();
            Ok(words?.join(" "))
        }
        other => Err(FudjError::type_mismatch("string or token list", other, ctx)),
    }
}

/// Evaluate a built-in over already-evaluated arguments.
pub fn evaluate(name: &str, args: &[Value]) -> Result<Value> {
    Ok(match name {
        "st_contains" => {
            let a = args_n(name, args, 2)?;
            match (&a[0], &a[1]) {
                (Value::Polygon(poly), Value::Point(p)) => Value::Bool(poly.contains_point(p)),
                (Value::Polygon(a_poly), Value::Polygon(b_poly)) => {
                    // contains ⊇: every vertex of b inside a and no edge
                    // crossings — approximated by "a contains b's MBR corners
                    // and they intersect"; exact for our convex parks.
                    Value::Bool(b_poly.ring().iter().all(|p| a_poly.contains_point(p)))
                }
                (l, r) => {
                    return Err(FudjError::type_mismatch(
                        "(polygon, point|polygon)",
                        (l.data_type(), r.data_type()),
                        "st_contains",
                    ))
                }
            }
        }
        "st_intersects" => {
            let a = args_n(name, args, 2)?;
            match (&a[0], &a[1]) {
                (Value::Polygon(p), Value::Polygon(q)) => Value::Bool(p.intersects(q)),
                (Value::Polygon(p), Value::Point(q)) | (Value::Point(q), Value::Polygon(p)) => {
                    Value::Bool(p.contains_point(q))
                }
                (Value::Point(p), Value::Point(q)) => Value::Bool(p == q),
                (l, r) => {
                    return Err(FudjError::type_mismatch(
                        "two geometries",
                        (l.data_type(), r.data_type()),
                        "st_intersects",
                    ))
                }
            }
        }
        "st_makepoint" | "st_make_point" => {
            let a = args_n(name, args, 2)?;
            Value::Point(Point::new(a[0].as_f64()?, a[1].as_f64()?))
        }
        "st_distance" => {
            let a = args_n(name, args, 2)?;
            let d = match (&a[0], &a[1]) {
                (Value::Point(p), Value::Point(q)) => p.distance(q),
                (Value::Point(p), Value::Polygon(poly))
                | (Value::Polygon(poly), Value::Point(p)) => poly.distance_to_point(p),
                (Value::Polygon(p), Value::Polygon(q)) => {
                    if p.intersects(q) {
                        0.0
                    } else {
                        p.mbr().distance(&q.mbr())
                    }
                }
                (l, r) => {
                    return Err(FudjError::type_mismatch(
                        "two geometries",
                        (l.data_type(), r.data_type()),
                        "st_distance",
                    ))
                }
            };
            Value::Float64(d)
        }
        "jaccard_similarity" | "similarity_jaccard" => {
            let a = args_n(name, args, 2)?;
            let t1 = text_of(&a[0], name)?;
            let t2 = text_of(&a[1], name)?;
            Value::Float64(jaccard_similarity_texts(&t1, &t2))
        }
        "word_tokens" => {
            let a = args_n(name, args, 1)?;
            let tokens = fudj_text::tokenize(a[0].as_str()?);
            Value::list(tokens.into_iter().map(Value::str).collect())
        }
        "overlapping_interval" | "interval_overlapping" => {
            let a = args_n(name, args, 2)?;
            Value::Bool(a[0].as_interval()?.overlaps(&a[1].as_interval()?))
        }
        "interval" => {
            let a = args_n(name, args, 2)?;
            let start = a[0].as_f64()? as i64;
            let end = a[1].as_f64()? as i64;
            if start > end {
                return Err(FudjError::Execution(format!(
                    "interval start {start} after end {end}"
                )));
            }
            Value::Interval(Interval::new(start, end))
        }
        "parse_date" => {
            let a = args_n(name, args, 2)?;
            let ms =
                fudj_temporal::parse_date(a[0].as_str()?, a[1].as_str()?).ok_or_else(|| {
                    FudjError::Execution(format!("cannot parse date {:?} as {:?}", a[0], a[1]))
                })?;
            Value::DateTime(ms)
        }
        "abs" => {
            let a = args_n(name, args, 1)?;
            match &a[0] {
                Value::Int64(v) => Value::Int64(v.abs()),
                other => Value::Float64(other.as_f64()?.abs()),
            }
        }
        other => return Err(FudjError::Execution(format!("unknown built-in {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_geo::{Polygon, Rect};

    fn square() -> Value {
        Value::polygon(Polygon::from_rect(&Rect::new(0.0, 0.0, 10.0, 10.0)))
    }

    #[test]
    fn st_contains_point() {
        let inside = evaluate(
            "st_contains",
            &[square(), Value::Point(Point::new(5.0, 5.0))],
        );
        assert_eq!(inside.unwrap(), Value::Bool(true));
        let outside = evaluate(
            "st_contains",
            &[square(), Value::Point(Point::new(50.0, 5.0))],
        );
        assert_eq!(outside.unwrap(), Value::Bool(false));
        assert!(evaluate("st_contains", &[Value::Int64(1), Value::Int64(2)]).is_err());
    }

    #[test]
    fn st_makepoint_and_distance() {
        let p = evaluate("st_makepoint", &[Value::Float64(3.0), Value::Float64(4.0)]).unwrap();
        assert_eq!(p, Value::Point(Point::new(3.0, 4.0)));
        let d = evaluate("st_distance", &[p, Value::Point(Point::new(0.0, 0.0))]).unwrap();
        assert_eq!(d, Value::Float64(5.0));
    }

    #[test]
    fn jaccard_over_strings_and_token_lists() {
        let direct = evaluate(
            "jaccard_similarity",
            &[Value::str("a b c"), Value::str("b c d")],
        )
        .unwrap();
        assert_eq!(direct, Value::Float64(0.5));

        // Query 5 form: similarity_jaccard(word_tokens(x), word_tokens(y)).
        let ta = evaluate("word_tokens", &[Value::str("a b c")]).unwrap();
        let tb = evaluate("word_tokens", &[Value::str("b c d")]).unwrap();
        let via_tokens = evaluate("similarity_jaccard", &[ta, tb]).unwrap();
        assert_eq!(via_tokens, Value::Float64(0.5));
    }

    #[test]
    fn interval_builtins() {
        let i1 = evaluate("interval", &[Value::DateTime(0), Value::DateTime(10)]).unwrap();
        let i2 = evaluate("interval", &[Value::DateTime(5), Value::DateTime(20)]).unwrap();
        assert_eq!(
            evaluate("overlapping_interval", &[i1.clone(), i2]).unwrap(),
            Value::Bool(true)
        );
        assert!(evaluate("interval", &[Value::DateTime(10), Value::DateTime(0)]).is_err());
        let _ = i1;
    }

    #[test]
    fn parse_date_builtin() {
        let v = evaluate(
            "parse_date",
            &[Value::str("01/01/2022"), Value::str("M/D/Y")],
        )
        .unwrap();
        assert_eq!(v, Value::DateTime(18_993 * 86_400_000));
        assert!(evaluate(
            "parse_date",
            &[Value::str("13/99/2022"), Value::str("M/D/Y")]
        )
        .is_err());
    }

    #[test]
    fn arity_checked() {
        assert!(evaluate("st_contains", &[square()]).is_err());
        assert!(evaluate("abs", &[]).is_err());
    }

    #[test]
    fn builtin_registry_consistency() {
        for name in [
            "st_contains",
            "st_makepoint",
            "st_distance",
            "jaccard_similarity",
            "overlapping_interval",
            "interval",
            "parse_date",
            "word_tokens",
            "abs",
        ] {
            assert!(is_builtin(name), "{name}");
            assert_ne!(return_type(name), DataType::Null, "{name}");
        }
        assert!(
            !is_builtin("text_similarity_join"),
            "FUDJ names are not scalar built-ins"
        );
    }
}
