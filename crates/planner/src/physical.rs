//! Lowering: optimized logical plans → executable physical plans.
//!
//! Everything symbolic is resolved here: column names bind to indices,
//! expressions compile to closures, FUDJ names resolve to engine join
//! strategies (the registered library behind [`FudjEngineJoin`], or an
//! override from [`PlanOptions::join_overrides`]), and computed join keys
//! become appended key columns the join operator can address by index.

use crate::expr::{BinOp, BoundExpr, Expr};
use crate::logical::LogicalPlan;
use crate::optimizer::PlanOptions;
use fudj_core::{FudjEngineJoin, GuardMode, GuardedJoin, JoinAlgorithm, JoinRegistry};
use fudj_exec::{Aggregate, CmpOp, ColumnCompare, FudjJoinNode, PhysicalPlan, SortKey};
use fudj_types::{Field, FudjError, Result, Row, Schema, SchemaRef, Value};
use std::sync::Arc;

/// Lower an optimized logical plan.
pub fn lower(
    plan: &LogicalPlan,
    registry: &JoinRegistry,
    options: &PlanOptions,
) -> Result<PhysicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { dataset, .. } => PhysicalPlan::Scan {
            dataset: dataset.clone(),
        },

        LogicalPlan::Filter { input, predicate } => {
            let schema = input.schema()?;
            let bound = predicate.bind(&schema)?;
            lower_filter(lower(input, registry, options)?, bound)
        }

        LogicalPlan::Project { input, exprs } => {
            let in_schema = input.schema()?;
            let out_schema = plan.schema()?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(e, _)| e.bind(&in_schema))
                .collect::<Result<_>>()?;
            let child = lower(input, registry, options)?;
            if let Some(columns) = compile_columns(&bound) {
                PhysicalPlan::VecProject {
                    input: Box::new(child),
                    columns,
                    schema: out_schema,
                }
            } else {
                PhysicalPlan::Project {
                    input: Box::new(child),
                    mapper: Arc::new(move |row: &Row| {
                        let mut values = Vec::with_capacity(bound.len());
                        for b in &bound {
                            values.push(b.eval(row)?);
                        }
                        Ok(Row::new(values))
                    }),
                    schema: out_schema,
                }
            }
        }

        LogicalPlan::Join {
            left,
            right,
            condition,
        } => {
            // On-top plan: NLJ with the full condition as a UDF predicate.
            let combined = left.schema()?.join(right.schema()?.as_ref());
            let bound = condition.bind(&combined)?;
            PhysicalPlan::NlJoin {
                left: Box::new(lower(left, registry, options)?),
                right: Box::new(lower(right, registry, options)?),
                predicate: Arc::new(move |l: &Row, r: &Row| bound.eval(&l.concat(r))?.as_bool()),
            }
        }

        LogicalPlan::FudjJoin {
            left,
            right,
            join_name,
            left_key,
            right_key,
            params,
            residual,
            self_join,
        } => lower_fudj_join(
            left, right, join_name, left_key, right_key, params, residual, *self_join, registry,
            options,
        )?,

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let in_schema = input.schema()?;
            // Pre-project: group expressions first, then aggregate inputs.
            let mut pre_fields: Vec<Field> = Vec::new();
            let mut pre_bound: Vec<BoundExpr> = Vec::new();
            for (e, name) in group_by {
                pre_fields.push(Field::new(name.clone(), e.data_type(&in_schema)?));
                pre_bound.push(e.bind(&in_schema)?);
            }
            let mut exec_aggs: Vec<Aggregate> = Vec::new();
            for (i, agg) in aggregates.iter().enumerate() {
                let input_idx = match &agg.input {
                    Some(e) => {
                        pre_fields.push(Field::new(
                            format!("__agg_in_{i}"),
                            e.data_type(&in_schema)?,
                        ));
                        pre_bound.push(e.bind(&in_schema)?);
                        Some(pre_fields.len() - 1)
                    }
                    None => None,
                };
                exec_aggs.push(Aggregate {
                    func: agg.func,
                    input: input_idx,
                    name: agg.name.clone(),
                });
            }
            let pre_schema: SchemaRef = Arc::new(Schema::new(pre_fields));
            let pre = PhysicalPlan::Project {
                input: Box::new(lower(input, registry, options)?),
                mapper: Arc::new(move |row: &Row| {
                    let mut values = Vec::with_capacity(pre_bound.len());
                    for b in &pre_bound {
                        values.push(b.eval(row)?);
                    }
                    Ok(Row::new(values))
                }),
                schema: pre_schema,
            };
            PhysicalPlan::HashAggregate {
                input: Box::new(pre),
                group_by: (0..group_by.len()).collect(),
                aggregates: exec_aggs,
            }
        }

        LogicalPlan::Sort { input, keys } => {
            let schema = input.schema()?;
            let mut sort_keys = Vec::with_capacity(keys.len());
            for k in keys {
                match k.expr.bind(&schema)? {
                    BoundExpr::Column(i) => sort_keys.push(SortKey {
                        column: i,
                        descending: k.descending,
                    }),
                    _ => {
                        return Err(FudjError::Plan(format!(
                            "ORDER BY supports column references only, got {}",
                            k.expr
                        )))
                    }
                }
            }
            PhysicalPlan::Sort {
                input: Box::new(lower(input, registry, options)?),
                keys: sort_keys,
            }
        }

        LogicalPlan::Limit { input, limit } => PhysicalPlan::Limit {
            input: Box::new(lower(input, registry, options)?),
            limit: *limit,
        },
    })
}

fn predicate_closure(bound: BoundExpr) -> fudj_exec::RowPredicate {
    Arc::new(move |row: &Row| bound.eval(row)?.as_bool())
}

/// Emit the vectorizable [`PhysicalPlan::VecFilter`] when the predicate is a
/// conjunction of column-vs-literal comparisons, else the interpreted
/// closure [`PhysicalPlan::Filter`]. Both evaluate comparisons through the
/// same [`Value`] total order, so results are identical.
fn lower_filter(child: PhysicalPlan, bound: BoundExpr) -> PhysicalPlan {
    match compile_compares(&bound) {
        Some(compares) => PhysicalPlan::VecFilter {
            input: Box::new(child),
            compares,
        },
        None => PhysicalPlan::Filter {
            input: Box::new(child),
            predicate: predicate_closure(bound),
        },
    }
}

fn cmp_op_of(op: BinOp) -> Option<CmpOp> {
    Some(match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::NotEq => CmpOp::NotEq,
        BinOp::Lt => CmpOp::Lt,
        BinOp::LtEq => CmpOp::LtEq,
        BinOp::Gt => CmpOp::Gt,
        BinOp::GtEq => CmpOp::GtEq,
        _ => return None,
    })
}

/// Mirror a comparison so the column lands on the left: `lit < col` ≡
/// `col > lit`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::LtEq => CmpOp::GtEq,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::GtEq => CmpOp::LtEq,
        CmpOp::Eq | CmpOp::NotEq => op,
    }
}

/// Decompose a bound predicate into a conjunction of column-vs-literal
/// comparisons, if that is all it is.
fn compile_compares(bound: &BoundExpr) -> Option<Vec<ColumnCompare>> {
    let mut out = Vec::new();
    collect_compares(bound, &mut out).then_some(out)
}

fn collect_compares(bound: &BoundExpr, out: &mut Vec<ColumnCompare>) -> bool {
    let BoundExpr::Binary { op, left, right } = bound else {
        return false;
    };
    if *op == BinOp::And {
        return collect_compares(left, out) && collect_compares(right, out);
    }
    let Some(op) = cmp_op_of(*op) else {
        return false;
    };
    match (left.as_ref(), right.as_ref()) {
        (BoundExpr::Column(c), BoundExpr::Literal(v)) => {
            out.push(ColumnCompare {
                column: *c,
                op,
                literal: v.clone(),
            });
            true
        }
        (BoundExpr::Literal(v), BoundExpr::Column(c)) => {
            out.push(ColumnCompare {
                column: *c,
                op: mirror(op),
                literal: v.clone(),
            });
            true
        }
        _ => false,
    }
}

/// A projection that only reorders/drops columns compiles to index lookups.
fn compile_columns(bound: &[BoundExpr]) -> Option<Vec<usize>> {
    bound
        .iter()
        .map(|b| match b {
            BoundExpr::Column(i) => Some(*i),
            _ => None,
        })
        .collect()
}

/// Append a computed key column to a child plan.
fn with_key_column(
    child: PhysicalPlan,
    child_schema: &Schema,
    key: &Expr,
    key_name: &str,
) -> Result<(PhysicalPlan, usize, SchemaRef)> {
    let bound = key.bind(child_schema)?;
    let key_type = key.data_type(child_schema)?;
    let mut fields = child_schema.fields().to_vec();
    fields.push(Field::new(key_name.to_owned(), key_type));
    let schema: SchemaRef = Arc::new(Schema::new(fields));
    let key_index = schema.len() - 1;
    let plan = PhysicalPlan::Project {
        input: Box::new(child),
        mapper: Arc::new(move |row: &Row| {
            let mut values = Vec::with_capacity(row.len() + 1);
            values.extend_from_slice(row.values());
            values.push(bound.eval(row)?);
            Ok(Row::new(values))
        }),
        schema: schema.clone(),
    };
    Ok((plan, key_index, schema))
}

#[allow(clippy::too_many_arguments)]
fn lower_fudj_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    join_name: &str,
    left_key: &Expr,
    right_key: &Expr,
    params: &[Value],
    residual: &Option<Expr>,
    self_join: bool,
    registry: &JoinRegistry,
    options: &PlanOptions,
) -> Result<PhysicalPlan> {
    let lschema = left.schema()?;
    let rschema = right.schema()?;

    // Resolve the engine strategy: override first, else the registry.
    // Registry joins run untrusted library code, so they are wrapped in the
    // guardrail layer (per the session's GuardMode) and hold a lease that
    // blocks DROP JOIN for the plan's lifetime. Overrides are trusted engine
    // strategies and stay unwrapped.
    let mut def_budget = None;
    let strategy = match options.join_overrides.get(join_name) {
        Some(s) => s.clone(),
        None => {
            let def = registry
                .get(join_name)
                .ok_or_else(|| FudjError::JoinNotFound(join_name.to_owned()))?;
            def_budget = def.memory_budget_rows();
            let config = match &options.guard {
                GuardMode::PerJoin => Some(def.guard().clone()),
                GuardMode::Override(config) => Some(config.clone()),
                GuardMode::Off => None,
            };
            let alg: Arc<dyn JoinAlgorithm> = match config {
                Some(config) => Arc::new(GuardedJoin::new(def.algorithm().clone(), config)),
                None => def.algorithm().clone(),
            };
            Arc::new(FudjEngineJoin::with_lease(alg, def.lease()))
        }
    };

    let (lplan, lkey_idx, _) = with_key_column(
        lower(left, registry, options)?,
        &lschema,
        left_key,
        "__fudj_key_left",
    )?;
    let (rplan, rkey_idx, _) = with_key_column(
        lower(right, registry, options)?,
        &rschema,
        right_key,
        "__fudj_key_right",
    )?;

    let mut node = FudjJoinNode::new(lplan, rplan, strategy, lkey_idx, rkey_idx, params.to_vec());
    node.self_join = self_join;
    node.combine = options.combine;
    // Session/query options win; the join definition's own declared
    // budget (`CREATE JOIN ... WITH (memory_budget_rows = N)`) is the
    // fallback.
    node.memory_budget_rows = options.memory_budget_rows.or(def_budget);
    if let Some(fanout) = options.spill_fanout {
        node.spill.fanout = fanout;
    }
    if let Some(limit) = options.spill_recursion_limit {
        node.spill.recursion_limit = limit;
    }
    let joined = PhysicalPlan::FudjJoin(node);

    // Strip the two key columns so upper operators see the logical schema.
    let l_len = lschema.len();
    let r_len = rschema.len();
    let logical_schema: SchemaRef = Arc::new(lschema.join(&rschema));
    let keep: Vec<usize> = (0..l_len).chain(l_len + 1..l_len + 1 + r_len).collect();
    let stripped = PhysicalPlan::VecProject {
        input: Box::new(joined),
        columns: keep,
        schema: logical_schema.clone(),
    };

    // Residual non-FUDJ conjuncts become a post-join filter.
    Ok(match residual {
        Some(expr) => {
            let bound = expr.bind(&logical_schema)?;
            lower_filter(stripped, bound)
        }
        None => stripped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{LogicalAggregate, LogicalSortKey};
    use crate::optimize;
    use fudj_datagen::{parks, wildfires, GeneratorConfig};
    use fudj_exec::{AggFunc, Cluster};
    use fudj_joins::standard_library;
    use fudj_types::DataType;

    fn registry() -> JoinRegistry {
        let reg = JoinRegistry::new();
        reg.install_library(standard_library());
        reg.create_join(
            "st_contains",
            vec![DataType::Polygon, DataType::Point],
            "spatial.SpatialJoin",
            "flexiblejoins",
        )
        .unwrap();
        reg
    }

    /// Query 1, end to end through optimizer + lowering + cluster:
    /// SELECT p.id, COUNT(w.id) AS num_fires
    /// FROM Parks p, Wildfires w
    /// WHERE st_contains(p.boundary, w.location) AND w.fire_start >= :jan22
    /// GROUP BY p.id ORDER BY num_fires DESC LIMIT 10
    fn query1() -> LogicalPlan {
        let parks = Arc::new(parks(GeneratorConfig::new(150, 1, 4)).unwrap());
        let fires = Arc::new(wildfires(GeneratorConfig::new(400, 2, 4)).unwrap());
        let join = LogicalPlan::scan(parks, "p").join(
            LogicalPlan::scan(fires, "w"),
            Expr::call(
                "st_contains",
                vec![Expr::col("p.boundary"), Expr::col("w.location")],
            )
            .and(Expr::binary(
                crate::expr::BinOp::GtEq,
                Expr::col("w.fire_start"),
                Expr::lit(Value::DateTime(fudj_datagen::datasets::JAN_2022_MS)),
            )),
        );
        LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Aggregate {
                    input: Box::new(join),
                    group_by: vec![(Expr::col("p.id"), "id".into())],
                    aggregates: vec![LogicalAggregate {
                        func: AggFunc::Count,
                        input: Some(Expr::col("w.id")),
                        name: "num_fires".into(),
                    }],
                }),
                keys: vec![LogicalSortKey {
                    expr: Expr::col("num_fires"),
                    descending: true,
                }],
            }),
            limit: 10,
        }
    }

    #[test]
    fn query1_fudj_and_ontop_agree() {
        let reg = registry();
        let cluster = Cluster::new(3);

        let fudj_plan = crate::plan(query1(), &reg, &PlanOptions::default()).unwrap();
        let (fudj_result, fudj_metrics) = cluster.execute(&fudj_plan).unwrap();

        let ontop_plan = crate::plan(
            query1(),
            &reg,
            &PlanOptions {
                force_on_top: true,
                ..Default::default()
            },
        )
        .unwrap();
        let (ontop_result, ontop_metrics) = cluster.execute(&ontop_plan).unwrap();

        assert_eq!(
            fudj_result.schema().to_string(),
            "id: uuid, num_fires: bigint"
        );
        // LIMIT-free comparison: tie order under equal counts is unspecified.
        let mut a = fudj_result.rows().to_vec();
        let mut b = ontop_result.rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "plans agree");
        assert!(!fudj_result.is_empty(), "fixture produces grouped results");
        // The on-top plan broadcast rows; the FUDJ plan did not.
        assert!(ontop_metrics.snapshot().rows_broadcast > 0);
        assert_eq!(fudj_metrics.snapshot().rows_broadcast, 0);
    }

    #[test]
    fn explain_shows_fudj_operator() {
        let reg = registry();
        let plan = crate::plan(query1(), &reg, &PlanOptions::default()).unwrap();
        let text = plan.explain();
        assert!(text.contains("FudjJoin"), "{text}");
        assert!(text.contains("match: hash"), "{text}");
    }

    #[test]
    fn join_override_swaps_strategy() {
        use fudj_joins::builtin::BuiltinSpatialJoin;
        let reg = registry();
        let mut options = PlanOptions::default();
        options
            .join_overrides
            .insert("st_contains".into(), Arc::new(BuiltinSpatialJoin::new()));
        let plan = crate::plan(query1(), &reg, &options).unwrap();
        assert!(plan.explain().contains("builtin_spatial_join"));

        // Both strategies produce identical query answers.
        let cluster = Cluster::new(2);
        let (builtin_result, _) = cluster.execute(&plan).unwrap();
        let fudj_plan = crate::plan(query1(), &reg, &PlanOptions::default()).unwrap();
        let (fudj_result, _) = cluster.execute(&fudj_plan).unwrap();
        let mut a = builtin_result.rows().to_vec();
        let mut b = fudj_result.rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn order_by_non_column_is_a_plan_error() {
        let reg = registry();
        let parks = Arc::new(parks(GeneratorConfig::new(5, 1, 1)).unwrap());
        let plan = LogicalPlan::Sort {
            input: Box::new(LogicalPlan::scan(parks, "p")),
            keys: vec![LogicalSortKey {
                expr: Expr::call("abs", vec![Expr::col("p.id")]),
                descending: false,
            }],
        };
        let optimized = optimize(plan, &reg, &PlanOptions::default()).unwrap();
        assert!(lower(&optimized, &reg, &PlanOptions::default()).is_err());
    }
}
