//! Logical plans, the query optimizer, and physical lowering.
//!
//! This crate is the reproduction of §VI-C: given a logical join query, the
//! optimizer detects FUDJ predicates by looking the condition's function
//! calls up in the [`fudj_core::JoinRegistry`], and rewrites the join into
//! the Fig. 8 FUDJ plan. Everything else is the conventional machinery a
//! DBMS wraps around that rewrite:
//!
//! * [`expr`] — an expression tree with the scalar built-ins the paper's
//!   queries use (`ST_Contains`, `ST_MakePoint`, `ST_Distance`,
//!   `jaccard_similarity`, `overlapping_interval`, `parse_date`, ...),
//!   bound against schemas and compiled to closures for execution;
//! * [`logical`] — Scan / Filter / Project / Join / Aggregate / Sort /
//!   Limit, plus the post-rewrite `FudjJoin` node;
//! * [`optimizer`] — predicate pushdown, the **FUDJ detection & rewrite
//!   rule**, the self-join summarize-once annotation, and (implicitly, via
//!   `EngineJoin::uses_default_match`) the hash-join selection;
//! * [`physical`] — lowering to `fudj_exec` physical plans with compiled
//!   predicates and key extractors.
//!
//! Joins whose condition contains no registered FUDJ function lower to the
//! *on-top* plan: broadcast NLJ with the predicate as a UDF — exactly the
//! baseline the paper measures FUDJ against. [`PlanOptions::force_on_top`]
//! forces that path even when a FUDJ is registered, which is how the
//! experiments produce the on-top series.

pub mod expr;
pub mod functions;
pub mod logical;
pub mod optimizer;
pub mod physical;

pub use expr::{BinOp, BoundExpr, Expr};
pub use logical::LogicalPlan;
pub use optimizer::{optimize, PlanOptions};
pub use physical::lower;

use fudj_core::JoinRegistry;
use fudj_exec::PhysicalPlan;
use fudj_types::Result;

/// One-call pipeline: optimize a logical plan and lower it to a physical
/// plan.
pub fn plan(
    logical: LogicalPlan,
    registry: &JoinRegistry,
    options: &PlanOptions,
) -> Result<PhysicalPlan> {
    let optimized = optimize(logical, registry, options)?;
    lower(&optimized, registry, options)
}
