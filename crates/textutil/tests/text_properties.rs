//! Property tests for tokenization, ranking, prefix filtering, and Jaccard.

use fudj_text::{jaccard_similarity, prefix_length, token_set, tokenize, TokenCounts, TokenRanks};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Small vocabulary so records actually overlap.
    prop::collection::vec(
        prop::sample::select(vec![
            "river",
            "scenic",
            "camping",
            "hiking",
            "lake",
            "trail",
            "forest",
            "peak",
            "view",
            "backpacking",
            "fishing",
            "swim",
        ]),
        0..12,
    )
    .prop_map(|words| words.join(" "))
}

proptest! {
    /// Tokenizing is idempotent through a join-with-spaces round trip.
    #[test]
    fn tokenize_roundtrip(t in arb_text()) {
        let toks = tokenize(&t);
        prop_assert_eq!(tokenize(&toks.join(" ")), toks);
    }

    /// token_set is sorted, deduplicated, and a subset of tokenize output.
    #[test]
    fn token_set_invariants(t in "[a-z ]{0,60}") {
        let set = token_set(&t);
        prop_assert!(set.windows(2).all(|w| w[0] < w[1]));
        let all = tokenize(&t);
        for s in &set {
            prop_assert!(all.contains(s));
        }
    }

    /// Jaccard is within [0,1], symmetric, and 1 on identical sets.
    #[test]
    fn jaccard_bounds(a in arb_text(), b in arb_text()) {
        let sa = token_set(&a);
        let sb = token_set(&b);
        let s = jaccard_similarity(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, jaccard_similarity(&sb, &sa));
        prop_assert_eq!(jaccard_similarity(&sa, &sa), 1.0);
    }

    /// Prefix length is in [1, l] for non-empty records and thresholds in (0,1].
    #[test]
    fn prefix_length_bounds(l in 1usize..200, t in 0.05f64..=1.0) {
        let p = prefix_length(l, t);
        prop_assert!(p >= 1, "p={p} l={l} t={t}");
        prop_assert!(p <= l, "p={p} l={l} t={t}");
    }

    /// Completeness of prefix filtering: any pair with Jaccard >= t shares a
    /// token within the length-p prefixes of their ascending rank lists.
    #[test]
    fn prefix_filter_complete(records in prop::collection::vec(arb_text(), 2..8), t in 0.3f64..0.95) {
        let mut counts = TokenCounts::new();
        for r in &records {
            counts.observe_all(tokenize(r));
        }
        let ranks = TokenRanks::from_counts(&counts);
        for (i, a) in records.iter().enumerate() {
            for b in records.iter().skip(i + 1) {
                let sa = token_set(a);
                let sb = token_set(b);
                if sa.is_empty() || sb.is_empty() {
                    continue;
                }
                if jaccard_similarity(&sa, &sb) >= t {
                    let ra = ranks.ranked_tokens(&sa);
                    let rb = ranks.ranked_tokens(&sb);
                    let pa = prefix_length(ra.len(), t);
                    let pb = prefix_length(rb.len(), t);
                    let shares = ra[..pa].iter().any(|x| rb[..pb].contains(x));
                    prop_assert!(shares, "sim pair missed by prefixes: {a:?} / {b:?}");
                }
            }
        }
    }

    /// Rank table is a bijection onto 0..distinct.
    #[test]
    fn ranks_are_dense(records in prop::collection::vec(arb_text(), 0..6)) {
        let mut counts = TokenCounts::new();
        for r in &records {
            counts.observe_all(tokenize(r));
        }
        let ranks = TokenRanks::from_counts(&counts);
        let mut seen: Vec<u32> = counts.iter().map(|(t, _)| ranks.rank(t).unwrap()).collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..counts.distinct() as u32).collect();
        prop_assert_eq!(seen, expect);
    }
}
