//! Jaccard set similarity — the text FUDJ's `verify` predicate and the
//! `jaccard_similarity` / `similarity_jaccard` SQL built-in.

/// Jaccard similarity `|a ∩ b| / |a ∪ b|` of two *sorted, deduplicated*
/// token slices (as produced by [`crate::token_set`]). Runs as a linear
/// merge with no allocation. Two empty sets have similarity 1.
pub fn jaccard_of_sorted<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    debug_assert!(
        a.windows(2).all(|w| w[0].as_ref() < w[1].as_ref()),
        "a not sorted/dedup"
    );
    debug_assert!(
        b.windows(2).all(|w| w[0].as_ref() < w[1].as_ref()),
        "b not sorted/dedup"
    );
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].as_ref().cmp(b[j].as_ref()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard similarity of two raw texts: tokenize to sets, then compare.
pub fn jaccard_similarity_texts(a: &str, b: &str) -> f64 {
    jaccard_of_sorted(&crate::token_set(a), &crate::token_set(b))
}

/// Alias used throughout the join code: Jaccard over prepared token sets.
pub fn jaccard_similarity<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    jaccard_of_sorted(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token_set;

    #[test]
    fn identical_sets() {
        let a = token_set("hiking river camping");
        assert_eq!(jaccard_of_sorted(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        let a = token_set("alpha beta");
        let b = token_set("gamma delta");
        assert_eq!(jaccard_of_sorted(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let a = token_set("a b c");
        let b = token_set("b c d");
        // |∩| = 2, |∪| = 4
        assert_eq!(jaccard_of_sorted(&a, &b), 0.5);
    }

    #[test]
    fn empty_edge_cases() {
        let e: Vec<String> = vec![];
        let a = token_set("x");
        assert_eq!(jaccard_of_sorted(&e, &e), 1.0);
        assert_eq!(jaccard_of_sorted(&e, &a), 0.0);
        assert_eq!(jaccard_of_sorted(&a, &e), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = token_set("scenic river backpacking");
        let b = token_set("river camping");
        assert_eq!(jaccard_of_sorted(&a, &b), jaccard_of_sorted(&b, &a));
    }

    #[test]
    fn texts_helper_ignores_duplicates_and_case() {
        assert_eq!(jaccard_similarity_texts("Dog dog DOG cat", "cat dog"), 1.0);
    }
}
