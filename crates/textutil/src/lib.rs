//! Text/set-similarity utilities for the FUDJ reproduction.
//!
//! The Text-similarity FUDJ (Vernica et al.-style prefix filtering) needs:
//! a tokenizer, global token-frequency counting (the `Summary`), token
//! ranking by ascending frequency (the `PPlan`), the prefix-length formula
//! `p = (l - ceil(t·l)) + 1`, and Jaccard set similarity for `verify`.

pub mod jaccard;
pub mod ranks;
pub mod tokenize;

pub use jaccard::{jaccard_of_sorted, jaccard_similarity, jaccard_similarity_texts};
pub use ranks::{prefix_length, TokenCounts, TokenRanks};
pub use tokenize::{token_set, tokenize};
