//! Token frequency counting and ranking — the text-similarity FUDJ's
//! `Summary` and the rank table inside its `PPlan`.
//!
//! `SUMMARIZE` counts token occurrences per side; `DIVIDE` merges both
//! sides' counts and sorts tokens by ascending global frequency so that a
//! record's *rarest* tokens get the smallest ranks. `ASSIGN` then sends each
//! record to the buckets named by the first `p` ranks of its token set,
//! where `p` is the prefix length for the similarity threshold.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Token-occurrence counts: the text FUDJ `Summary`.
///
/// Mergeable (the identity is the empty map), serializable, and cheap to
/// update per record — exactly the two-step aggregate contract.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenCounts {
    counts: HashMap<String, u64>,
}

impl TokenCounts {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one occurrence of `token` (the paper's `S[token] += 1`).
    #[inline]
    pub fn observe(&mut self, token: &str) {
        if let Some(c) = self.counts.get_mut(token) {
            *c += 1;
        } else {
            self.counts.insert(token.to_owned(), 1);
        }
    }

    /// Count every token of a record.
    pub fn observe_all<S: AsRef<str>>(&mut self, tokens: impl IntoIterator<Item = S>) {
        for t in tokens {
            self.observe(t.as_ref());
        }
    }

    /// Merge another summary into this one (`global_aggregate`).
    pub fn merge(&mut self, other: &TokenCounts) {
        for (tok, c) in &other.counts {
            *self.counts.entry(tok.clone()).or_insert(0) += c;
        }
    }

    /// Number of distinct tokens.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Occurrences of `token` (0 when unseen).
    pub fn count(&self, token: &str) -> u64 {
        self.counts.get(token).copied().unwrap_or(0)
    }

    /// Iterate `(token, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(t, c)| (t.as_str(), *c))
    }
}

/// Token → rank table: the paper's `sortByCount` output stored in `PPlan`.
///
/// Rank 0 is the globally rarest token. Ties break lexicographically so
/// ranking is deterministic across runs and partitions.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenRanks {
    ranks: HashMap<String, u32>,
}

impl TokenRanks {
    /// Build the rank table from merged global counts.
    pub fn from_counts(counts: &TokenCounts) -> Self {
        let mut pairs: Vec<(&str, u64)> = counts.iter().collect();
        pairs.sort_unstable_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        let ranks = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (tok, _))| (tok.to_owned(), i as u32))
            .collect();
        TokenRanks { ranks }
    }

    /// Rank of `token`; `None` for tokens absent from the global dictionary
    /// (cannot happen when summaries cover the joined datasets, but callers
    /// stay defensive).
    #[inline]
    pub fn rank(&self, token: &str) -> Option<u32> {
        self.ranks.get(token).copied()
    }

    /// Number of ranked tokens (= number of similarity buckets).
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Ranks of a record's distinct tokens, ascending (rarest first).
    /// Unknown tokens are skipped.
    pub fn ranked_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<u32> {
        let mut out: Vec<u32> = tokens
            .iter()
            .filter_map(|t| self.rank(t.as_ref()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Prefix length for Jaccard threshold `t` over a record with `l` distinct
/// tokens: `p = (l - ceil(t·l)) + 1` (the paper's ASSIGN, from prefix
/// filtering). Records sharing no token among their first `p` ranks cannot
/// reach similarity `t`.
///
/// Returns 0 for an empty record (no tokens ⇒ no buckets).
#[inline]
pub fn prefix_length(l: usize, threshold: f64) -> usize {
    if l == 0 {
        return 0;
    }
    let keep = (threshold * l as f64).ceil() as usize;
    l.saturating_sub(keep) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_of(records: &[&str]) -> TokenCounts {
        let mut c = TokenCounts::new();
        for r in records {
            c.observe_all(crate::tokenize(r));
        }
        c
    }

    #[test]
    fn observe_and_count() {
        let c = counts_of(&["a b b", "b c"]);
        assert_eq!(c.count("a"), 1);
        assert_eq!(c.count("b"), 3);
        assert_eq!(c.count("c"), 1);
        assert_eq!(c.count("zzz"), 0);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = counts_of(&["x y"]);
        let b = counts_of(&["y z"]);
        a.merge(&b);
        assert_eq!(a.count("x"), 1);
        assert_eq!(a.count("y"), 2);
        assert_eq!(a.count("z"), 1);
        // Merging the empty summary is a no-op.
        let before = a.clone();
        a.merge(&TokenCounts::new());
        assert_eq!(a, before);
    }

    #[test]
    fn ranks_rarest_first_ties_lexicographic() {
        let c = counts_of(&["common common common rare", "common bare"]);
        let r = TokenRanks::from_counts(&c);
        // "bare" and "rare" both occur once; lexicographic tie-break.
        assert_eq!(r.rank("bare"), Some(0));
        assert_eq!(r.rank("rare"), Some(1));
        assert_eq!(r.rank("common"), Some(2));
        assert_eq!(r.rank("missing"), None);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ranked_tokens_sorted_dedup() {
        let c = counts_of(&["a a a b c"]);
        let r = TokenRanks::from_counts(&c);
        let toks = vec!["a".to_string(), "c".into(), "a".into(), "nope".into()];
        let ranked = r.ranked_tokens(&toks);
        assert_eq!(ranked.len(), 2);
        assert!(ranked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prefix_length_formula() {
        // l=10, t=0.9 → ceil(9)=9 → p=2
        assert_eq!(prefix_length(10, 0.9), 2);
        // l=10, t=0.5 → p=6
        assert_eq!(prefix_length(10, 0.5), 6);
        // l=1 → p=1 for any threshold in (0,1]
        assert_eq!(prefix_length(1, 0.9), 1);
        // t=1.0 → p=1 (exact duplicates share every token)
        assert_eq!(prefix_length(7, 1.0), 1);
        assert_eq!(prefix_length(0, 0.9), 0);
    }

    /// The completeness property behind prefix filtering: two sets with
    /// Jaccard ≥ t must share a token within their length-p prefixes.
    #[test]
    fn prefix_filter_completeness_smoke() {
        let t = 0.6;
        let records = ["a b c d e", "a b c d x", "a b q r s", "m n o p q"];
        let c = counts_of(&records);
        let ranks = TokenRanks::from_counts(&c);
        for (i, ri) in records.iter().enumerate() {
            for rj in records.iter().skip(i + 1) {
                let si = crate::token_set(ri);
                let sj = crate::token_set(rj);
                let sim = crate::jaccard_similarity(&si, &sj);
                if sim >= t {
                    let pi = prefix_length(si.len(), t);
                    let pj = prefix_length(sj.len(), t);
                    let rank_i = ranks.ranked_tokens(&si);
                    let rank_j = ranks.ranked_tokens(&sj);
                    let share = rank_i[..pi.min(rank_i.len())]
                        .iter()
                        .any(|x| rank_j[..pj.min(rank_j.len())].contains(x));
                    assert!(share, "{ri:?} vs {rj:?} sim={sim}");
                }
            }
        }
    }
}
