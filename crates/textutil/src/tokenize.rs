//! Tokenization: lowercase alphanumeric word splitting.
//!
//! This is the `word_tokens` / `tokenize` built-in the paper's queries use.
//! Set semantics (each distinct token once) are what Jaccard similarity and
//! prefix filtering operate on, so [`token_set`] is the join-facing variant.

/// Split `text` into lowercase alphanumeric tokens, in order of appearance,
/// duplicates preserved.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Distinct lowercase tokens of `text`, sorted lexicographically.
///
/// Sorted-vec-as-set keeps verification allocation-light: Jaccard over two
/// sorted vectors is a linear merge with no hash set.
pub fn token_set(text: &str) -> Vec<String> {
    let mut tokens = tokenize(text);
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("River, Scenic Landscape; Camping-Backpacking"),
            vec!["river", "scenic", "landscape", "camping", "backpacking"]
        );
    }

    #[test]
    fn lowercases_and_keeps_digits() {
        assert_eq!(tokenize("Route 66 ROCKS"), vec!["route", "66", "rocks"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!... --- ,,,").is_empty());
    }

    #[test]
    fn preserves_duplicates_in_order() {
        assert_eq!(tokenize("a b a"), vec!["a", "b", "a"]);
    }

    #[test]
    fn token_set_dedups_and_sorts() {
        assert_eq!(token_set("b a b c a"), vec!["a", "b", "c"]);
    }

    #[test]
    fn unicode_words() {
        assert_eq!(tokenize("Čamping in Åre"), vec!["čamping", "in", "åre"]);
    }
}
