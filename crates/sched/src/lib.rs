//! Concurrent query scheduler for the FUDJ cluster.
//!
//! The execution engine (`fudj-exec`) runs one plan at a time: a call to
//! [`fudj_exec::Cluster::execute`] owns every batch the worker pool runs
//! until the query finishes. This crate multiplexes **many** concurrent
//! queries over that same shared pool:
//!
//! * [`TaskDag`] decomposes a [`fudj_exec::PhysicalPlan`] into its
//!   per-stage, per-partition task structure — the unit the scheduler
//!   interleaves and the unit progress is reported in;
//! * [`Scheduler`] provides admission control (max in-flight queries, an
//!   aggregate memory-budget-rows quota, a bounded FIFO wait queue),
//!   weighted round-robin fair-share dispatch across runnable queries,
//!   per-query cancellation, and simulated-clock deadlines;
//! * [`JobHandle`] is the async side: submit returns immediately, `wait`
//!   blocks for the result, `cancel` stops the query at its next task
//!   boundary.
//!
//! The load-bearing invariant (checked by the differential tests in the
//! umbrella crate): for any batch of queries, concurrent scheduled
//! execution is **result- and per-query-metrics-identical** to running
//! the same queries serially, because each query's counters live in its
//! own [`fudj_exec::QueryMetrics`]/fault context and every decision the
//! engine makes is deterministic per query.

pub mod dag;
pub mod scheduler;

pub use dag::{StageKind, TaskDag, TaskStage};
pub use scheduler::{JobHandle, JobInfo, JobState, QuerySpec, Scheduler, SchedulerConfig};
