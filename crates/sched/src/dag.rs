//! Plan → task-DAG decomposition.
//!
//! A [`TaskDag`] describes the stage/task structure a
//! [`PhysicalPlan`] will execute as: one [`TaskStage`] per pool batch
//! the engine dispatches, each fanning out to a number of per-partition
//! tasks, in the order the (single-threaded, per-query) coordinator
//! drives them. Stages are listed in dependency order — stage `i` only
//! starts after stage `i-1` completes, matching the engine's
//! stage-synchronous execution model.
//!
//! The DAG is *descriptive*: the engine does not execute it. The
//! scheduler uses it to size admission decisions and to report progress
//! (`\jobs` shows `stages_done / stages_total`), and tests use it to
//! assert that interleaving points exist where they should.

use fudj_core::DedupMode;
use fudj_exec::PhysicalPlan;

/// What kind of work one stage performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Partition-local computation (filter, project, local join work).
    Compute,
    /// An exchange that moves rows between workers.
    Exchange,
    /// Coordinator-side work (divide, global sort/limit, final gather).
    Coordinator,
}

/// One stage: a batch of per-partition tasks dispatched together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskStage {
    /// Human-readable stage label, e.g. `join:partition`.
    pub name: String,
    /// What the stage does (compute / exchange / coordinator).
    pub kind: StageKind,
    /// Number of parallel tasks in the batch (usually the worker count).
    pub tasks: usize,
}

/// The per-stage, per-partition task structure of one plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskDag {
    stages: Vec<TaskStage>,
}

impl TaskDag {
    /// Decompose `plan` for a cluster of `workers` workers.
    pub fn from_plan(plan: &PhysicalPlan, workers: usize) -> Self {
        let mut dag = TaskDag { stages: Vec::new() };
        dag.visit(plan, workers);
        // The coordinator gathers the final partitioned result.
        dag.push("gather", StageKind::Exchange, workers);
        dag
    }

    /// The stages in execution order.
    pub fn stages(&self) -> &[TaskStage] {
        &self.stages
    }

    /// Number of stages (pool batches) the plan executes as.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total per-partition tasks across all stages.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    fn push(&mut self, name: &str, kind: StageKind, tasks: usize) {
        self.stages.push(TaskStage {
            name: name.to_owned(),
            kind,
            tasks: tasks.max(1),
        });
    }

    fn visit(&mut self, plan: &PhysicalPlan, workers: usize) {
        match plan {
            PhysicalPlan::Scan { .. } => {
                // Local partition reads on the coordinator; no dispatch.
                self.push("scan", StageKind::Coordinator, 1);
            }
            PhysicalPlan::Filter { input, .. } => {
                self.visit(input, workers);
                self.push("filter", StageKind::Compute, workers);
            }
            PhysicalPlan::Project { input, .. } => {
                self.visit(input, workers);
                self.push("project", StageKind::Compute, workers);
            }
            PhysicalPlan::FudjJoin(node) => {
                self.visit(&node.left, workers);
                if !node.self_join {
                    self.visit(&node.right, workers);
                }
                self.push("join:summarize", StageKind::Compute, workers);
                self.push("join:divide", StageKind::Coordinator, 1);
                self.push("join:partition", StageKind::Exchange, workers);
                self.push("join:combine", StageKind::Compute, workers);
                if node.join.dedup_mode() == DedupMode::Elimination {
                    self.push("join:dedup", StageKind::Exchange, workers);
                }
            }
            PhysicalPlan::NlJoin { left, right, .. } => {
                self.visit(left, workers);
                self.visit(right, workers);
                self.push("nljoin:broadcast", StageKind::Exchange, workers);
                self.push("nljoin:loop", StageKind::Compute, workers);
            }
            PhysicalPlan::HashAggregate { input, .. } => {
                self.visit(input, workers);
                self.push("agg:partial", StageKind::Compute, workers);
                self.push("agg:shuffle", StageKind::Exchange, workers);
                self.push("agg:final", StageKind::Compute, workers);
            }
            PhysicalPlan::Sort { input, .. } => {
                self.visit(input, workers);
                self.push("sort", StageKind::Coordinator, workers);
            }
            PhysicalPlan::Limit { input, .. } => {
                self.visit(input, workers);
                self.push("limit", StageKind::Coordinator, workers);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_storage::DatasetBuilder;
    use fudj_types::{DataType, Field, Schema};
    use std::sync::Arc;

    fn scan() -> PhysicalPlan {
        let schema = Schema::shared(vec![Field::new("id", DataType::Int64)]);
        let ds = DatasetBuilder::new("t", schema)
            .partitions(2)
            .build()
            .unwrap();
        PhysicalPlan::Scan {
            dataset: Arc::new(ds),
        }
    }

    #[test]
    fn aggregate_pipeline_decomposes_in_order() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Arc::new(|_| Ok(true)),
            }),
            group_by: vec![0],
            aggregates: vec![fudj_exec::Aggregate::count_star("c")],
        };
        let dag = TaskDag::from_plan(&plan, 4);
        let names: Vec<&str> = dag.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "scan",
                "filter",
                "agg:partial",
                "agg:shuffle",
                "agg:final",
                "gather"
            ]
        );
        assert_eq!(dag.stage_count(), 6);
        assert_eq!(dag.task_count(), 1 + 4 * 5);
        assert_eq!(dag.stages()[1].kind, StageKind::Compute);
        assert_eq!(dag.stages()[3].kind, StageKind::Exchange);
    }

    /// An [`fudj_core::EngineJoin`] that is never executed — the DAG
    /// decomposition only reads the plan's shape.
    struct StubJoin;

    impl fudj_core::EngineJoin for StubJoin {
        fn name(&self) -> &str {
            "stub"
        }
        fn new_summary(&self, _: fudj_core::Side) -> fudj_core::SummaryState {
            unreachable!("dag tests never execute the join")
        }
        fn local_aggregate(
            &self,
            _: fudj_core::Side,
            _: &fudj_types::Value,
            _: &mut fudj_core::SummaryState,
        ) -> fudj_types::Result<()> {
            unreachable!()
        }
        fn global_aggregate(
            &self,
            _: fudj_core::Side,
            _: fudj_core::SummaryState,
            _: fudj_core::SummaryState,
        ) -> fudj_types::Result<fudj_core::SummaryState> {
            unreachable!()
        }
        fn symmetric(&self) -> bool {
            true
        }
        fn divide(
            &self,
            _: &fudj_core::SummaryState,
            _: &fudj_core::SummaryState,
            _: &[fudj_types::Value],
        ) -> fudj_types::Result<fudj_core::PPlanState> {
            unreachable!()
        }
        fn assign(
            &self,
            _: fudj_core::Side,
            _: &fudj_types::Value,
            _: &fudj_core::PPlanState,
            _: &mut Vec<fudj_core::BucketId>,
        ) -> fudj_types::Result<()> {
            unreachable!()
        }
        fn verify(
            &self,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: &fudj_core::PPlanState,
        ) -> fudj_types::Result<bool> {
            unreachable!()
        }
        fn dedup(
            &self,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: &fudj_core::PPlanState,
        ) -> fudj_types::Result<bool> {
            unreachable!()
        }
    }

    #[test]
    fn self_join_summarizes_one_input() {
        let mk = |self_join: bool| {
            let mut node =
                fudj_exec::FudjJoinNode::new(scan(), scan(), Arc::new(StubJoin), 0, 0, vec![]);
            node.self_join = self_join;
            TaskDag::from_plan(&PhysicalPlan::FudjJoin(node), 3)
        };
        // The self-join plan scans (and summarizes) its input once.
        assert_eq!(mk(false).stage_count(), mk(true).stage_count() + 1);
    }
}
