//! Plan → task-DAG decomposition.
//!
//! A [`TaskDag`] describes the stage/task structure a
//! [`PhysicalPlan`] will execute as: one [`TaskStage`] per pool batch
//! the engine dispatches, each fanning out to a number of per-partition
//! tasks, in the order the (single-threaded, per-query) coordinator
//! drives them. Stages are listed in dependency order — stage `i` only
//! starts after stage `i-1` completes, matching the engine's
//! stage-synchronous execution model.
//!
//! The DAG is *descriptive*: the engine does not execute it. The
//! scheduler uses it to size admission decisions and to report progress
//! (`\jobs` shows `stages_done / stages_total`), and tests use it to
//! assert that interleaving points exist where they should.
//!
//! Each stage also carries *lineage* metadata: which upstream stages
//! produced its inputs ([`TaskStage::inputs`]), and whether the engine
//! can snapshot its output into the checkpoint store
//! ([`TaskStage::checkpointable`]). [`TaskDag::replay_chain`] walks those
//! edges to answer the recovery question — if this stage's output is
//! lost, which stages must re-run? — stopping at checkpointable
//! ancestors whose outputs can be restored instead of recomputed.

use fudj_core::DedupMode;
use fudj_exec::PhysicalPlan;

/// What kind of work one stage performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Partition-local computation (filter, project, local join work).
    Compute,
    /// An exchange that moves rows between workers.
    Exchange,
    /// Coordinator-side work (divide, global sort/limit, final gather).
    Coordinator,
}

/// One stage: a batch of per-partition tasks dispatched together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskStage {
    /// Human-readable stage label, e.g. `join:partition`.
    pub name: String,
    /// What the stage does (compute / exchange / coordinator).
    pub kind: StageKind,
    /// Number of parallel tasks in the batch (usually the worker count).
    pub tasks: usize,
    /// Indices of the stages whose outputs this stage consumes. Empty
    /// for source stages (scans).
    pub inputs: Vec<usize>,
    /// Whether the engine can snapshot this stage's output into the
    /// checkpoint store (the exchange-producing join/aggregate
    /// boundaries `recovery::stage_boundary` instruments).
    pub checkpointable: bool,
}

/// The per-stage, per-partition task structure of one plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskDag {
    stages: Vec<TaskStage>,
}

/// Stage names whose outputs the engine's recovery layer can snapshot
/// (the boundaries `fudj_exec::recovery::stage_boundary` instruments).
const CHECKPOINTABLE: [&str; 3] = ["join:partition", "join:combine", "agg:shuffle"];

impl TaskDag {
    /// Decompose `plan` for a cluster of `workers` workers.
    pub fn from_plan(plan: &PhysicalPlan, workers: usize) -> Self {
        let mut dag = TaskDag { stages: Vec::new() };
        let out = dag.visit(plan, workers);
        // The coordinator gathers the final partitioned result.
        dag.push("gather", StageKind::Exchange, workers, vec![out]);
        dag
    }

    /// The stages in execution order.
    pub fn stages(&self) -> &[TaskStage] {
        &self.stages
    }

    /// Number of stages (pool batches) the plan executes as.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total per-partition tasks across all stages.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Indices of the stages the recovery layer can checkpoint.
    pub fn checkpointable_stages(&self) -> Vec<usize> {
        (0..self.stages.len())
            .filter(|&i| self.stages[i].checkpointable)
            .collect()
    }

    /// Which stages must re-run if stage `idx`'s output is lost, in
    /// execution order (ending with `idx` itself). The walk follows
    /// lineage edges upstream but stops at checkpointable ancestors:
    /// their outputs can be restored from the store instead of
    /// recomputed, so nothing above them re-runs. With checkpointing
    /// off, callers should treat every stage as uncovered and the chain
    /// extends to the sources — pass `assume_checkpoints = false` for
    /// that reading.
    pub fn replay_chain(&self, idx: usize, assume_checkpoints: bool) -> Vec<usize> {
        let mut needed = vec![false; self.stages.len()];
        let mut frontier = vec![idx];
        while let Some(i) = frontier.pop() {
            if needed[i] {
                continue;
            }
            needed[i] = true;
            for &dep in &self.stages[i].inputs {
                // A checkpointable ancestor's output is restorable —
                // the chain does not extend through it.
                if !(assume_checkpoints && self.stages[dep].checkpointable) {
                    frontier.push(dep);
                }
            }
        }
        (0..self.stages.len()).filter(|&i| needed[i]).collect()
    }

    /// Push a stage consuming the outputs of `inputs`; returns its index.
    fn push(&mut self, name: &str, kind: StageKind, tasks: usize, inputs: Vec<usize>) -> usize {
        self.stages.push(TaskStage {
            name: name.to_owned(),
            kind,
            tasks: tasks.max(1),
            inputs,
            checkpointable: CHECKPOINTABLE.contains(&name),
        });
        self.stages.len() - 1
    }

    /// Decompose one subtree; returns the index of the stage producing
    /// its output.
    fn visit(&mut self, plan: &PhysicalPlan, workers: usize) -> usize {
        match plan {
            PhysicalPlan::Scan { .. } => {
                // Local partition reads on the coordinator; no dispatch.
                self.push("scan", StageKind::Coordinator, 1, vec![])
            }
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::VecFilter { input, .. } => {
                let i = self.visit(input, workers);
                self.push("filter", StageKind::Compute, workers, vec![i])
            }
            PhysicalPlan::Project { input, .. } | PhysicalPlan::VecProject { input, .. } => {
                let i = self.visit(input, workers);
                self.push("project", StageKind::Compute, workers, vec![i])
            }
            PhysicalPlan::FudjJoin(node) => {
                let l = self.visit(&node.left, workers);
                let mut ins = vec![l];
                if !node.self_join {
                    ins.push(self.visit(&node.right, workers));
                }
                let s = self.push("join:summarize", StageKind::Compute, workers, ins.clone());
                let d = self.push("join:divide", StageKind::Coordinator, 1, vec![s]);
                // Partitioning reads the raw inputs plus the divide plan.
                ins.push(d);
                let p = self.push("join:partition", StageKind::Exchange, workers, ins);
                let c = self.push("join:combine", StageKind::Compute, workers, vec![p]);
                if node.join.dedup_mode() == DedupMode::Elimination {
                    self.push("join:dedup", StageKind::Exchange, workers, vec![c])
                } else {
                    c
                }
            }
            PhysicalPlan::NlJoin { left, right, .. } => {
                let l = self.visit(left, workers);
                let r = self.visit(right, workers);
                let b = self.push("nljoin:broadcast", StageKind::Exchange, workers, vec![l, r]);
                self.push("nljoin:loop", StageKind::Compute, workers, vec![b])
            }
            PhysicalPlan::HashAggregate { input, .. } => {
                let i = self.visit(input, workers);
                let p = self.push("agg:partial", StageKind::Compute, workers, vec![i]);
                let s = self.push("agg:shuffle", StageKind::Exchange, workers, vec![p]);
                self.push("agg:final", StageKind::Compute, workers, vec![s])
            }
            PhysicalPlan::Sort { input, .. } => {
                let i = self.visit(input, workers);
                self.push("sort", StageKind::Coordinator, workers, vec![i])
            }
            PhysicalPlan::Limit { input, .. } => {
                let i = self.visit(input, workers);
                self.push("limit", StageKind::Coordinator, workers, vec![i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_storage::DatasetBuilder;
    use fudj_types::{DataType, Field, Schema};
    use std::sync::Arc;

    fn scan() -> PhysicalPlan {
        let schema = Schema::shared(vec![Field::new("id", DataType::Int64)]);
        let ds = DatasetBuilder::new("t", schema)
            .partitions(2)
            .build()
            .unwrap();
        PhysicalPlan::Scan {
            dataset: Arc::new(ds),
        }
    }

    #[test]
    fn aggregate_pipeline_decomposes_in_order() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Arc::new(|_| Ok(true)),
            }),
            group_by: vec![0],
            aggregates: vec![fudj_exec::Aggregate::count_star("c")],
        };
        let dag = TaskDag::from_plan(&plan, 4);
        let names: Vec<&str> = dag.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "scan",
                "filter",
                "agg:partial",
                "agg:shuffle",
                "agg:final",
                "gather"
            ]
        );
        assert_eq!(dag.stage_count(), 6);
        assert_eq!(dag.task_count(), 1 + 4 * 5);
        assert_eq!(dag.stages()[1].kind, StageKind::Compute);
        assert_eq!(dag.stages()[3].kind, StageKind::Exchange);
    }

    /// An [`fudj_core::EngineJoin`] that is never executed — the DAG
    /// decomposition only reads the plan's shape.
    struct StubJoin;

    impl fudj_core::EngineJoin for StubJoin {
        fn name(&self) -> &str {
            "stub"
        }
        fn new_summary(&self, _: fudj_core::Side) -> fudj_core::SummaryState {
            unreachable!("dag tests never execute the join")
        }
        fn local_aggregate(
            &self,
            _: fudj_core::Side,
            _: &fudj_types::Value,
            _: &mut fudj_core::SummaryState,
        ) -> fudj_types::Result<()> {
            unreachable!()
        }
        fn global_aggregate(
            &self,
            _: fudj_core::Side,
            _: fudj_core::SummaryState,
            _: fudj_core::SummaryState,
        ) -> fudj_types::Result<fudj_core::SummaryState> {
            unreachable!()
        }
        fn symmetric(&self) -> bool {
            true
        }
        fn divide(
            &self,
            _: &fudj_core::SummaryState,
            _: &fudj_core::SummaryState,
            _: &[fudj_types::Value],
        ) -> fudj_types::Result<fudj_core::PPlanState> {
            unreachable!()
        }
        fn assign(
            &self,
            _: fudj_core::Side,
            _: &fudj_types::Value,
            _: &fudj_core::PPlanState,
            _: &mut Vec<fudj_core::BucketId>,
        ) -> fudj_types::Result<()> {
            unreachable!()
        }
        fn verify(
            &self,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: &fudj_core::PPlanState,
        ) -> fudj_types::Result<bool> {
            unreachable!()
        }
        fn dedup(
            &self,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: fudj_core::BucketId,
            _: &fudj_types::Value,
            _: &fudj_core::PPlanState,
        ) -> fudj_types::Result<bool> {
            unreachable!()
        }
    }

    #[test]
    fn lineage_edges_follow_the_pipeline() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(scan()),
            group_by: vec![0],
            aggregates: vec![fudj_exec::Aggregate::count_star("c")],
        };
        let dag = TaskDag::from_plan(&plan, 4);
        // scan → agg:partial → agg:shuffle → agg:final → gather, each
        // consuming exactly its predecessor.
        for (i, stage) in dag.stages().iter().enumerate().skip(1) {
            assert_eq!(stage.inputs, vec![i - 1], "stage {}", stage.name);
        }
        assert!(dag.stages()[0].inputs.is_empty());
        assert_eq!(dag.checkpointable_stages(), vec![2]); // agg:shuffle
    }

    #[test]
    fn replay_chain_stops_at_checkpointable_ancestors() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(scan()),
            group_by: vec![0],
            aggregates: vec![fudj_exec::Aggregate::count_star("c")],
        };
        let dag = TaskDag::from_plan(&plan, 4);
        // Stage 3 is agg:final; its input agg:shuffle (2) is
        // checkpointable. With checkpoints assumed, losing agg:final
        // costs only itself; without, the chain runs back to the scan.
        assert_eq!(dag.replay_chain(3, true), vec![3]);
        assert_eq!(dag.replay_chain(3, false), vec![0, 1, 2, 3]);
        // Losing the checkpointable stage itself re-runs it (restore
        // handles covered partitions; the chain is the uncovered cost)
        // but still cuts off above it only via *other* checkpoints.
        assert_eq!(dag.replay_chain(2, true), vec![0, 1, 2]);
    }

    #[test]
    fn join_replay_chain_is_lineage_scoped() {
        let node = fudj_exec::FudjJoinNode::new(scan(), scan(), Arc::new(StubJoin), 0, 0, vec![]);
        let dag = TaskDag::from_plan(&PhysicalPlan::FudjJoin(node), 3);
        let names: Vec<&str> = dag.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "scan",
                "scan",
                "join:summarize",
                "join:divide",
                "join:partition",
                "join:combine",
                "gather"
            ]
        );
        // join:combine (5) reads join:partition (4), which is
        // checkpointable: a loss below combine never re-runs the
        // summarize/divide prefix when checkpoints cover partition.
        assert_eq!(dag.replay_chain(5, true), vec![5]);
        // Without checkpoints the whole upstream pipeline replays.
        assert_eq!(dag.replay_chain(5, false), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(dag.checkpointable_stages(), vec![4, 5]);
    }

    #[test]
    fn self_join_summarizes_one_input() {
        let mk = |self_join: bool| {
            let mut node =
                fudj_exec::FudjJoinNode::new(scan(), scan(), Arc::new(StubJoin), 0, 0, vec![]);
            node.self_join = self_join;
            TaskDag::from_plan(&PhysicalPlan::FudjJoin(node), 3)
        };
        // The self-join plan scans (and summarizes) its input once.
        assert_eq!(mk(false).stage_count(), mk(true).stage_count() + 1);
    }
}
