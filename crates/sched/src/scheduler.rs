//! Admission control, fair-share dispatch, cancellation, and deadlines.
//!
//! One [`Scheduler`] fronts one shared [`Cluster`]. Each submitted query
//! gets its own coordinator thread, its own [`QueryControl`] (cancel
//! token + simulated-clock deadline), and its own metrics/fault context —
//! per-query counters are structurally isolated. What the scheduler
//! multiplexes is *dispatch*: before every pool batch, the engine passes
//! through this crate's [`DispatchGate`], which holds the batch until the
//! weighted-round-robin policy picks its query and a stage slot is free.
//! Batches are the engine's natural task boundary (a batch is one stage's
//! per-partition task fan-out), so interleaving happens exactly where the
//! task DAG says stages begin.
//!
//! Admission is two-dimensional: at most `max_inflight` queries run at
//! once, and (optionally) the sum of the running queries' declared
//! `memory_budget_rows` must stay under an aggregate quota. Queries past
//! either limit wait in a bounded FIFO queue; past the queue, submission
//! fails with [`FudjError::Admission`].

use crate::dag::TaskDag;
use fudj_exec::{Cluster, DispatchGate, ExecMode, MetricsSnapshot, PhysicalPlan, QueryControl};
use fudj_types::{Batch, FudjError, Result};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};

/// Scheduler knobs, adjustable at runtime via
/// [`Scheduler::reconfigure`] (the REPL's `SET` statements land there).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum queries executing concurrently.
    pub max_inflight: usize,
    /// Maximum queries waiting for admission; submissions past this fail.
    pub queue_limit: usize,
    /// Aggregate cap on the running queries' declared
    /// `memory_budget_rows`. `None` disables the quota dimension.
    pub memory_quota_rows: Option<u64>,
    /// Pool batches allowed in flight at once across all queries. `1`
    /// serializes stages (strict weighted round-robin); higher values
    /// overlap stages from different queries on the shared pool.
    pub stage_slots: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_inflight: 4,
            queue_limit: 16,
            memory_quota_rows: None,
            stage_slots: 2,
        }
    }
}

/// Everything the scheduler needs to run one query.
#[derive(Clone)]
pub struct QuerySpec {
    /// The physical plan to execute.
    pub plan: Arc<PhysicalPlan>,
    /// Label used in job listings and error messages.
    pub label: String,
    /// Fair-share weight: a priority-`p` query may dispatch up to `p`
    /// consecutive stages per round-robin turn. Minimum 1.
    pub priority: u32,
    /// Simulated-millisecond deadline; the query aborts with
    /// [`FudjError::Deadline`] when its simulated clock passes it.
    pub deadline_ms: Option<u64>,
    /// Declared memory appetite, charged against the scheduler's
    /// aggregate quota while the query runs.
    pub memory_budget_rows: Option<u64>,
    /// Execution-mode override (`SET exec_mode`); the executor default
    /// ([`ExecMode::from_env`]) applies when unset.
    pub exec_mode: Option<ExecMode>,
    /// Crash-tolerance identity of a journaled query: stable checkpoint
    /// namespace, stage-commit journal sink, and an optional resume point
    /// recovered from the durable query journal. `None` (the default)
    /// executes exactly as before.
    pub tag: Option<fudj_exec::QueryTag>,
}

impl QuerySpec {
    /// A spec with default priority (1), no deadline, no declared budget.
    pub fn new(plan: Arc<PhysicalPlan>, label: impl Into<String>) -> Self {
        QuerySpec {
            plan,
            label: label.into(),
            priority: 1,
            deadline_ms: None,
            memory_budget_rows: None,
            exec_mode: None,
            tag: None,
        }
    }

    /// Set the fair-share priority (clamped to at least 1).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority.max(1);
        self
    }

    /// Set a simulated-clock deadline.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Declare a memory budget, in rows.
    /// Pin the execution mode (row vs columnar) for this query.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = Some(mode);
        self
    }

    pub fn with_memory_budget_rows(mut self, rows: u64) -> Self {
        self.memory_budget_rows = Some(rows);
        self
    }

    /// Attach a crash-tolerance [`fudj_exec::QueryTag`].
    pub fn with_query_tag(mut self, tag: fudj_exec::QueryTag) -> Self {
        self.tag = Some(tag);
        self
    }
}

/// Lifecycle of one submitted query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the admission queue.
    Queued,
    /// Admitted and executing.
    Running,
    /// Finished with a result.
    Done,
    /// Finished with an execution error.
    Failed,
    /// Stopped by cancellation.
    Cancelled,
    /// Stopped by its simulated-clock deadline.
    DeadlineExceeded,
}

impl JobState {
    /// Whether the job has reached a final state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::DeadlineExceeded => "deadline",
        };
        f.write_str(s)
    }
}

/// Point-in-time public view of one job, for `\jobs`-style listings.
#[derive(Clone, Debug)]
pub struct JobInfo {
    /// Scheduler-assigned job id.
    pub id: u64,
    /// The label from the [`QuerySpec`].
    pub label: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Fair-share priority.
    pub priority: u32,
    /// Stages (pool batches) dispatched so far.
    pub stages_done: usize,
    /// Stages the task DAG predicts in total.
    pub stages_total: usize,
    /// The query's simulated clock, in milliseconds.
    pub sim_clock_ms: u64,
    /// The deadline, if one was set.
    pub deadline_ms: Option<u64>,
    /// Final error message, for failed/cancelled/deadlined jobs.
    pub error: Option<String>,
}

/// What a finished job delivers: the gathered result batch and the
/// query's isolated metrics snapshot.
pub type JobOutput = (Batch, MetricsSnapshot);

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("label", &self.label)
            .finish()
    }
}

/// Async handle to a submitted query.
pub struct JobHandle {
    id: u64,
    label: String,
    inner: Arc<SchedInner>,
    rx: mpsc::Receiver<Result<JobOutput>>,
}

impl JobHandle {
    /// The scheduler-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The label this query was submitted with.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Request cancellation; the query stops at its next task boundary.
    pub fn cancel(&self) {
        cancel_job(&self.inner, self.id);
    }

    /// Block until the query finishes and take its result.
    pub fn wait(self) -> Result<JobOutput> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(FudjError::Execution(
                "scheduler job thread exited without delivering a result".into(),
            ))
        })
    }
}

struct Job {
    label: String,
    priority: u32,
    state: JobState,
    ctrl: Arc<QueryControl>,
    /// Remaining consecutive-dispatch credits in the current WRR turn.
    credits: u32,
    /// Whether the job's coordinator is parked in [`DispatchGate::enter`].
    waiting: bool,
    budget_rows: u64,
    stages_total: usize,
    stages_done: usize,
    error: Option<String>,
    snapshot: Option<MetricsSnapshot>,
}

struct SchedState {
    config: SchedulerConfig,
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    /// FIFO admission queue (job ids).
    queue: VecDeque<u64>,
    /// Admitted, unfinished job ids, in admission order.
    running: Vec<u64>,
    /// Index into `running` where the next WRR scan starts.
    rr_cursor: usize,
    slots_in_use: usize,
    admitted_budget_rows: u64,
    /// Dispatch grants in order, for fairness diagnostics and tests.
    grant_log: Vec<u64>,
}

impl SchedState {
    /// Whether a query declaring `budget` rows fits right now.
    fn has_capacity(&self, budget: u64) -> bool {
        if self.running.len() >= self.config.max_inflight {
            return false;
        }
        match self.config.memory_quota_rows {
            Some(quota) => self.admitted_budget_rows.saturating_add(budget) <= quota,
            None => true,
        }
    }

    /// Move queued jobs into the running set while capacity allows
    /// (strictly FIFO: stops at the first job that does not fit).
    fn admit_from_queue(&mut self) {
        while let Some(&head) = self.queue.front() {
            let budget = self.jobs.get(&head).map(|j| j.budget_rows).unwrap_or(0);
            if !self.has_capacity(budget) {
                break;
            }
            self.queue.pop_front();
            if let Some(job) = self.jobs.get_mut(&head) {
                // A cancelled-while-queued job was already removed from
                // the queue by `cancel_job`; anything here is admissible.
                job.state = JobState::Running;
            }
            self.running.push(head);
            self.admitted_budget_rows = self.admitted_budget_rows.saturating_add(budget);
        }
    }

    /// Release a finished job's admission resources.
    fn release(&mut self, id: u64) {
        if let Some(pos) = self.running.iter().position(|&r| r == id) {
            self.running.remove(pos);
            if pos < self.rr_cursor {
                self.rr_cursor -= 1;
            }
            if self.rr_cursor >= self.running.len() {
                self.rr_cursor = 0;
            }
            let budget = self.jobs.get(&id).map(|j| j.budget_rows).unwrap_or(0);
            self.admitted_budget_rows = self.admitted_budget_rows.saturating_sub(budget);
        }
    }

    /// Weighted-round-robin grant: returns true iff `id` is the next
    /// waiting query the policy picks (and consumes one of its credits).
    /// A query keeps winning until its `priority` credits are spent, then
    /// the cursor moves past it — so between two grants to any waiting
    /// query, every other running query receives at most `priority`
    /// grants: bounded wait.
    fn grant(&mut self, id: u64) -> bool {
        let n = self.running.len();
        for k in 0..n {
            let idx = (self.rr_cursor + k) % n;
            let cand = self.running[idx];
            let Some(job) = self.jobs.get_mut(&cand) else {
                continue;
            };
            if !job.waiting {
                continue;
            }
            if cand != id {
                return false;
            }
            job.credits = job.credits.saturating_sub(1);
            if job.credits == 0 {
                job.credits = job.priority.max(1);
                self.rr_cursor = (idx + 1) % n;
            }
            self.grant_log.push(cand);
            return true;
        }
        false
    }
}

struct SchedInner {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl SchedInner {
    /// Lock the state, recovering from a poisoned mutex (a panicking
    /// holder leaves the counters intact enough to keep scheduling).
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, SchedState>) -> MutexGuard<'a, SchedState> {
        self.cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

/// Cancel a job by id; true if the job exists.
fn cancel_job(inner: &Arc<SchedInner>, id: u64) -> bool {
    let mut st = inner.lock();
    let Some(job) = st.jobs.get_mut(&id) else {
        return false;
    };
    match job.state {
        JobState::Queued => {
            job.state = JobState::Cancelled;
            job.error = Some(format!("cancelled before start: {}", job.label));
            job.ctrl.cancel();
            st.queue.retain(|&q| q != id);
        }
        JobState::Running => {
            // The coordinator observes the token at its next task
            // boundary and finishes through the normal completion path.
            job.ctrl.cancel();
        }
        // Terminal states: cancellation is an idempotent no-op.
        _ => {}
    }
    drop(st);
    inner.cv.notify_all();
    true
}

/// The per-query gate the worker pool passes through before every batch.
struct SchedGate {
    inner: Arc<SchedInner>,
    id: u64,
    ctrl: Arc<QueryControl>,
}

impl DispatchGate for SchedGate {
    fn enter(&self, _tasks: usize) -> Result<()> {
        let mut st = self.inner.lock();
        if let Some(job) = st.jobs.get_mut(&self.id) {
            job.waiting = true;
        }
        loop {
            if let Err(e) = self.ctrl.check() {
                // Cancelled or deadlined while waiting for a slot: clear
                // the parked flag so the WRR scan skips this query.
                if let Some(job) = st.jobs.get_mut(&self.id) {
                    job.waiting = false;
                }
                drop(st);
                self.inner.cv.notify_all();
                return Err(e);
            }
            if st.slots_in_use < st.config.stage_slots && st.grant(self.id) {
                st.slots_in_use += 1;
                if let Some(job) = st.jobs.get_mut(&self.id) {
                    job.waiting = false;
                }
                return Ok(());
            }
            st = self.inner.wait(st);
        }
    }

    fn exit(&self, _tasks: usize) {
        let mut st = self.inner.lock();
        st.slots_in_use = st.slots_in_use.saturating_sub(1);
        if let Some(job) = st.jobs.get_mut(&self.id) {
            job.stages_done += 1;
        }
        drop(st);
        self.inner.cv.notify_all();
    }
}

/// The concurrent query scheduler fronting one shared [`Cluster`].
pub struct Scheduler {
    cluster: Cluster,
    inner: Arc<SchedInner>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("Scheduler")
            .field("config", &st.config)
            .field("running", &st.running.len())
            .field("queued", &st.queue.len())
            .finish()
    }
}

impl Scheduler {
    /// A scheduler with default [`SchedulerConfig`] over `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        Self::with_config(cluster, SchedulerConfig::default())
    }

    /// A scheduler with an explicit configuration.
    pub fn with_config(cluster: Cluster, config: SchedulerConfig) -> Self {
        Scheduler {
            cluster,
            inner: Arc::new(SchedInner {
                state: Mutex::new(SchedState {
                    config,
                    next_id: 1,
                    jobs: BTreeMap::new(),
                    queue: VecDeque::new(),
                    running: Vec::new(),
                    rr_cursor: 0,
                    slots_in_use: 0,
                    admitted_budget_rows: 0,
                    grant_log: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// The cluster this scheduler dispatches onto.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Replace the cluster handle subsequent jobs execute on. Cluster
    /// clones share the worker pool but copy the network/fault arming at
    /// clone time, so a session that re-arms faults or swaps the network
    /// model pushes the updated handle here. Jobs already running keep
    /// the configuration they started with.
    pub fn set_cluster(&mut self, cluster: Cluster) {
        self.cluster = cluster;
    }

    /// Current configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.inner.lock().config
    }

    /// Adjust the configuration; loosened limits admit queued queries
    /// immediately.
    pub fn reconfigure(&self, f: impl FnOnce(&mut SchedulerConfig)) {
        let mut st = self.inner.lock();
        f(&mut st.config);
        st.config.max_inflight = st.config.max_inflight.max(1);
        st.config.stage_slots = st.config.stage_slots.max(1);
        st.admit_from_queue();
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Submit a query for asynchronous execution. Fails with
    /// [`FudjError::Admission`] when the admission queue is full or the
    /// query's declared budget can never fit the quota.
    pub fn submit(&self, spec: QuerySpec) -> Result<JobHandle> {
        let budget = spec.memory_budget_rows.unwrap_or(0);
        let priority = spec.priority.max(1);
        let mut st = self.inner.lock();
        if let Some(quota) = st.config.memory_quota_rows {
            if budget > quota {
                return Err(FudjError::Admission(format!(
                    "query {:?} declares memory_budget_rows = {budget}, \
                     above the aggregate quota of {quota} rows",
                    spec.label
                )));
            }
        }
        let admit_now = st.queue.is_empty() && st.has_capacity(budget);
        if !admit_now && st.queue.len() >= st.config.queue_limit {
            return Err(FudjError::Admission(format!(
                "admission queue is full ({} queries waiting, limit {}); \
                 query {:?} rejected",
                st.queue.len(),
                st.config.queue_limit,
                spec.label
            )));
        }
        let id = st.next_id;
        st.next_id += 1;
        let ctrl = Arc::new(QueryControl::new(spec.label.clone(), spec.deadline_ms));
        let dag = TaskDag::from_plan(&spec.plan, self.cluster.workers());
        st.jobs.insert(
            id,
            Job {
                label: spec.label.clone(),
                priority,
                state: if admit_now {
                    JobState::Running
                } else {
                    JobState::Queued
                },
                ctrl: ctrl.clone(),
                credits: priority,
                waiting: false,
                budget_rows: budget,
                stages_total: dag.stage_count(),
                stages_done: 0,
                error: None,
                snapshot: None,
            },
        );
        if admit_now {
            st.running.push(id);
            st.admitted_budget_rows = st.admitted_budget_rows.saturating_add(budget);
        } else {
            st.queue.push_back(id);
        }
        drop(st);
        self.inner.cv.notify_all();

        let (tx, rx) = mpsc::channel();
        let inner = self.inner.clone();
        let cluster = self.cluster.clone();
        let plan = spec.plan.clone();
        let label = spec.label.clone();
        let mode = spec.exec_mode.unwrap_or_else(ExecMode::from_env);
        let tag = spec.tag.clone();
        std::thread::Builder::new()
            .name(format!("fudj-sched-job-{id}"))
            .spawn(move || run_job(inner, cluster, plan, id, ctrl, mode, tag, tx))
            .map_err(|e| FudjError::Execution(format!("failed to spawn job thread: {e}")))?;
        Ok(JobHandle {
            id,
            label,
            inner: self.inner.clone(),
            rx,
        })
    }

    /// Cancel a job by id. Fails if the id was never issued.
    pub fn cancel(&self, id: u64) -> Result<()> {
        if cancel_job(&self.inner, id) {
            Ok(())
        } else {
            Err(FudjError::Execution(format!("no such job: {id}")))
        }
    }

    /// All jobs this scheduler has seen, in submission order.
    pub fn jobs(&self) -> Vec<JobInfo> {
        let st = self.inner.lock();
        st.jobs
            .iter()
            .map(|(&id, job)| JobInfo {
                id,
                label: job.label.clone(),
                state: job.state,
                priority: job.priority,
                stages_done: job.stages_done,
                stages_total: job.stages_total,
                sim_clock_ms: job.ctrl.sim_clock_ms(),
                deadline_ms: job.ctrl.deadline_ms(),
                error: job.error.clone(),
            })
            .collect()
    }

    /// One job's public view.
    pub fn job(&self, id: u64) -> Option<JobInfo> {
        self.jobs().into_iter().find(|j| j.id == id)
    }

    /// A finished job's isolated metrics snapshot.
    pub fn metrics(&self, id: u64) -> Option<MetricsSnapshot> {
        self.inner
            .lock()
            .jobs
            .get(&id)
            .and_then(|j| j.snapshot.clone())
    }

    /// The order in which dispatch slots were granted (job ids), for
    /// fairness diagnostics and the bounded-wait tests.
    pub fn grant_log(&self) -> Vec<u64> {
        self.inner.lock().grant_log.clone()
    }
}

/// Body of one job's coordinator thread: wait for admission, execute the
/// plan under the control plane, classify the outcome, release admission
/// resources, deliver the result.
#[allow(clippy::too_many_arguments)]
fn run_job(
    inner: Arc<SchedInner>,
    cluster: Cluster,
    plan: Arc<PhysicalPlan>,
    id: u64,
    ctrl: Arc<QueryControl>,
    mode: ExecMode,
    tag: Option<fudj_exec::QueryTag>,
    tx: mpsc::Sender<Result<JobOutput>>,
) {
    // Admission wait: parked until the FIFO queue hands this job a slot.
    {
        let mut st = inner.lock();
        loop {
            match st.jobs.get(&id).map(|j| j.state) {
                Some(JobState::Running) => break,
                Some(JobState::Queued) => st = inner.wait(st),
                // Cancelled while queued (or the record vanished): the
                // query never starts.
                _ => {
                    drop(st);
                    let _ = tx.send(Err(FudjError::Cancelled(ctrl.label().to_owned())));
                    return;
                }
            }
        }
    }

    let gate: Arc<dyn DispatchGate> = Arc::new(SchedGate {
        inner: inner.clone(),
        id,
        ctrl: ctrl.clone(),
    });
    let result = cluster
        .execute_with_opts(&plan, Some(ctrl.clone()), Some(gate), mode, tag)
        .map(|(batch, metrics)| (batch, metrics.snapshot()));

    let final_state = match &result {
        Ok(_) => JobState::Done,
        Err(FudjError::Cancelled(_)) => JobState::Cancelled,
        Err(FudjError::Deadline(_)) => JobState::DeadlineExceeded,
        Err(_) => JobState::Failed,
    };
    let mut st = inner.lock();
    if let Some(job) = st.jobs.get_mut(&id) {
        job.state = final_state;
        job.waiting = false;
        job.error = result.as_ref().err().map(|e| e.to_string());
        job.snapshot = result.as_ref().ok().map(|(_, s)| s.clone());
    }
    st.release(id);
    st.admit_from_queue();
    drop(st);
    inner.cv.notify_all();
    let _ = tx.send(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_exec::Aggregate;
    use fudj_storage::DatasetBuilder;
    use fudj_types::{DataType, Field, Row, Schema, Value};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn dataset(rows: usize, partitions: usize) -> Arc<fudj_storage::Dataset> {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Int64),
        ]);
        let d = DatasetBuilder::new("t", schema)
            .partitions(partitions)
            .build()
            .unwrap();
        d.insert_all(
            (0..rows).map(|i| Row::new(vec![Value::Int64(i as i64), Value::Int64((i % 5) as i64)])),
        )
        .unwrap();
        Arc::new(d)
    }

    /// Multi-stage plan: filter → partial agg → shuffle → final agg →
    /// gather. Enough batches to give the scheduler boundaries to work
    /// with.
    fn agg_plan(rows: usize) -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    dataset: dataset(rows, 4),
                }),
                predicate: Arc::new(|r| Ok(r.get(0).as_i64()? % 2 == 0)),
            }),
            group_by: vec![1],
            aggregates: vec![Aggregate::count_star("c")],
        })
    }

    /// A plan whose filter blocks every partition until `release` flips —
    /// a query that deterministically occupies its admission slot.
    fn blocking_plan(rows: usize, release: Arc<AtomicBool>) -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                dataset: dataset(rows, 2),
            }),
            predicate: Arc::new(move |_| {
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                Ok(true)
            }),
        })
    }

    fn sorted_rows(batch: &Batch) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = batch.rows().iter().map(|r| r.values().to_vec()).collect();
        rows.sort();
        rows
    }

    #[test]
    fn scheduled_result_matches_serial_execution() {
        let cluster = Cluster::new(3);
        let plan = agg_plan(60);
        let (serial, serial_metrics) = cluster.execute(&plan).unwrap();
        let sched = Scheduler::new(cluster);
        let (batch, snap) = sched
            .submit(QuerySpec::new(plan, "agg"))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(sorted_rows(&batch), sorted_rows(&serial));
        assert_eq!(snap.fingerprint(), serial_metrics.snapshot().fingerprint());
        let job = &sched.jobs()[0];
        assert_eq!(job.state, JobState::Done);
        assert!(job.stages_done > 0);
        assert!(job.sim_clock_ms > 0, "batches advance the simulated clock");
    }

    #[test]
    fn admission_queues_fifo_and_rejects_past_the_queue_limit() {
        let cluster = Cluster::new(2);
        let sched = Scheduler::with_config(
            cluster,
            SchedulerConfig {
                max_inflight: 1,
                queue_limit: 1,
                ..SchedulerConfig::default()
            },
        );
        let release = Arc::new(AtomicBool::new(false));
        let blocker = sched
            .submit(QuerySpec::new(blocking_plan(8, release.clone()), "blocker"))
            .unwrap();
        let queued = sched
            .submit(QuerySpec::new(agg_plan(20), "queued"))
            .unwrap();
        // Queue is now full: the third submission is cleanly rejected.
        let err = sched
            .submit(QuerySpec::new(agg_plan(20), "rejected"))
            .unwrap_err();
        assert!(matches!(err, FudjError::Admission(_)), "{err}");
        assert!(err.to_string().contains("queue is full"), "{err}");
        assert_eq!(sched.job(queued.id()).unwrap().state, JobState::Queued);

        release.store(true, Ordering::Release);
        blocker.wait().unwrap();
        // The queued query is admitted once the blocker releases its slot.
        queued.wait().unwrap();
        assert_eq!(
            sched
                .jobs()
                .iter()
                .filter(|j| j.state == JobState::Done)
                .count(),
            2
        );
    }

    #[test]
    fn memory_quota_gates_admission() {
        let cluster = Cluster::new(2);
        let sched = Scheduler::with_config(
            cluster,
            SchedulerConfig {
                max_inflight: 8,
                memory_quota_rows: Some(100),
                ..SchedulerConfig::default()
            },
        );
        // A budget the quota can never satisfy is rejected immediately.
        let err = sched
            .submit(QuerySpec::new(agg_plan(20), "too-big").with_memory_budget_rows(150))
            .unwrap_err();
        assert!(matches!(err, FudjError::Admission(_)), "{err}");

        let release = Arc::new(AtomicBool::new(false));
        let big = sched
            .submit(
                QuerySpec::new(blocking_plan(8, release.clone()), "big")
                    .with_memory_budget_rows(80),
            )
            .unwrap();
        let small = sched
            .submit(QuerySpec::new(agg_plan(20), "small").with_memory_budget_rows(30))
            .unwrap();
        // 80 + 30 > 100: the second query waits despite free inflight slots.
        assert_eq!(sched.job(small.id()).unwrap().state, JobState::Queued);
        release.store(true, Ordering::Release);
        big.wait().unwrap();
        small.wait().unwrap();
    }

    #[test]
    fn cancel_before_start_never_executes() {
        let cluster = Cluster::new(2);
        let sched = Scheduler::with_config(
            cluster,
            SchedulerConfig {
                max_inflight: 1,
                ..SchedulerConfig::default()
            },
        );
        let release = Arc::new(AtomicBool::new(false));
        let blocker = sched
            .submit(QuerySpec::new(blocking_plan(8, release.clone()), "blocker"))
            .unwrap();
        let victim = sched
            .submit(QuerySpec::new(agg_plan(20), "victim"))
            .unwrap();
        sched.cancel(victim.id()).unwrap();
        let err = victim.wait().unwrap_err();
        assert!(matches!(err, FudjError::Cancelled(_)), "{err}");
        let info = sched.job(2).unwrap();
        assert_eq!(info.state, JobState::Cancelled);
        assert_eq!(info.stages_done, 0, "cancelled before any dispatch");

        release.store(true, Ordering::Release);
        blocker.wait().unwrap();
        // The scheduler stays usable and correct after the cancellation.
        let (batch, _) = sched
            .submit(QuerySpec::new(agg_plan(20), "after"))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(batch.len(), 5);
    }

    #[test]
    fn deadline_aborts_and_later_queries_are_unaffected() {
        let cluster = Cluster::new(2);
        let serial = cluster.execute(&agg_plan(40)).unwrap().0;
        let sched = Scheduler::new(cluster);
        // Every fault-free batch advances the simulated clock by
        // SIM_TASK_MS (100 ms); a 150 ms deadline dies at the second
        // batch boundary.
        let err = sched
            .submit(QuerySpec::new(agg_plan(40), "deadlined").with_deadline_ms(150))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, FudjError::Deadline(_)), "{err}");
        assert_eq!(sched.job(1).unwrap().state, JobState::DeadlineExceeded);

        let (batch, _) = sched
            .submit(QuerySpec::new(agg_plan(40), "after"))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(sorted_rows(&batch), sorted_rows(&serial));
    }

    #[test]
    fn deadline_expires_inside_a_fault_retry_loop() {
        // Certain transient faults + huge backoff: the very first task
        // enters the retry loop and the simulated backoff blows the
        // deadline inside it — the query must stop there, not burn the
        // whole retry budget.
        let mut faults = fudj_exec::FaultConfig::quiet(11);
        faults.transient_prob = 1.0;
        faults.retry.max_retries = 50;
        faults.retry.backoff_base_ms = 10_000;
        let cluster = Cluster::with_faults(2, faults);
        let sched = Scheduler::new(cluster);
        let err = sched
            .submit(QuerySpec::new(agg_plan(40), "retrying").with_deadline_ms(5_000))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, FudjError::Deadline(_)), "{err}");
        let snap = sched.metrics(1);
        assert!(snap.is_none(), "failed queries deliver no snapshot");
        let info = sched.job(1).unwrap();
        assert_eq!(info.state, JobState::DeadlineExceeded);
        assert!(
            info.sim_clock_ms >= 5_000,
            "backoff advanced the clock past the deadline: {info:?}"
        );
    }

    #[test]
    fn weighted_round_robin_grants_are_bounded() {
        // Drive the WRR policy directly: two always-waiting queries with
        // priorities 3 and 1 must interleave as A,A,A,B repeating — B
        // waits at most `priority(A)` grants between its turns.
        let sched = Scheduler::with_config(Cluster::new(1), SchedulerConfig::default());
        let (a, b) = (1u64, 2u64);
        let mut st = sched.inner.lock();
        for (id, priority) in [(a, 3u32), (b, 1u32)] {
            st.jobs.insert(
                id,
                Job {
                    label: format!("job-{id}"),
                    priority,
                    state: JobState::Running,
                    ctrl: Arc::new(QueryControl::new("wrr", None)),
                    credits: priority,
                    waiting: true,
                    budget_rows: 0,
                    stages_total: 100,
                    stages_done: 0,
                    error: None,
                    snapshot: None,
                },
            );
            st.running.push(id);
        }
        let mut order = Vec::new();
        for _ in 0..16 {
            let winner = [a, b]
                .into_iter()
                .find(|&id| st.grant(id))
                .expect("some waiting job must win");
            order.push(winner);
        }
        assert_eq!(
            order,
            vec![a, a, a, b, a, a, a, b, a, a, a, b, a, a, a, b],
            "priority-3 query gets 3 consecutive grants, then priority-1"
        );
        // Bounded wait: the gap between consecutive grants to B never
        // exceeds A's priority.
        let b_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, &id)| id == b)
            .map(|(i, _)| i)
            .collect();
        for w in b_positions.windows(2) {
            assert!(w[1] - w[0] <= 4, "unbounded wait: {order:?}");
        }
    }

    #[test]
    fn concurrent_mixed_queries_match_serial() {
        let cluster = Cluster::new(3);
        let plans: Vec<Arc<PhysicalPlan>> = (0..6).map(|i| agg_plan(30 + i * 10)).collect();
        let serial: Vec<Vec<Vec<Value>>> = plans
            .iter()
            .map(|p| sorted_rows(&cluster.execute(p).unwrap().0))
            .collect();
        let sched = Scheduler::with_config(
            cluster,
            SchedulerConfig {
                max_inflight: 6,
                stage_slots: 2,
                ..SchedulerConfig::default()
            },
        );
        let handles: Vec<JobHandle> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| {
                sched
                    .submit(
                        QuerySpec::new(p.clone(), format!("q{i}"))
                            .with_priority(1 + (i % 3) as u32),
                    )
                    .unwrap()
            })
            .collect();
        for (h, expected) in handles.into_iter().zip(&serial) {
            let (batch, _) = h.wait().unwrap();
            assert_eq!(&sorted_rows(&batch), expected);
        }
        assert!(
            !sched.grant_log().is_empty(),
            "dispatch went through the gate"
        );
    }
}
