//! Uniform grid partitioning — PBSM's tiling of the joint MBR.
//!
//! The grid is the spatial FUDJ's `PPlan`: `divide` builds it from the two
//! summaries, and `assign` calls [`UniformGrid::overlapping_tiles`] to map a
//! record's MBR to bucket ids (`tile_id`s, numbered row-major from 0).

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// An `n × n` uniform grid over an extent rectangle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    extent: Rect,
    n: u32,
    tile_w: f64,
    tile_h: f64,
}

impl UniformGrid {
    /// Build an `n × n` grid over `extent`.
    ///
    /// A degenerate extent (zero width/height, e.g. a single point, or even
    /// the empty rectangle when one join side is empty) is handled by
    /// clamping tile sizes so that every coordinate maps to tile (0, 0).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(extent: Rect, n: u32) -> Self {
        assert!(n > 0, "grid must have at least one tile per side");
        let tile_w = extent.width() / n as f64;
        let tile_h = extent.height() / n as f64;
        UniformGrid {
            extent,
            n,
            tile_w,
            tile_h,
        }
    }

    /// Grid extent.
    #[inline]
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// Tiles per side.
    #[inline]
    pub fn side(&self) -> u32 {
        self.n
    }

    /// Total number of tiles (`n²`).
    #[inline]
    pub fn tile_count(&self) -> u64 {
        self.n as u64 * self.n as u64
    }

    /// Column index of coordinate `x`, clamped into the grid.
    #[inline]
    fn col_of(&self, x: f64) -> u32 {
        if self.tile_w <= 0.0 {
            return 0;
        }
        let c = ((x - self.extent.min_x) / self.tile_w).floor();
        (c.max(0.0) as u32).min(self.n - 1)
    }

    /// Row index of coordinate `y`, clamped into the grid.
    #[inline]
    fn row_of(&self, y: f64) -> u32 {
        if self.tile_h <= 0.0 {
            return 0;
        }
        let r = ((y - self.extent.min_y) / self.tile_h).floor();
        (r.max(0.0) as u32).min(self.n - 1)
    }

    /// Row-major tile id of tile `(col, row)`.
    #[inline]
    pub fn tile_id(&self, col: u32, row: u32) -> u64 {
        debug_assert!(col < self.n && row < self.n);
        row as u64 * self.n as u64 + col as u64
    }

    /// Tile containing point `p` (points outside the extent clamp to the
    /// nearest border tile, so every record gets a bucket).
    #[inline]
    pub fn tile_of_point(&self, p: &Point) -> u64 {
        self.tile_id(self.col_of(p.x), self.row_of(p.y))
    }

    /// Ids of every tile whose rectangle intersects `mbr` — PBSM's
    /// multi-assign. Returns at least one tile for any input.
    pub fn overlapping_tiles(&self, mbr: &Rect) -> Vec<u64> {
        if mbr.is_empty() {
            return Vec::new();
        }
        let c0 = self.col_of(mbr.min_x);
        let c1 = self.col_of(mbr.max_x);
        let r0 = self.row_of(mbr.min_y);
        let r1 = self.row_of(mbr.max_y);
        let mut out = Vec::with_capacity(((c1 - c0 + 1) * (r1 - r0 + 1)) as usize);
        for row in r0..=r1 {
            for col in c0..=c1 {
                out.push(self.tile_id(col, row));
            }
        }
        out
    }

    /// The rectangle of tile `tile_id`.
    pub fn tile_rect(&self, tile_id: u64) -> Rect {
        let row = (tile_id / self.n as u64) as u32;
        let col = (tile_id % self.n as u64) as u32;
        debug_assert!(row < self.n);
        Rect::new(
            self.extent.min_x + col as f64 * self.tile_w,
            self.extent.min_y + row as f64 * self.tile_h,
            self.extent.min_x + (col + 1) as f64 * self.tile_w,
            self.extent.min_y + (row + 1) as f64 * self.tile_h,
        )
    }

    /// Reference-point duplicate avoidance (PBSM §VII-E): report the pair
    /// `(a, b)` only from the tile containing the min-corner of `a ∩ b`.
    /// Returns `false` when the MBRs don't intersect at all.
    pub fn is_reference_tile(&self, tile_id: u64, a: &Rect, b: &Rect) -> bool {
        match a.reference_point(b) {
            Some(p) => self.tile_of_point(&p) == tile_id,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> UniformGrid {
        UniformGrid::new(Rect::new(0.0, 0.0, 4.0, 4.0), 4)
    }

    #[test]
    fn point_maps_to_expected_tile() {
        let g = grid4();
        assert_eq!(g.tile_of_point(&Point::new(0.5, 0.5)), 0);
        assert_eq!(g.tile_of_point(&Point::new(3.5, 0.5)), 3);
        assert_eq!(g.tile_of_point(&Point::new(0.5, 3.5)), 12);
        assert_eq!(g.tile_of_point(&Point::new(3.5, 3.5)), 15);
    }

    #[test]
    fn max_boundary_clamps_into_last_tile() {
        let g = grid4();
        assert_eq!(g.tile_of_point(&Point::new(4.0, 4.0)), 15);
        // Points outside the extent clamp to border tiles too.
        assert_eq!(g.tile_of_point(&Point::new(-1.0, -1.0)), 0);
        assert_eq!(g.tile_of_point(&Point::new(9.0, 9.0)), 15);
    }

    #[test]
    fn overlapping_tiles_for_spanning_rect() {
        let g = grid4();
        let tiles = g.overlapping_tiles(&Rect::new(0.5, 0.5, 2.5, 1.5));
        // cols 0..=2, rows 0..=1 → 6 tiles
        assert_eq!(tiles, vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn overlapping_tiles_for_point_rect() {
        let g = grid4();
        let r = Rect::from_point(&Point::new(1.5, 2.5));
        assert_eq!(
            g.overlapping_tiles(&r),
            vec![g.tile_of_point(&Point::new(1.5, 2.5))]
        );
    }

    #[test]
    fn tile_rect_roundtrip() {
        let g = grid4();
        for id in 0..g.tile_count() {
            let r = g.tile_rect(id);
            let c = r.center();
            assert_eq!(g.tile_of_point(&c), id, "center of tile {id} maps back");
        }
    }

    #[test]
    fn rect_on_tile_boundary_assigned_to_both() {
        let g = grid4();
        // A rect whose edge lies exactly on x=1.0 (tile boundary).
        let r = Rect::new(0.5, 0.5, 1.0, 0.75);
        let tiles = g.overlapping_tiles(&r);
        assert_eq!(tiles, vec![0, 1]);
    }

    #[test]
    fn degenerate_extent_single_tile() {
        let g = UniformGrid::new(Rect::from_point(&Point::new(2.0, 2.0)), 8);
        assert_eq!(g.tile_of_point(&Point::new(2.0, 2.0)), 0);
        assert_eq!(g.overlapping_tiles(&Rect::new(1.0, 1.0, 3.0, 3.0)), vec![0]);
    }

    #[test]
    fn reference_tile_unique_per_pair() {
        let g = grid4();
        let a = Rect::new(0.5, 0.5, 2.5, 2.5);
        let b = Rect::new(1.5, 1.5, 3.5, 3.5);
        let shared: Vec<u64> = g
            .overlapping_tiles(&a)
            .into_iter()
            .filter(|t| g.overlapping_tiles(&b).contains(t))
            .collect();
        assert!(
            shared.len() > 1,
            "pair must be multi-assigned for the test to be meaningful"
        );
        let ref_tiles: Vec<u64> = shared
            .iter()
            .copied()
            .filter(|&t| g.is_reference_tile(t, &a, &b))
            .collect();
        assert_eq!(ref_tiles.len(), 1, "exactly one tile reports the pair");
        // And that tile is the one holding the intersection's min corner.
        assert_eq!(ref_tiles[0], g.tile_of_point(&Point::new(1.5, 1.5)));
    }

    #[test]
    fn disjoint_rects_have_no_reference_tile() {
        let g = grid4();
        let a = Rect::new(0.0, 0.0, 0.5, 0.5);
        let b = Rect::new(3.0, 3.0, 3.5, 3.5);
        for t in 0..g.tile_count() {
            assert!(!g.is_reference_tile(t, &a, &b));
        }
    }
}
