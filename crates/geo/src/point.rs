//! 2-D points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the plane. Coordinates are finite `f64`s; constructors debug-
/// assert finiteness so NaNs cannot leak into grid math or sweeps.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a point. `x` and `y` must be finite.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        debug_assert!(
            x.is_finite() && y.is_finite(),
            "non-finite point ({x}, {y})"
        );
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — cheaper when only comparisons are needed.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Distance from this point to the segment `a`–`b`.
    pub fn distance_to_segment(&self, a: &Point, b: &Point) -> f64 {
        let abx = b.x - a.x;
        let aby = b.y - a.y;
        let len_sq = abx * abx + aby * aby;
        if len_sq == 0.0 {
            return self.distance(a);
        }
        let t = ((self.x - a.x) * abx + (self.y - a.y) * aby) / len_sq;
        let t = t.clamp(0.0, 1.0);
        let proj = Point::new(a.x + t * abx, a.y + t * aby);
        self.distance(&proj)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POINT({} {})", self.x, self.y)
    }
}

/// Orientation of the ordered triple (a, b, c):
/// positive if counter-clockwise, negative if clockwise, zero if collinear.
#[inline]
pub(crate) fn orient(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Whether segment `p1`–`p2` intersects segment `p3`–`p4` (inclusive of
/// endpoints and collinear overlap).
pub fn segments_intersect(p1: &Point, p2: &Point, p3: &Point, p4: &Point) -> bool {
    let d1 = orient(p3, p4, p1);
    let d2 = orient(p3, p4, p2);
    let d3 = orient(p1, p2, p3);
    let d4 = orient(p1, p2, p4);

    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    // Collinear cases: check whether the collinear point lands on the segment.
    (d1 == 0.0 && on_segment(p3, p4, p1))
        || (d2 == 0.0 && on_segment(p3, p4, p2))
        || (d3 == 0.0 && on_segment(p1, p2, p3))
        || (d4 == 0.0 && on_segment(p1, p2, p4))
}

/// Whether `q` (known to be collinear with `a`–`b`) lies on the segment.
#[inline]
fn on_segment(a: &Point, b: &Point, q: &Point) -> bool {
    q.x >= a.x.min(b.x) && q.x <= a.x.max(b.x) && q.y >= a.y.min(b.y) && q.y <= a.y.max(b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_to_segment_endpoints_and_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Directly above the middle.
        assert_eq!(Point::new(5.0, 3.0).distance_to_segment(&a, &b), 3.0);
        // Beyond the right endpoint: distance to the endpoint.
        assert_eq!(Point::new(13.0, 4.0).distance_to_segment(&a, &b), 5.0);
        // Degenerate segment.
        assert_eq!(Point::new(3.0, 4.0).distance_to_segment(&a, &a), 5.0);
    }

    #[test]
    fn segments_crossing() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 4.0);
        let c = Point::new(0.0, 4.0);
        let d = Point::new(4.0, 0.0);
        assert!(segments_intersect(&a, &b, &c, &d));
    }

    #[test]
    fn segments_touching_at_endpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 2.0);
        let c = Point::new(2.0, 2.0);
        let d = Point::new(4.0, 0.0);
        assert!(segments_intersect(&a, &b, &c, &d));
    }

    #[test]
    fn segments_disjoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        let d = Point::new(1.0, 1.0);
        assert!(!segments_intersect(&a, &b, &c, &d));
    }

    #[test]
    fn segments_collinear_overlap() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = Point::new(2.0, 0.0);
        let d = Point::new(6.0, 0.0);
        assert!(segments_intersect(&a, &b, &c, &d));
    }

    #[test]
    fn segments_collinear_disjoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(2.0, 0.0);
        let d = Point::new(3.0, 0.0);
        assert!(!segments_intersect(&a, &b, &c, &d));
    }

    #[test]
    fn display_wkt_like() {
        assert_eq!(Point::new(1.5, -2.0).to_string(), "POINT(1.5 -2)");
    }
}
