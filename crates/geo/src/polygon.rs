//! Simple polygons (single ring, no holes) — enough for the Parks dataset.

use crate::point::{segments_intersect, Point};
use crate::rect::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple polygon given by its ring of vertices in order (either winding).
/// The ring is stored *open* (the closing edge `last → first` is implicit).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    ring: Vec<Point>,
    mbr: Rect,
}

impl Polygon {
    /// Build a polygon from at least three vertices.
    ///
    /// # Panics
    /// Panics if fewer than three vertices are supplied.
    pub fn new(ring: Vec<Point>) -> Self {
        assert!(
            ring.len() >= 3,
            "polygon needs at least 3 vertices, got {}",
            ring.len()
        );
        let mbr = Rect::from_points(ring.iter());
        Polygon { ring, mbr }
    }

    /// Axis-aligned rectangle as a polygon (counter-clockwise ring).
    pub fn from_rect(r: &Rect) -> Self {
        Polygon::new(vec![
            Point::new(r.min_x, r.min_y),
            Point::new(r.max_x, r.min_y),
            Point::new(r.max_x, r.max_y),
            Point::new(r.min_x, r.max_y),
        ])
    }

    /// The vertex ring (open; the closing edge is implicit).
    #[inline]
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Always false: construction requires ≥ 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Precomputed minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.mbr
    }

    /// Iterator over the closed edge list, including `last → first`.
    pub fn edges(&self) -> impl Iterator<Item = (&Point, &Point)> {
        let n = self.ring.len();
        (0..n).map(move |i| (&self.ring[i], &self.ring[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise rings).
    pub fn signed_area(&self) -> f64 {
        let mut acc = 0.0;
        for (a, b) in self.edges() {
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Point-in-polygon by ray casting (boundary points count as inside).
    ///
    /// This is the `ST_Contains(boundary, point)` predicate of Query 1.
    pub fn contains_point(&self, p: &Point) -> bool {
        if !self.mbr.contains_point(p) {
            return false;
        }
        // Boundary check first: ray casting is unreliable exactly on edges.
        for (a, b) in self.edges() {
            if p.distance_to_segment(a, b) == 0.0 {
                return true;
            }
        }
        let mut inside = false;
        for (a, b) in self.edges() {
            // Half-open rule on y avoids double-counting vertices.
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Whether two polygons intersect (share any point): true when any edges
    /// cross, or when one polygon is nested inside the other.
    pub fn intersects(&self, other: &Polygon) -> bool {
        if !self.mbr.intersects(&other.mbr) {
            return false;
        }
        for (a, b) in self.edges() {
            for (c, d) in other.edges() {
                if segments_intersect(a, b, c, d) {
                    return true;
                }
            }
        }
        // No edge crossings: either disjoint or one contains the other.
        self.contains_point(&other.ring[0]) || other.contains_point(&self.ring[0])
    }

    /// Minimum distance from `p` to this polygon (0 when inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        if self.contains_point(p) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for (a, b) in self.edges() {
            best = best.min(p.distance_to_segment(a, b));
        }
        best
    }
}

impl fmt::Debug for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Polygon[{} vertices, mbr {:?}]",
            self.ring.len(),
            self.mbr
        )
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POLYGON((")?;
        for (i, p) in self.ring.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", p.x, p.y)?;
        }
        write!(f, "))")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0))
    }

    fn triangle() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_degenerate_ring() {
        let _ = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
    }

    #[test]
    fn area_of_square_and_triangle() {
        assert_eq!(unit_square().area(), 1.0);
        assert_eq!(triangle().area(), 8.0);
    }

    #[test]
    fn signed_area_flips_with_winding() {
        let ccw = unit_square();
        let mut ring = ccw.ring().to_vec();
        ring.reverse();
        let cw = Polygon::new(ring);
        assert_eq!(ccw.signed_area(), -cw.signed_area());
    }

    #[test]
    fn contains_interior_boundary_exterior() {
        let sq = unit_square();
        assert!(sq.contains_point(&Point::new(0.5, 0.5)));
        assert!(sq.contains_point(&Point::new(0.0, 0.5))); // on edge
        assert!(sq.contains_point(&Point::new(1.0, 1.0))); // vertex
        assert!(!sq.contains_point(&Point::new(1.5, 0.5)));
        assert!(!sq.contains_point(&Point::new(0.5, -0.0001)));
    }

    #[test]
    fn contains_in_concave_polygon() {
        // A "U" shape: the notch between the prongs is outside.
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(u.contains_point(&Point::new(1.0, 3.0))); // left prong
        assert!(u.contains_point(&Point::new(5.0, 3.0))); // right prong
        assert!(!u.contains_point(&Point::new(3.0, 3.0))); // notch
        assert!(u.contains_point(&Point::new(3.0, 0.5))); // base
    }

    #[test]
    fn polygons_intersect_by_edge_crossing() {
        let a = unit_square();
        let b = Polygon::from_rect(&Rect::new(0.5, 0.5, 2.0, 2.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn polygons_intersect_by_containment() {
        let outer = Polygon::from_rect(&Rect::new(0.0, 0.0, 10.0, 10.0));
        let inner = Polygon::from_rect(&Rect::new(4.0, 4.0, 5.0, 5.0));
        assert!(outer.intersects(&inner));
        assert!(inner.intersects(&outer));
    }

    #[test]
    fn polygons_disjoint() {
        let a = unit_square();
        let b = Polygon::from_rect(&Rect::new(5.0, 5.0, 6.0, 6.0));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn mbr_overlap_but_geometry_disjoint() {
        // A big lower-right triangle (below the main diagonal) and a small
        // triangle tucked in the upper-left corner: MBRs overlap, shapes don't.
        let a = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]);
        let b = Polygon::new(vec![
            Point::new(0.0, 9.0),
            Point::new(1.0, 10.0),
            Point::new(0.0, 10.0),
        ]);
        assert!(a.mbr().intersects(&b.mbr()));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn distance_to_point() {
        let sq = unit_square();
        assert_eq!(sq.distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(sq.distance_to_point(&Point::new(2.0, 0.5)), 1.0);
        assert!((sq.distance_to_point(&Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_wkt_like() {
        let t = triangle();
        assert_eq!(t.to_string(), "POLYGON((0 0, 4 0, 0 4))");
    }
}
