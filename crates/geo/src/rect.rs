//! Axis-aligned rectangles (minimum bounding rectangles).
//!
//! `Rect` doubles as the `Summary` of the spatial FUDJ: summarization unions
//! record MBRs, and `divide` intersects the two sides' summaries to obtain
//! the grid extent (PBSM partitions only the space where both inputs live).

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// The *empty* rectangle (identity for [`Rect::union`]) is represented with
/// inverted bounds; construct it with [`Rect::empty`] and test with
/// [`Rect::is_empty`].
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

/// The default rectangle is [`Rect::empty`] — the identity of
/// [`Rect::union`], which makes `Rect` usable directly as an aggregation
/// state.
impl Default for Rect {
    fn default() -> Self {
        Rect::empty()
    }
}

impl Rect {
    /// Rectangle from corner coordinates. `min` bounds must not exceed `max`.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rect bounds");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The empty rectangle: the identity element of [`Rect::union`].
    #[inline]
    pub fn empty() -> Self {
        Rect {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// Degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: &Point) -> Self {
        Rect {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// MBR of a non-empty set of points.
    pub fn from_points<'a>(points: impl IntoIterator<Item = &'a Point>) -> Self {
        let mut r = Rect::empty();
        for p in points {
            r.expand_point(p);
        }
        r
    }

    /// Whether this is the empty rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width (0 for empty).
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height (0 for empty).
    #[inline]
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Area (0 for empty).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point. Meaningless for the empty rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Smallest rectangle covering both operands (the `∪` of the paper's
    /// spatial `SUMMARIZE`).
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Intersection; the empty rectangle when the operands are disjoint
    /// (the `∩` of the paper's spatial `DIVIDE`).
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        let r = Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }

    /// Grow in place to cover `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grow in place to cover `other`.
    #[inline]
    pub fn expand_rect(&mut self, other: &Rect) {
        *self = self.union(other);
    }

    /// Closed-interval overlap test (touching edges count as intersecting,
    /// matching PBSM tile assignment).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether `other` lies entirely inside (or equal to) `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Minimum distance between two rectangles (0 when they intersect).
    pub fn distance(&self, other: &Rect) -> f64 {
        let dx = (other.min_x - self.max_x)
            .max(self.min_x - other.max_x)
            .max(0.0);
        let dy = (other.min_y - self.max_y)
            .max(self.min_y - other.max_y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// The top-left corner of the intersection of two rectangles — the
    /// *reference point* of the PBSM duplicate-avoidance technique (§VII-E):
    /// a joined pair is reported only by the tile containing this point.
    pub fn reference_point(&self, other: &Rect) -> Option<Point> {
        let i = self.intersection(other);
        if i.is_empty() {
            None
        } else {
            Some(Point::new(i.min_x, i.min_y))
        }
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "Rect(EMPTY)")
        } else {
            write!(
                f,
                "Rect[({}, {})..({}, {})]",
                self.min_x, self.min_y, self.max_x, self.max_y
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn empty_is_union_identity() {
        let a = r(1.0, 2.0, 3.0, 4.0);
        assert_eq!(Rect::empty().union(&a), a);
        assert_eq!(a.union(&Rect::empty()), a);
        assert!(Rect::empty().is_empty());
        assert_eq!(Rect::empty().area(), 0.0);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersection(&b).is_empty());
        assert!(!a.intersects(&b));
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), r(1.0, 1.0, 2.0, 2.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn touching_edges_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).area(), 0.0);
    }

    #[test]
    fn contains_point_boundary_inclusive() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(a.contains_point(&Point::new(0.0, 0.0)));
        assert!(a.contains_point(&Point::new(1.0, 2.0)));
        assert!(!a.contains_point(&Point::new(2.1, 1.0)));
    }

    #[test]
    fn distance_between_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.distance(&b), 5.0); // dx=3, dy=4
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn reference_point_is_intersection_min_corner() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.reference_point(&b), Some(Point::new(1.0, 1.0)));
        assert_eq!(b.reference_point(&a), Some(Point::new(1.0, 1.0)));
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.reference_point(&c), None);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let m = Rect::from_points(pts.iter());
        assert_eq!(m, r(-2.0, 0.0, 3.0, 5.0));
        for p in &pts {
            assert!(m.contains_point(p));
        }
    }
}
