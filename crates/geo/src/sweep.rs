//! Plane-sweep rectangle join — the local optimization of §VII-F.
//!
//! The paper's "advanced" spatial operator sorts the geometries inside each
//! tile and applies a plane sweep instead of a per-tile nested loop. This
//! module implements the classic forward-scan sweep over x: sort both sides
//! by `min_x`, then for each rectangle scan forward on the other side while
//! `other.min_x <= self.max_x`, testing y-overlap directly.

use crate::rect::Rect;

/// All index pairs `(i, j)` with `left[i]` intersecting `right[j]`,
/// discovered by a forward plane sweep along the x axis.
///
/// Output order is unspecified. Runs in `O(n log n + k·avg_overlap)` versus
/// the nested loop's `O(n·m)`; the crossover is exactly the §VII-F
/// experiment.
pub fn plane_sweep_join(left: &[Rect], right: &[Rect]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    plane_sweep_join_into(left, right, |i, j| out.push((i, j)));
    out
}

/// Plane-sweep join feeding each intersecting pair to `emit(i, j)`.
/// This is the allocation-free core used by the advanced local join operator.
pub fn plane_sweep_join_into(left: &[Rect], right: &[Rect], mut emit: impl FnMut(usize, usize)) {
    if left.is_empty() || right.is_empty() {
        return;
    }
    // Sort index vectors, not the rectangles, so callers keep their order.
    let mut li: Vec<usize> = (0..left.len()).collect();
    let mut ri: Vec<usize> = (0..right.len()).collect();
    li.sort_unstable_by(|&a, &b| left[a].min_x.total_cmp(&left[b].min_x));
    ri.sort_unstable_by(|&a, &b| right[a].min_x.total_cmp(&right[b].min_x));

    let mut l = 0usize;
    let mut r = 0usize;
    while l < li.len() && r < ri.len() {
        let lr = &left[li[l]];
        let rr = &right[ri[r]];
        if lr.min_x <= rr.min_x {
            // Sweep right-side rectangles that start before lr ends.
            let mut k = r;
            while k < ri.len() && right[ri[k]].min_x <= lr.max_x {
                let cand = &right[ri[k]];
                if lr.min_y <= cand.max_y && lr.max_y >= cand.min_y {
                    emit(li[l], ri[k]);
                }
                k += 1;
            }
            l += 1;
        } else {
            let mut k = l;
            while k < li.len() && left[li[k]].min_x <= rr.max_x {
                let cand = &left[li[k]];
                if rr.min_y <= cand.max_y && rr.max_y >= cand.min_y {
                    emit(li[k], ri[r]);
                }
                k += 1;
            }
            r += 1;
        }
    }
}

/// Reference nested-loop rectangle join, used by tests and as the naive
/// local join inside the plain FUDJ spatial operator.
pub fn nested_loop_rect_join(left: &[Rect], right: &[Rect]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if a.intersects(b) {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_inputs() {
        assert!(plane_sweep_join(&[], &[Rect::new(0.0, 0.0, 1.0, 1.0)]).is_empty());
        assert!(plane_sweep_join(&[Rect::new(0.0, 0.0, 1.0, 1.0)], &[]).is_empty());
    }

    #[test]
    fn simple_overlap() {
        let l = vec![Rect::new(0.0, 0.0, 2.0, 2.0), Rect::new(5.0, 5.0, 6.0, 6.0)];
        let r = vec![
            Rect::new(1.0, 1.0, 3.0, 3.0),
            Rect::new(10.0, 10.0, 11.0, 11.0),
        ];
        assert_eq!(sorted(plane_sweep_join(&l, &r)), vec![(0, 0)]);
    }

    #[test]
    fn touching_edges_count() {
        let l = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
        let r = vec![Rect::new(1.0, 0.0, 2.0, 1.0), Rect::new(0.0, 1.0, 1.0, 2.0)];
        assert_eq!(sorted(plane_sweep_join(&l, &r)), vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn y_disjoint_filtered() {
        let l = vec![Rect::new(0.0, 0.0, 10.0, 1.0)];
        let r = vec![Rect::new(0.0, 5.0, 10.0, 6.0)];
        assert!(plane_sweep_join(&l, &r).is_empty());
    }

    #[test]
    fn matches_nested_loop_on_random_data() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut gen_rects = |n: usize| -> Vec<Rect> {
            (0..n)
                .map(|_| {
                    let x = rng.gen_range(0.0..100.0);
                    let y = rng.gen_range(0.0..100.0);
                    let w = rng.gen_range(0.0..10.0);
                    let h = rng.gen_range(0.0..10.0);
                    Rect::new(x, y, x + w, y + h)
                })
                .collect()
        };
        for _ in 0..10 {
            let l = gen_rects(60);
            let r = gen_rects(40);
            assert_eq!(
                sorted(plane_sweep_join(&l, &r)),
                sorted(nested_loop_rect_join(&l, &r))
            );
        }
    }

    #[test]
    fn duplicate_free_output() {
        let l = vec![Rect::new(0.0, 0.0, 100.0, 100.0); 3];
        let r = vec![Rect::new(50.0, 50.0, 60.0, 60.0); 2];
        let pairs = plane_sweep_join(&l, &r);
        let mut dedup = pairs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(pairs.len(), dedup.len(), "no pair emitted twice");
        assert_eq!(pairs.len(), 6);
    }
}
