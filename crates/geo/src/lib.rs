//! Planar geometry substrate for the FUDJ reproduction.
//!
//! The paper's spatial join (PBSM, Patel & DeWitt) needs: minimum bounding
//! rectangles (MBRs) with union/intersection, a uniform grid that maps an MBR
//! to the tiles it overlaps, point-in-polygon and polygon-polygon
//! intersection tests for the `verify` step, and — for the §VII-F "advanced"
//! operator — a plane-sweep rectangle join used as the local per-tile join.
//!
//! Everything here is exact-arithmetic-free `f64` planar geometry: the
//! datasets are lon/lat treated as a flat plane, exactly as PBSM does.

pub mod grid;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod sweep;

pub use grid::UniformGrid;
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;
pub use sweep::plane_sweep_join;
