//! Property-based tests for the geometry substrate.

use fudj_geo::{plane_sweep_join, Point, Polygon, Rect, UniformGrid};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -100.0..100.0f64,
        -100.0..100.0f64,
        0.0..50.0f64,
        0.0..50.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-150.0..150.0f64, -150.0..150.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Union is commutative, associative-ish (cover check), and covers both inputs.
    #[test]
    fn union_covers_operands(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    /// Intersection is contained in both operands and symmetric.
    #[test]
    fn intersection_contained(a in arb_rect(), b in arb_rect()) {
        let i = a.intersection(&b);
        prop_assert_eq!(i, b.intersection(&a));
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    /// `intersects` agrees with non-emptiness of `intersection`.
    #[test]
    fn intersects_iff_nonempty_intersection(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
    }

    /// Rect distance is zero iff the rects intersect, and symmetric.
    #[test]
    fn distance_zero_iff_intersect(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.distance(&b) == 0.0, a.intersects(&b));
        prop_assert_eq!(a.distance(&b), b.distance(&a));
    }

    /// Every point maps to a tile whose rect (clamped case aside) contains it.
    #[test]
    fn grid_point_in_its_tile(p in arb_point(), n in 1u32..32) {
        let g = UniformGrid::new(Rect::new(-150.0, -150.0, 150.0, 150.0), n);
        let t = g.tile_of_point(&p);
        prop_assert!(t < g.tile_count());
        prop_assert!(g.tile_rect(t).contains_point(&p));
    }

    /// Multi-assign: a rect is assigned exactly to the tiles it intersects.
    #[test]
    fn grid_assignment_matches_tile_intersection(r in arb_rect(), n in 1u32..16) {
        let g = UniformGrid::new(Rect::new(-150.0, -150.0, 150.0, 150.0), n);
        let assigned = g.overlapping_tiles(&r);
        for t in 0..g.tile_count() {
            let should = g.tile_rect(t).intersects(&r);
            prop_assert_eq!(assigned.contains(&t), should, "tile {}", t);
        }
    }

    /// Reference-point dedup: for any intersecting pair fully inside the
    /// extent, exactly one co-assigned tile is the reference tile.
    #[test]
    fn reference_tile_is_unique(a in arb_rect(), b in arb_rect(), n in 1u32..16) {
        let g = UniformGrid::new(Rect::new(-150.0, -150.0, 150.0, 150.0), n);
        if a.intersects(&b) {
            let ta = g.overlapping_tiles(&a);
            let tb = g.overlapping_tiles(&b);
            let refs: Vec<u64> = ta.iter().copied()
                .filter(|t| tb.contains(t) && g.is_reference_tile(*t, &a, &b))
                .collect();
            prop_assert_eq!(refs.len(), 1);
        }
    }

    /// Plane sweep agrees with the nested-loop oracle.
    #[test]
    fn sweep_matches_nested_loop(
        l in prop::collection::vec(arb_rect(), 0..40),
        r in prop::collection::vec(arb_rect(), 0..40),
    ) {
        let mut a = plane_sweep_join(&l, &r);
        let mut b = fudj_geo::sweep::nested_loop_rect_join(&l, &r);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Point-in-polygon on rectangles agrees with the rect test.
    #[test]
    fn polygon_rect_containment_agrees(r in arb_rect(), p in arb_point()) {
        prop_assume!(r.width() > 0.0 && r.height() > 0.0);
        let poly = Polygon::from_rect(&r);
        prop_assert_eq!(poly.contains_point(&p), r.contains_point(&p));
    }

    /// Polygon MBR contains every vertex; area is non-negative.
    #[test]
    fn polygon_invariants(pts in prop::collection::vec(arb_point(), 3..12)) {
        let poly = Polygon::new(pts.clone());
        for p in &pts {
            prop_assert!(poly.mbr().contains_point(p));
        }
        prop_assert!(poly.area() >= 0.0);
    }
}
